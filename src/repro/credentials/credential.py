"""The X-TNL credential document (paper Section 4.1, Fig. 6).

A credential is a set of attributes of a party, issued and signed by a
Credential Authority.  Following Fig. 6 it has three subelements:

``<header>``
    credential type, unique id, issuer, subject, the subject's key
    fingerprint (for ownership proofs), a serial number (for
    revocation), a sensitivity label, and the validity window.
``<content>``
    the typed attributes.
``<signature>``
    the issuer's signature, base64-encoded, computed over the canonical
    form of header+content.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timedelta
from typing import Iterable, Mapping, Optional
from xml.etree import ElementTree as ET

from repro.credentials.attributes import AttributeValue
from repro.credentials.sensitivity import Sensitivity
from repro.errors import CredentialFormatError
from repro.xmlutil.canonical import canonicalize, element_digest, parse_xml

__all__ = ["ValidityPeriod", "Credential"]


@dataclass(frozen=True)
class ValidityPeriod:
    """Time window during which a credential is valid."""

    not_before: datetime
    not_after: datetime

    def __post_init__(self) -> None:
        if self.not_after <= self.not_before:
            raise CredentialFormatError(
                f"validity window is empty: {self.not_before.isoformat()} .. "
                f"{self.not_after.isoformat()}"
            )

    def contains(self, at: datetime) -> bool:
        return self.not_before <= at <= self.not_after

    @classmethod
    def starting(cls, start: datetime, days: int) -> "ValidityPeriod":
        """Window of ``days`` days starting at ``start``."""
        return cls(start, start + timedelta(days=days))


@dataclass(frozen=True)
class Credential:
    """A signed X-TNL attribute credential.

    Instances are immutable; an unsigned credential body is built first
    and the issuing authority attaches the signature with
    :meth:`with_signature`.
    """

    cred_type: str
    cred_id: str
    issuer: str
    subject: str
    subject_key: str  # fingerprint of the holder's public key
    validity: ValidityPeriod
    attributes: tuple[AttributeValue, ...] = ()
    sensitivity: Sensitivity = Sensitivity.LOW
    serial: int = 0
    signature_b64: Optional[str] = field(default=None, compare=False)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(
        cls,
        cred_type: str,
        cred_id: str,
        issuer: str,
        subject: str,
        subject_key: str,
        validity: ValidityPeriod,
        attributes: Mapping[str, object] | Iterable[AttributeValue] = (),
        sensitivity: Sensitivity = Sensitivity.LOW,
        serial: int = 0,
    ) -> "Credential":
        """Build an unsigned credential; attribute mapping values are
        converted with :meth:`AttributeValue.of`."""
        if isinstance(attributes, Mapping):
            attrs = tuple(
                AttributeValue.of(name, value)
                for name, value in attributes.items()
            )
        else:
            attrs = tuple(attributes)
        names = [attr.name for attr in attrs]
        if len(names) != len(set(names)):
            raise CredentialFormatError(
                f"duplicate attribute names in credential {cred_id!r}"
            )
        return cls(
            cred_type=cred_type,
            cred_id=cred_id,
            issuer=issuer,
            subject=subject,
            subject_key=subject_key,
            validity=validity,
            attributes=attrs,
            sensitivity=sensitivity,
            serial=serial,
        )

    def with_signature(self, signature_b64: str) -> "Credential":
        return replace(self, signature_b64=signature_b64)

    # -- attribute access ----------------------------------------------------

    def attribute(self, name: str) -> AttributeValue:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(name)

    def has_attribute(self, name: str) -> bool:
        return any(attr.name == name for attr in self.attributes)

    def attribute_names(self) -> list[str]:
        return [attr.name for attr in self.attributes]

    def value(self, name: str) -> object:
        return self.attribute(name).value

    @property
    def is_signed(self) -> bool:
        return self.signature_b64 is not None

    # -- XML serialization (Fig. 6) -----------------------------------------

    def _header_element(self) -> ET.Element:
        header = ET.Element("header")
        ET.SubElement(header, "credType").text = self.cred_type
        ET.SubElement(header, "credID").text = self.cred_id
        ET.SubElement(header, "issuer").text = self.issuer
        ET.SubElement(header, "subject").text = self.subject
        ET.SubElement(header, "subjectKey").text = self.subject_key
        ET.SubElement(header, "serial").text = str(self.serial)
        ET.SubElement(header, "sensitivity").text = self.sensitivity.label
        validity = ET.SubElement(header, "validity")
        ET.SubElement(validity, "notBefore").text = (
            self.validity.not_before.isoformat()
        )
        ET.SubElement(validity, "notAfter").text = (
            self.validity.not_after.isoformat()
        )
        return header

    def _content_element(self) -> ET.Element:
        content = ET.Element("content")
        for attr in self.attributes:
            node = ET.SubElement(content, attr.name, {"type": attr.type_tag})
            node.text = attr.xml_text
        return content

    def signing_bytes(self) -> bytes:
        """Canonical bytes the issuer signs (header + content)."""
        envelope = ET.Element("credential")
        envelope.append(self._header_element())
        envelope.append(self._content_element())
        # The credential is frozen and its hash/equality already cover
        # exactly the signed fields (signature_b64 is compare=False), so
        # `self` is a sound memo key for the canonical form.
        return canonicalize(
            envelope, cache_key=("signing", self)
        ).encode("utf-8")

    def signing_digest(self) -> bytes:
        """SHA-256 of :meth:`signing_bytes`, memoized in
        :data:`repro.perf.DIGEST_CACHE` under the same key as the
        canonical form — verification paths hash each credential once,
        not once per signature check."""
        envelope = ET.Element("credential")
        envelope.append(self._header_element())
        envelope.append(self._content_element())
        return element_digest(envelope, cache_key=("signing", self))

    def to_element(self) -> ET.Element:
        root = ET.Element("credential")
        root.append(self._header_element())
        root.append(self._content_element())
        if self.signature_b64 is not None:
            ET.SubElement(root, "signature").text = self.signature_b64
        return root

    def to_xml(self) -> str:
        # signature_b64 is excluded from the dataclass hash, so it must
        # appear explicitly in the key: the same body signed vs unsigned
        # serializes differently.
        return canonicalize(
            self.to_element(), cache_key=("xml", self, self.signature_b64)
        )

    @classmethod
    def from_element(cls, root: ET.Element) -> "Credential":
        if root.tag != "credential":
            raise CredentialFormatError(
                f"expected <credential>, found <{root.tag}>"
            )
        header = root.find("header")
        content = root.find("content")
        if header is None or content is None:
            raise CredentialFormatError(
                "credential is missing <header> or <content>"
            )

        def text_of(parent: ET.Element, tag: str) -> str:
            node = parent.find(tag)
            if node is None or node.text is None:
                raise CredentialFormatError(
                    f"credential header is missing <{tag}>"
                )
            return node.text.strip()

        validity_node = header.find("validity")
        if validity_node is None:
            raise CredentialFormatError("credential header lacks <validity>")
        try:
            validity = ValidityPeriod(
                datetime.fromisoformat(text_of(validity_node, "notBefore")),
                datetime.fromisoformat(text_of(validity_node, "notAfter")),
            )
        except ValueError as exc:
            raise CredentialFormatError(
                f"invalid validity timestamps: {exc}"
            ) from exc

        attributes = []
        for node in content:
            type_tag = node.attrib.get("type", "string")
            attributes.append(
                AttributeValue.parse(node.tag, (node.text or "").strip(), type_tag)
            )

        signature_node = root.find("signature")
        signature = (
            signature_node.text.strip()
            if signature_node is not None and signature_node.text
            else None
        )
        try:
            sensitivity = Sensitivity.parse(text_of(header, "sensitivity"))
        except ValueError as exc:
            raise CredentialFormatError(str(exc)) from exc
        try:
            serial = int(text_of(header, "serial"))
        except ValueError as exc:
            raise CredentialFormatError(f"invalid serial: {exc}") from exc

        return cls(
            cred_type=text_of(header, "credType"),
            cred_id=text_of(header, "credID"),
            issuer=text_of(header, "issuer"),
            subject=text_of(header, "subject"),
            subject_key=text_of(header, "subjectKey"),
            validity=validity,
            attributes=tuple(attributes),
            sensitivity=sensitivity,
            serial=serial,
            signature_b64=signature,
        )

    @classmethod
    def from_xml(cls, text: str) -> "Credential":
        return cls.from_element(parse_xml(text))

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Credential({self.cred_type!r}, subject={self.subject!r}, "
            f"issuer={self.issuer!r}, serial={self.serial})"
        )
