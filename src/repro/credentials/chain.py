"""Credential chains and delegated retrieval.

During the exchange phase a party may "eventually retrieve those
credentials that are not immediately available through credentials
chains" (paper Section 4.2).  A chain links a credential to the
credential that certifies its issuer, up to an authority the verifier
already trusts: e.g. a regional quality certificate issued by a body
that itself holds an accreditation credential from a root authority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.credentials.credential import Credential
from repro.crypto.keys import Keyring
from repro.errors import CredentialError

__all__ = ["CredentialChain", "ChainResolver"]

#: Attribute a chain-link credential uses to carry the certified
#: issuer's public key (JSON form) — the material that lets a verifier
#: continue signature checks down the chain.
CERTIFIED_KEY_ATTRIBUTE = "certifiedKey"


@dataclass(frozen=True)
class CredentialChain:
    """An ordered chain ``leaf, link1, ..., linkN``.

    ``links[i]`` certifies the issuer of ``links[i-1]`` (with
    ``links[0]`` certifying the leaf's issuer); the last link must be
    issued by an authority present in the verifier's keyring.
    """

    leaf: Credential
    links: tuple[Credential, ...] = ()

    def __len__(self) -> int:
        return 1 + len(self.links)

    def all_credentials(self) -> Sequence[Credential]:
        return (self.leaf, *self.links)

    def validate_structure(self) -> None:
        """Check issuer/subject continuity of the chain."""
        expected_subject = self.leaf.issuer
        for index, link in enumerate(self.links):
            if link.subject != expected_subject:
                raise CredentialError(
                    f"chain break at link {index}: certifies "
                    f"{link.subject!r} but {expected_subject!r} was needed"
                )
            if not link.has_attribute(CERTIFIED_KEY_ATTRIBUTE):
                raise CredentialError(
                    f"chain link {index} lacks the "
                    f"{CERTIFIED_KEY_ATTRIBUTE!r} attribute"
                )
            expected_subject = link.issuer


@dataclass
class ChainResolver:
    """Builds chains for credentials whose issuer the verifier does not
    directly trust.

    ``lookup`` maps an issuer name to the credential certifying it (or
    None); it models the external retrieval step of the exchange phase.
    """

    keyring: Keyring
    lookup: Callable[[str], Optional[Credential]]
    max_depth: int = 8

    def resolve(self, leaf: Credential) -> CredentialChain:
        """Return a chain from ``leaf`` to a trusted authority.

        A leaf whose issuer is already trusted resolves to a chain of
        length one.  Raises :class:`CredentialError` when no chain
        reaches a trusted authority within ``max_depth`` links.
        """
        links: list[Credential] = []
        issuer = leaf.issuer
        seen = {issuer}
        while not self.keyring.trusts(issuer):
            if len(links) >= self.max_depth:
                raise CredentialError(
                    f"no trust chain for issuer {leaf.issuer!r} within "
                    f"{self.max_depth} links"
                )
            link = self.lookup(issuer)
            if link is None:
                raise CredentialError(
                    f"cannot retrieve a credential certifying issuer "
                    f"{issuer!r}"
                )
            links.append(link)
            issuer = link.issuer
            if issuer in seen:
                raise CredentialError(
                    f"circular trust chain through issuer {issuer!r}"
                )
            seen.add(issuer)
        chain = CredentialChain(leaf, tuple(links))
        chain.validate_structure()
        return chain
