"""The X-Profile: a party's portfolio of credentials.

"All credentials associated with a party are collected into a unique
XML document, referred to as X-Profile" (paper Section 4.1).  The
profile supports the lookups the negotiation engine needs: by type,
by attribute name, and by sensitivity, plus XML round-tripping of the
whole document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator
from xml.etree import ElementTree as ET

from repro.credentials.credential import Credential
from repro.credentials.sensitivity import Sensitivity, least_sensitive_first
from repro.errors import CredentialFormatError
from repro.xmlutil.canonical import canonicalize, parse_xml

__all__ = ["XProfile"]


@dataclass
class XProfile:
    """A party's credential collection, indexed for negotiation lookups.

    ``by_type`` / ``with_attribute`` / the profile-wide sensitivity
    order are the compliance checker's candidate searches, hit once per
    policy term per negotiation — so the profile maintains inverted
    indexes (type → credentials, attribute name → credentials) updated
    on :meth:`add`/:meth:`remove`, with the sensitivity-sorted result
    lists memoized until the next mutation.
    """

    owner: str
    _credentials: dict[str, Credential] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_type: dict[str, list[Credential]] = {}
        self._by_attr: dict[str, list[Credential]] = {}
        self._sorted: dict[tuple[str, str], list[Credential]] = {}
        for credential in self._credentials.values():
            self._index(credential)

    @classmethod
    def of(cls, owner: str, credentials: Iterable[Credential] = ()) -> "XProfile":
        profile = cls(owner)
        for credential in credentials:
            profile.add(credential)
        return profile

    # -- mutation -------------------------------------------------------------

    def add(self, credential: Credential) -> None:
        if credential.subject != self.owner:
            raise CredentialFormatError(
                f"credential subject {credential.subject!r} does not match "
                f"profile owner {self.owner!r}"
            )
        if credential.cred_id in self._credentials:
            raise CredentialFormatError(
                f"duplicate credential id {credential.cred_id!r} in profile"
            )
        self._credentials[credential.cred_id] = credential
        self._index(credential)

    def remove(self, cred_id: str) -> Credential:
        try:
            credential = self._credentials.pop(cred_id)
        except KeyError as exc:
            raise CredentialFormatError(
                f"no credential with id {cred_id!r} in profile"
            ) from exc
        self._unindex(credential)
        return credential

    # -- index maintenance ----------------------------------------------------

    def _index(self, credential: Credential) -> None:
        self._by_type.setdefault(credential.cred_type, []).append(credential)
        for attr in credential.attributes:
            self._by_attr.setdefault(attr.name, []).append(credential)
        self._sorted.clear()

    def _unindex(self, credential: Credential) -> None:
        bucket = self._by_type.get(credential.cred_type)
        if bucket is not None:
            bucket[:] = [c for c in bucket if c.cred_id != credential.cred_id]
            if not bucket:
                del self._by_type[credential.cred_type]
        for attr in credential.attributes:
            bucket = self._by_attr.get(attr.name)
            if bucket is not None:
                bucket[:] = [
                    c for c in bucket if c.cred_id != credential.cred_id
                ]
                if not bucket:
                    del self._by_attr[attr.name]
        self._sorted.clear()

    def _sorted_bucket(self, kind: str, name: str,
                       bucket: list[Credential]) -> list[Credential]:
        key = (kind, name)
        cached = self._sorted.get(key)
        if cached is None:
            cached = least_sensitive_first(bucket)
            self._sorted[key] = cached
        return list(cached)

    # -- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._credentials)

    def __iter__(self) -> Iterator[Credential]:
        return iter(self._credentials.values())

    def __contains__(self, cred_id: str) -> bool:
        return cred_id in self._credentials

    def get(self, cred_id: str) -> Credential:
        try:
            return self._credentials[cred_id]
        except KeyError as exc:
            raise CredentialFormatError(
                f"no credential with id {cred_id!r} in profile"
            ) from exc

    def by_type(self, cred_type: str) -> list[Credential]:
        """All credentials of the given type, least sensitive first."""
        bucket = self._by_type.get(cred_type)
        if not bucket:
            return []
        return self._sorted_bucket("type", cred_type, bucket)

    def has_type(self, cred_type: str) -> bool:
        return cred_type in self._by_type

    def types(self) -> set[str]:
        return set(self._by_type)

    def with_attribute(self, attribute_name: str) -> list[Credential]:
        """Credentials carrying the named attribute, least sensitive first.

        Used when a policy constrains a property without naming the
        credential type (variable credential type, Section 4.1)."""
        bucket = self._by_attr.get(attribute_name)
        if not bucket:
            return []
        return self._sorted_bucket("attr", attribute_name, bucket)

    def sorted_by_sensitivity(self) -> list[Credential]:
        """Every credential, least sensitive first (memoized)."""
        bucket = list(self._credentials.values())
        return self._sorted_bucket("all", "", bucket)

    def at_sensitivity(self, level: Sensitivity) -> list[Credential]:
        return [cred for cred in self if cred.sensitivity == level]

    # -- XML round-trip ----------------------------------------------------------

    def to_element(self) -> ET.Element:
        root = ET.Element("xprofile", {"owner": self.owner})
        for credential in sorted(self, key=lambda c: c.cred_id):
            root.append(credential.to_element())
        return root

    def to_xml(self) -> str:
        return canonicalize(self.to_element())

    @classmethod
    def from_element(cls, root: ET.Element) -> "XProfile":
        if root.tag != "xprofile":
            raise CredentialFormatError(
                f"expected <xprofile>, found <{root.tag}>"
            )
        owner = root.attrib.get("owner")
        if not owner:
            raise CredentialFormatError("xprofile lacks an owner attribute")
        profile = cls(owner)
        for node in root:
            profile.add(Credential.from_element(node))
        return profile

    @classmethod
    def from_xml(cls, text: str) -> "XProfile":
        return cls.from_element(parse_xml(text))
