"""The X-Profile: a party's portfolio of credentials.

"All credentials associated with a party are collected into a unique
XML document, referred to as X-Profile" (paper Section 4.1).  The
profile supports the lookups the negotiation engine needs: by type,
by attribute name, and by sensitivity, plus XML round-tripping of the
whole document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator
from xml.etree import ElementTree as ET

from repro.credentials.credential import Credential
from repro.credentials.sensitivity import Sensitivity, least_sensitive_first
from repro.errors import CredentialFormatError
from repro.xmlutil.canonical import canonicalize, parse_xml

__all__ = ["XProfile"]


@dataclass
class XProfile:
    """A party's credential collection, indexed for negotiation lookups."""

    owner: str
    _credentials: dict[str, Credential] = field(default_factory=dict)

    @classmethod
    def of(cls, owner: str, credentials: Iterable[Credential] = ()) -> "XProfile":
        profile = cls(owner)
        for credential in credentials:
            profile.add(credential)
        return profile

    # -- mutation -------------------------------------------------------------

    def add(self, credential: Credential) -> None:
        if credential.subject != self.owner:
            raise CredentialFormatError(
                f"credential subject {credential.subject!r} does not match "
                f"profile owner {self.owner!r}"
            )
        if credential.cred_id in self._credentials:
            raise CredentialFormatError(
                f"duplicate credential id {credential.cred_id!r} in profile"
            )
        self._credentials[credential.cred_id] = credential

    def remove(self, cred_id: str) -> Credential:
        try:
            return self._credentials.pop(cred_id)
        except KeyError as exc:
            raise CredentialFormatError(
                f"no credential with id {cred_id!r} in profile"
            ) from exc

    # -- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._credentials)

    def __iter__(self) -> Iterator[Credential]:
        return iter(self._credentials.values())

    def __contains__(self, cred_id: str) -> bool:
        return cred_id in self._credentials

    def get(self, cred_id: str) -> Credential:
        try:
            return self._credentials[cred_id]
        except KeyError as exc:
            raise CredentialFormatError(
                f"no credential with id {cred_id!r} in profile"
            ) from exc

    def by_type(self, cred_type: str) -> list[Credential]:
        """All credentials of the given type, least sensitive first."""
        return least_sensitive_first(
            cred for cred in self if cred.cred_type == cred_type
        )

    def has_type(self, cred_type: str) -> bool:
        return any(cred.cred_type == cred_type for cred in self)

    def types(self) -> set[str]:
        return {cred.cred_type for cred in self}

    def with_attribute(self, attribute_name: str) -> list[Credential]:
        """Credentials carrying the named attribute, least sensitive first.

        Used when a policy constrains a property without naming the
        credential type (variable credential type, Section 4.1)."""
        return least_sensitive_first(
            cred for cred in self if cred.has_attribute(attribute_name)
        )

    def at_sensitivity(self, level: Sensitivity) -> list[Credential]:
        return [cred for cred in self if cred.sensitivity == level]

    # -- XML round-trip ----------------------------------------------------------

    def to_element(self) -> ET.Element:
        root = ET.Element("xprofile", {"owner": self.owner})
        for credential in sorted(self, key=lambda c: c.cred_id):
            root.append(credential.to_element())
        return root

    def to_xml(self) -> str:
        return canonicalize(self.to_element())

    @classmethod
    def from_element(cls, root: ET.Element) -> "XProfile":
        if root.tag != "xprofile":
            raise CredentialFormatError(
                f"expected <xprofile>, found <{root.tag}>"
            )
        owner = root.attrib.get("owner")
        if not owner:
            raise CredentialFormatError("xprofile lacks an owner attribute")
        profile = cls(owner)
        for node in root:
            profile.add(Credential.from_element(node))
        return profile

    @classmethod
    def from_xml(cls, text: str) -> "XProfile":
        return cls.from_element(parse_xml(text))
