"""X.509v2-style attribute certificates and VO membership tokens.

The VO Management toolkit identifies members with X.509 credentials
(paper Section 6.3): the VO Initiator creates, at runtime, an X.509
membership credential released to a member when it is assigned a role;
the token carries the VO public key used for authentication during the
operational phase.

An important behavioural detail the paper calls out: the X.509 v2
format "does not support partial hiding of the credential contents",
so only the *standard* and *trusting* negotiation strategies can be
used with X.509 credentials.  The model encodes that as
:attr:`AttributeCertificate.supports_partial_hiding` = False, which the
strategy layer enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import Mapping, Optional
from xml.etree import ElementTree as ET

from repro.credentials.attributes import AttributeValue
from repro.credentials.credential import ValidityPeriod
from repro.crypto.keys import PrivateKey, PublicKey, verify_b64
from repro.errors import CredentialFormatError
from repro.xmlutil.canonical import canonicalize, parse_xml

__all__ = ["AttributeCertificate", "VOMembershipToken"]


@dataclass(frozen=True)
class AttributeCertificate:
    """An X.509v2-style attribute certificate.

    Mirrors the RFC 3281 structure at the level the paper uses it:
    holder, issuer, serial number, validity, attributes, extensions,
    and the issuer's signature.  Attribute values are always disclosed
    in full — no partial hiding.
    """

    holder: str
    holder_key: str  # fingerprint of the holder's public key
    issuer: str
    serial: int
    validity: ValidityPeriod
    attributes: tuple[AttributeValue, ...] = ()
    extensions: tuple[tuple[str, str], ...] = ()
    signature_b64: Optional[str] = field(default=None, compare=False)

    supports_partial_hiding = False

    @classmethod
    def build(
        cls,
        holder: str,
        holder_key: str,
        issuer: str,
        serial: int,
        validity: ValidityPeriod,
        attributes: Mapping[str, object] = (),
        extensions: Mapping[str, str] | None = None,
    ) -> "AttributeCertificate":
        attrs = tuple(
            AttributeValue.of(name, value)
            for name, value in dict(attributes).items()
        )
        exts = tuple(sorted((extensions or {}).items()))
        return cls(holder, holder_key, issuer, serial, validity, attrs, exts)

    # -- attribute / extension access ---------------------------------------

    def attribute(self, name: str) -> AttributeValue:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(name)

    def extension(self, name: str) -> str:
        for key, value in self.extensions:
            if key == name:
                return value
        raise KeyError(name)

    def has_extension(self, name: str) -> bool:
        return any(key == name for key, _ in self.extensions)

    # -- signing --------------------------------------------------------------

    def signing_bytes(self) -> bytes:
        return canonicalize(self._body_element()).encode("utf-8")

    def signed_by(self, key: PrivateKey) -> "AttributeCertificate":
        return replace(self, signature_b64=key.sign_b64(self.signing_bytes()))

    def verify(self, issuer_key: PublicKey) -> bool:
        if self.signature_b64 is None:
            return False
        return verify_b64(issuer_key, self.signing_bytes(), self.signature_b64)

    @property
    def is_signed(self) -> bool:
        return self.signature_b64 is not None

    def is_valid_at(self, at: datetime) -> bool:
        return self.validity.contains(at)

    # -- XML round-trip ---------------------------------------------------------

    def _body_element(self) -> ET.Element:
        root = ET.Element("attributeCertificate", {"version": "2"})
        ET.SubElement(root, "holder").text = self.holder
        ET.SubElement(root, "holderKey").text = self.holder_key
        ET.SubElement(root, "issuer").text = self.issuer
        ET.SubElement(root, "serial").text = str(self.serial)
        validity = ET.SubElement(root, "validity")
        ET.SubElement(validity, "notBefore").text = (
            self.validity.not_before.isoformat()
        )
        ET.SubElement(validity, "notAfter").text = (
            self.validity.not_after.isoformat()
        )
        attrs = ET.SubElement(root, "attributes")
        for attr in self.attributes:
            node = ET.SubElement(attrs, attr.name, {"type": attr.type_tag})
            node.text = attr.xml_text
        exts = ET.SubElement(root, "extensions")
        for key, value in self.extensions:
            ET.SubElement(exts, "extension", {"oid": key}).text = value
        return root

    def to_element(self) -> ET.Element:
        root = self._body_element()
        if self.signature_b64 is not None:
            ET.SubElement(root, "signature").text = self.signature_b64
        return root

    def to_xml(self) -> str:
        return canonicalize(self.to_element())

    @classmethod
    def from_element(cls, root: ET.Element) -> "AttributeCertificate":
        if root.tag != "attributeCertificate":
            raise CredentialFormatError(
                f"expected <attributeCertificate>, found <{root.tag}>"
            )

        def text_of(tag: str) -> str:
            node = root.find(tag)
            if node is None or node.text is None:
                raise CredentialFormatError(
                    f"attribute certificate lacks <{tag}>"
                )
            return node.text.strip()

        validity_node = root.find("validity")
        if validity_node is None:
            raise CredentialFormatError("attribute certificate lacks <validity>")

        def validity_text(tag: str) -> str:
            node = validity_node.find(tag)
            if node is None or node.text is None:
                raise CredentialFormatError(f"validity lacks <{tag}>")
            return node.text.strip()

        try:
            validity = ValidityPeriod(
                datetime.fromisoformat(validity_text("notBefore")),
                datetime.fromisoformat(validity_text("notAfter")),
            )
            serial = int(text_of("serial"))
        except ValueError as exc:
            raise CredentialFormatError(str(exc)) from exc

        attributes = []
        attrs_node = root.find("attributes")
        if attrs_node is not None:
            for node in attrs_node:
                attributes.append(
                    AttributeValue.parse(
                        node.tag,
                        (node.text or "").strip(),
                        node.attrib.get("type", "string"),
                    )
                )
        extensions = []
        exts_node = root.find("extensions")
        if exts_node is not None:
            for node in exts_node:
                oid = node.attrib.get("oid")
                if not oid:
                    raise CredentialFormatError("extension lacks an oid")
                extensions.append((oid, (node.text or "").strip()))

        signature_node = root.find("signature")
        signature = (
            signature_node.text.strip()
            if signature_node is not None and signature_node.text
            else None
        )
        return cls(
            holder=text_of("holder"),
            holder_key=text_of("holderKey"),
            issuer=text_of("issuer"),
            serial=serial,
            validity=validity,
            attributes=tuple(attributes),
            extensions=tuple(extensions),
            signature_b64=signature,
        )

    @classmethod
    def from_xml(cls, text: str) -> "AttributeCertificate":
        return cls.from_element(parse_xml(text))


# Extension OIDs used by the VO toolkit.  The values are symbolic names,
# not real registered OIDs; they play the role of X.509 extension ids.
VO_NAME_EXT = "vo:name"
VO_ROLE_EXT = "vo:role"
VO_PUBLIC_KEY_EXT = "vo:publicKey"


class VOMembershipToken:
    """The VO membership certificate issued during formation.

    A thin, intention-revealing wrapper over an
    :class:`AttributeCertificate` whose extensions carry the VO name,
    the assigned role, and the VO public key ("the membership token
    contains the public key of the VO to be used for authentication",
    paper Section 5).
    """

    def __init__(self, certificate: AttributeCertificate) -> None:
        for needed in (VO_NAME_EXT, VO_ROLE_EXT, VO_PUBLIC_KEY_EXT):
            if not certificate.has_extension(needed):
                raise CredentialFormatError(
                    f"membership token lacks extension {needed!r}"
                )
        self.certificate = certificate

    @classmethod
    def issue(
        cls,
        vo_name: str,
        role: str,
        member: str,
        member_key: str,
        vo_public_key: PublicKey,
        initiator: str,
        initiator_key: PrivateKey,
        serial: int,
        validity: ValidityPeriod,
    ) -> "VOMembershipToken":
        certificate = AttributeCertificate.build(
            holder=member,
            holder_key=member_key,
            issuer=initiator,
            serial=serial,
            validity=validity,
            attributes={"membership": vo_name},
            extensions={
                VO_NAME_EXT: vo_name,
                VO_ROLE_EXT: role,
                VO_PUBLIC_KEY_EXT: vo_public_key.to_json(),
            },
        ).signed_by(initiator_key)
        return cls(certificate)

    @property
    def vo_name(self) -> str:
        return self.certificate.extension(VO_NAME_EXT)

    @property
    def role(self) -> str:
        return self.certificate.extension(VO_ROLE_EXT)

    @property
    def member(self) -> str:
        return self.certificate.holder

    @property
    def vo_public_key(self) -> PublicKey:
        return PublicKey.from_json(self.certificate.extension(VO_PUBLIC_KEY_EXT))

    def verify(self, initiator_key: PublicKey) -> bool:
        return self.certificate.verify(initiator_key)

    def to_xml(self) -> str:
        return self.certificate.to_xml()

    @classmethod
    def from_xml(cls, text: str) -> "VOMembershipToken":
        return cls(AttributeCertificate.from_xml(text))
