"""Typed attribute values carried inside credentials.

Credential content is a flat set of named attributes (Fig. 6 shows a
single ``QualityRegulation`` attribute).  Policy conditions compare
attributes as strings, numbers, dates, or booleans, so each attribute
records an explicit type tag that round-trips through XML.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime
from typing import Union

from repro.errors import CredentialFormatError

__all__ = ["AttributeValue"]

_Scalar = Union[str, int, float, bool, date, datetime]

_TYPE_TAGS = {
    str: "string",
    int: "integer",
    float: "decimal",
    bool: "boolean",
    date: "date",
    datetime: "dateTime",
}


@dataclass(frozen=True)
class AttributeValue:
    """A single named, typed attribute of a credential.

    >>> AttributeValue.of("age", 42).xml_text
    '42'
    >>> AttributeValue.parse("age", "42", "integer").value
    42
    """

    name: str
    value: _Scalar
    type_tag: str

    @classmethod
    def of(cls, name: str, value: _Scalar) -> "AttributeValue":
        """Build an attribute, inferring the XML type tag from ``value``."""
        if not name or not name[0].isalpha():
            raise CredentialFormatError(
                f"invalid attribute name {name!r}: must start with a letter"
            )
        # bool is a subclass of int: check it first.
        if isinstance(value, bool):
            tag = "boolean"
        elif isinstance(value, datetime):
            tag = "dateTime"
        elif isinstance(value, date):
            tag = "date"
        else:
            tag = _TYPE_TAGS.get(type(value))
        if tag is None:
            raise CredentialFormatError(
                f"unsupported attribute type {type(value).__name__} "
                f"for {name!r}"
            )
        return cls(name, value, tag)

    @property
    def xml_text(self) -> str:
        """The text form stored in the credential XML."""
        if self.type_tag == "boolean":
            return "true" if self.value else "false"
        if self.type_tag in ("date", "dateTime"):
            return self.value.isoformat()
        return str(self.value)

    @classmethod
    def parse(cls, name: str, text: str, type_tag: str) -> "AttributeValue":
        """Reconstruct an attribute from its XML text and type tag."""
        try:
            if type_tag == "string":
                return cls(name, text, type_tag)
            if type_tag == "integer":
                return cls(name, int(text), type_tag)
            if type_tag == "decimal":
                return cls(name, float(text), type_tag)
            if type_tag == "boolean":
                if text not in ("true", "false"):
                    raise ValueError(f"not a boolean literal: {text!r}")
                return cls(name, text == "true", type_tag)
            if type_tag == "date":
                return cls(name, date.fromisoformat(text), type_tag)
            if type_tag == "dateTime":
                return cls(name, datetime.fromisoformat(text), type_tag)
        except ValueError as exc:
            raise CredentialFormatError(
                f"attribute {name!r}: cannot parse {text!r} as {type_tag}"
            ) from exc
        raise CredentialFormatError(
            f"attribute {name!r}: unknown type tag {type_tag!r}"
        )

    def comparable(self) -> Union[str, float]:
        """Value in the form policy conditions compare against.

        Numbers compare numerically; everything else compares as its
        XML string form (ISO dates order correctly as strings).
        """
        if self.type_tag in ("integer", "decimal"):
            return float(self.value)
        return self.xml_text
