"""Revocation lists and the registry negotiators consult.

The credential-exchange phase "checks for revocation and validity
dates" (paper Section 4.2) and a negotiation fails outright when "a
party uses a revoked certificate".  Each authority maintains a signed
revocation list of serial numbers; parties consult a registry mapping
issuer names to their current lists.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.keys import PrivateKey, PublicKey, verify_b64
from repro.errors import CredentialRevokedError, ErrorCode, SignatureError

__all__ = ["RevocationList", "RevocationRegistry"]


@dataclass
class RevocationList:
    """A credential authority's list of revoked serial numbers."""

    issuer: str
    serials: set[int] = field(default_factory=set)
    version: int = 0
    signature_b64: Optional[str] = None

    def revoke(self, serial: int) -> None:
        """Add ``serial``; bumps the list version and drops the signature
        (the authority must re-sign)."""
        if serial not in self.serials:
            self.serials.add(serial)
            self.version += 1
            self.signature_b64 = None

    def is_revoked(self, serial: int) -> bool:
        return serial in self.serials

    def signing_bytes(self) -> bytes:
        payload = {
            "issuer": self.issuer,
            "version": self.version,
            "serials": sorted(self.serials),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def sign(self, key: PrivateKey) -> None:
        self.signature_b64 = key.sign_b64(self.signing_bytes())

    def verify(self, key: PublicKey) -> bool:
        if self.signature_b64 is None:
            return False
        return verify_b64(key, self.signing_bytes(), self.signature_b64)


@dataclass
class RevocationRegistry:
    """Published revocation lists, looked up by issuer name.

    In the paper's deployment each party would fetch CRLs from the
    issuing authorities; here the registry models that distribution
    point.  An issuer without a published list is treated as having
    revoked nothing.
    """

    _lists: dict[str, RevocationList] = field(default_factory=dict)
    #: Serials as of each issuer's last installed publication.  Kept
    #: separately from the list itself because authorities mutate their
    #: list in place (``revoke()`` then re-sign then re-publish) — the
    #: newly-revoked delta must be computed against the *published*
    #: snapshot, not the shared mutable object.
    _snapshots: dict[str, frozenset[int]] = field(default_factory=dict)

    def _install(self, crl: RevocationList) -> frozenset[int]:
        """Accept ``crl`` as the issuer's current list (no cache work).

        Rejects unsigned lists — :meth:`RevocationList.revoke` drops
        the signature, and a list the authority never re-signed must
        not be distributed — and stale versions.  Returns the serials
        newly revoked relative to the publication it superseded, so the
        caller (:meth:`repro.trust.TrustBus.retract`) can evict exactly
        the cache entries this publication contradicts.
        """
        if crl.signature_b64 is None:
            raise SignatureError(
                f"unsigned revocation list for {crl.issuer!r}: re-sign "
                "after revoke() before publishing",
                error_code=ErrorCode.UNSIGNED_REVOCATION_LIST,
            )
        current = self._lists.get(crl.issuer)
        if current is not None and current.version > crl.version:
            raise SignatureError(
                f"stale revocation list for {crl.issuer!r}: "
                f"version {crl.version} < published {current.version}"
            )
        previous = self._snapshots.get(crl.issuer, frozenset())
        self._lists[crl.issuer] = crl
        self._snapshots[crl.issuer] = frozenset(crl.serials)
        return frozenset(crl.serials) - previous

    def publish(self, crl: RevocationList) -> None:
        """Deprecated — retract a CRL-publication :class:`TrustEvent`
        through :class:`repro.trust.TrustBus` (re-exported by
        :mod:`repro.api`) instead, which also evicts the cached
        verdicts the new list contradicts."""
        warnings.warn(
            "RevocationRegistry.publish is deprecated; retract a "
            "TrustEvent through repro.trust.TrustBus (see repro.api), "
            "e.g. TrustBus(registry).publish_crl(crl)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.trust import TrustBus

        TrustBus(registry=self).publish_crl(crl)

    def list_for(self, issuer: str) -> Optional[RevocationList]:
        return self._lists.get(issuer)

    def is_revoked(self, issuer: str, serial: int) -> bool:
        crl = self._lists.get(issuer)
        return crl is not None and crl.is_revoked(serial)

    def ensure_not_revoked(self, issuer: str, serial: int) -> None:
        if self.is_revoked(issuer, serial):
            raise CredentialRevokedError(
                f"credential serial {serial} was revoked by {issuer!r}"
            )
