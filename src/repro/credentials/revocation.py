"""Revocation lists and the registry negotiators consult.

The credential-exchange phase "checks for revocation and validity
dates" (paper Section 4.2) and a negotiation fails outright when "a
party uses a revoked certificate".  Each authority maintains a signed
revocation list of serial numbers; parties consult a registry mapping
issuer names to their current lists.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.keys import PrivateKey, PublicKey, verify_b64
from repro.errors import CredentialRevokedError, SignatureError
from repro.perf import invalidate_issuer_signatures

__all__ = ["RevocationList", "RevocationRegistry"]


@dataclass
class RevocationList:
    """A credential authority's list of revoked serial numbers."""

    issuer: str
    serials: set[int] = field(default_factory=set)
    version: int = 0
    signature_b64: Optional[str] = None

    def revoke(self, serial: int) -> None:
        """Add ``serial``; bumps the list version and drops the signature
        (the authority must re-sign)."""
        if serial not in self.serials:
            self.serials.add(serial)
            self.version += 1
            self.signature_b64 = None

    def is_revoked(self, serial: int) -> bool:
        return serial in self.serials

    def signing_bytes(self) -> bytes:
        payload = {
            "issuer": self.issuer,
            "version": self.version,
            "serials": sorted(self.serials),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def sign(self, key: PrivateKey) -> None:
        self.signature_b64 = key.sign_b64(self.signing_bytes())

    def verify(self, key: PublicKey) -> bool:
        if self.signature_b64 is None:
            return False
        return verify_b64(key, self.signing_bytes(), self.signature_b64)


@dataclass
class RevocationRegistry:
    """Published revocation lists, looked up by issuer name.

    In the paper's deployment each party would fetch CRLs from the
    issuing authorities; here the registry models that distribution
    point.  An issuer without a published list is treated as having
    revoked nothing.
    """

    _lists: dict[str, RevocationList] = field(default_factory=dict)

    def publish(self, crl: RevocationList) -> None:
        current = self._lists.get(crl.issuer)
        if current is not None and current.version > crl.version:
            raise SignatureError(
                f"stale revocation list for {crl.issuer!r}: "
                f"version {crl.version} < published {current.version}"
            )
        self._lists[crl.issuer] = crl
        # Revocation is the nonmonotonic event of the trust model: a new
        # list can retract previously-valid credentials, so cached
        # verification verdicts for this issuer must not outlive it.
        invalidate_issuer_signatures(crl.issuer)

    def list_for(self, issuer: str) -> Optional[RevocationList]:
        return self._lists.get(issuer)

    def is_revoked(self, issuer: str, serial: int) -> bool:
        crl = self._lists.get(issuer)
        return crl is not None and crl.is_revoked(serial)

    def ensure_not_revoked(self, issuer: str, serial: int) -> None:
        if self.is_revoked(issuer, serial):
            raise CredentialRevokedError(
                f"credential serial {serial} was revoked by {issuer!r}"
            )
