"""Credential layer: X-TNL credentials and their infrastructure.

X-TNL credentials (paper Section 4.1, Fig. 6) are signed XML documents
carrying a party's attributes.  This subpackage implements:

- :mod:`attributes` — typed attribute values,
- :mod:`credential` — the credential document (header/content/signature),
- :mod:`profile` — the X-Profile collecting a party's credentials,
- :mod:`sensitivity` — low/medium/high labels and ``CredCluster``,
- :mod:`authority` — Credential Authorities issuing and revoking,
- :mod:`revocation` — revocation lists,
- :mod:`x509` — X.509v2-style attribute certificates and the VO
  membership token,
- :mod:`selective` — the hash-based selective-disclosure extension the
  paper proposes in Section 6.3,
- :mod:`chain` — credential chains resolved during the exchange phase,
- :mod:`validation` — the full verification pipeline used when a
  credential is received.
"""

from repro.credentials.attributes import AttributeValue
from repro.credentials.authority import CredentialAuthority
from repro.credentials.chain import CredentialChain, ChainResolver
from repro.credentials.credential import Credential, ValidityPeriod
from repro.credentials.profile import XProfile
from repro.credentials.revocation import RevocationList, RevocationRegistry
from repro.credentials.selective import SelectiveCredential
from repro.credentials.sensitivity import Sensitivity, cred_cluster
from repro.credentials.validation import (
    CredentialValidator,
    ValidationReport,
    batch_prewarm_signatures,
)
from repro.credentials.x509 import AttributeCertificate, VOMembershipToken

__all__ = [
    "AttributeValue",
    "Credential",
    "ValidityPeriod",
    "XProfile",
    "Sensitivity",
    "cred_cluster",
    "CredentialAuthority",
    "RevocationList",
    "RevocationRegistry",
    "AttributeCertificate",
    "VOMembershipToken",
    "SelectiveCredential",
    "CredentialChain",
    "ChainResolver",
    "CredentialValidator",
    "batch_prewarm_signatures",
    "ValidationReport",
]
