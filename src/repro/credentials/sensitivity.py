"""Sensitivity labels and the ``CredCluster`` function of Algorithm 1.

The paper assumes every credential carries a sensitivity label drawn
from {low, medium, high} and that Algorithm 1 clusters a party's
credentials by label, preferring to disclose the least sensitive
credential that implements a requested concept.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.credentials.credential import Credential

__all__ = ["Sensitivity", "cred_cluster", "least_sensitive_first"]


class Sensitivity(IntEnum):
    """Credential sensitivity; lower values are safer to disclose."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    @classmethod
    def parse(cls, text: str) -> "Sensitivity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown sensitivity {text!r}; expected low/medium/high"
            ) from None

    @property
    def label(self) -> str:
        return self.name.lower()


def cred_cluster(
    credentials: Iterable["Credential"], level: Sensitivity
) -> list["Credential"]:
    """``CredCluster`` of Algorithm 1: credentials with exactly ``level``."""
    return [cred for cred in credentials if cred.sensitivity == level]


def least_sensitive_first(
    credentials: Iterable["Credential"],
) -> list["Credential"]:
    """Credentials ordered low → medium → high, ties kept stable.

    This is the disclosure-preference order Algorithm 1 walks: it tries
    the low cluster, then medium, then high.
    """
    return sorted(credentials, key=lambda cred: int(cred.sensitivity))


# ---------------------------------------------------------------------------
# Automated labelling
# ---------------------------------------------------------------------------

#: Sentinel for :meth:`CredentialAuthority.issue`: classify the
#: credential's sensitivity automatically at issuance time.
AUTO = "auto"

# Keyword tiers for the classifier.  "Sensitivity is by assumption
# represented by means of a label associated with each credential, and
# it can be determined efficiently in an automated fashion" (paper
# Section 4.3.1) — this heuristic is that automation: financial and
# identity material is high, business/compliance documents medium,
# everything else (public memberships, QoS advertisements, tickets) low.
_HIGH_KEYWORDS = frozenset({
    "balance", "financial", "tax", "salary", "income", "revenue",
    "passport", "identity", "ssn", "biometric", "medical", "health",
    "criminal", "bank", "account",
})
_MEDIUM_KEYWORDS = frozenset({
    "license", "licence", "contract", "capability", "seal", "privacy",
    "registration", "sheet", "audit", "insurance", "contractor",
})


def _tokens(text: str) -> set[str]:
    """Lower-cased word tokens; splits camelCase and punctuation."""
    import re

    pieces: list[str] = []
    for chunk in re.split(r"[^A-Za-z]+", text):
        if chunk:
            pieces.extend(
                re.split(r"(?<=[a-z])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])", chunk)
            )
    return {piece.lower() for piece in pieces if piece}


def classify_sensitivity(
    cred_type: str, attribute_names: Iterable[str] = ()
) -> Sensitivity:
    """Heuristically label a credential from its type and attributes."""
    tokens = _tokens(cred_type)
    for name in attribute_names:
        tokens |= _tokens(name)
    if tokens & _HIGH_KEYWORDS:
        return Sensitivity.HIGH
    if tokens & _MEDIUM_KEYWORDS:
        return Sensitivity.MEDIUM
    return Sensitivity.LOW
