"""Hash-based selective disclosure of credential attributes.

Section 6.3 of the paper notes that plain X.509 v2 prevents the
suspicious and strong-suspicious strategies because the format has no
partial hiding, and sketches the fix the authors were exploring:

    "substitute the attributes in clear with attributes whose content
    is the hash value of the concatenation of attribute name and
    attribute value.  The signature could be computed over the whole
    hashed content."

This module implements that proposal (with per-attribute random salts,
without which low-entropy attribute values would be guessable from the
hashes alone):

1. the issuer replaces every attribute with
   ``H(name || value || salt)`` and signs the full list of commitments;
2. the holder discloses any subset of attributes by revealing the
   ``(name, value, salt)`` openings for just that subset;
3. the verifier recomputes each opened commitment, checks it appears in
   the signed commitment list, and verifies the issuer's signature over
   *all* commitments — so hidden attributes stay hidden while the
   signature still covers them.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.credentials.attributes import AttributeValue
from repro.credentials.credential import Credential, ValidityPeriod
from repro.crypto.keys import PrivateKey, PublicKey, verify_b64
from repro.errors import SelectiveDisclosureError

__all__ = ["SelectiveCredential", "DisclosedAttribute", "commit_attribute"]


def commit_attribute(name: str, xml_text: str, salt: str) -> str:
    """Commitment ``H(name || value || salt)`` as lowercase hex."""
    payload = f"{name}\x00{xml_text}\x00{salt}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class DisclosedAttribute:
    """An opened commitment: the attribute plus its salt."""

    attribute: AttributeValue
    salt: str

    @property
    def commitment(self) -> str:
        return commit_attribute(
            self.attribute.name, self.attribute.xml_text, self.salt
        )


@dataclass
class SelectiveCredential:
    """A credential whose attributes are hash commitments.

    The holder keeps the full openings; a *presentation* reveals only a
    chosen subset.  The issuer's signature covers the sorted commitment
    list together with the credential metadata, so it remains valid for
    every subset the holder chooses to open.
    """

    cred_type: str
    cred_id: str
    issuer: str
    subject: str
    subject_key: str
    validity: ValidityPeriod
    serial: int
    commitments: tuple[str, ...]
    signature_b64: str
    _openings: dict[str, DisclosedAttribute] = field(default_factory=dict)

    # -- issuance ---------------------------------------------------------------

    @classmethod
    def issue_from(
        cls, credential: Credential, issuer_key: PrivateKey
    ) -> "SelectiveCredential":
        """Derive a selective-disclosure form of ``credential``.

        The plaintext credential never leaves the issuing context; only
        commitments are signed.
        """
        openings = {
            attr.name: DisclosedAttribute(attr, secrets.token_hex(16))
            for attr in credential.attributes
        }
        commitments = tuple(
            sorted(opening.commitment for opening in openings.values())
        )
        body = cls(
            cred_type=credential.cred_type,
            cred_id=credential.cred_id,
            issuer=credential.issuer,
            subject=credential.subject,
            subject_key=credential.subject_key,
            validity=credential.validity,
            serial=credential.serial,
            commitments=commitments,
            signature_b64="",
            _openings=openings,
        )
        signature = issuer_key.sign_b64(body.signing_bytes())
        body.signature_b64 = signature
        return body

    def signing_bytes(self) -> bytes:
        parts = [
            self.cred_type,
            self.cred_id,
            self.issuer,
            self.subject,
            self.subject_key,
            self.validity.not_before.isoformat(),
            self.validity.not_after.isoformat(),
            str(self.serial),
            *self.commitments,
        ]
        return "\x1f".join(parts).encode("utf-8")

    # -- presentation -------------------------------------------------------------

    def present(self, attribute_names: Iterable[str]) -> "Presentation":
        """Build a presentation disclosing only ``attribute_names``."""
        disclosed = []
        for name in attribute_names:
            opening = self._openings.get(name)
            if opening is None:
                raise SelectiveDisclosureError(
                    f"no opening held for attribute {name!r}"
                )
            disclosed.append(opening)
        return Presentation(credential=self, disclosed=tuple(disclosed))

    def attribute_names(self) -> list[str]:
        return sorted(self._openings)


@dataclass(frozen=True)
class Presentation:
    """A selective disclosure: the signed commitments plus a subset of
    openings."""

    credential: SelectiveCredential
    disclosed: tuple[DisclosedAttribute, ...]

    def verify(self, issuer_key: PublicKey) -> Mapping[str, AttributeValue]:
        """Verify and return the disclosed attributes by name.

        Raises :class:`SelectiveDisclosureError` when the signature does
        not verify or an opening does not match a signed commitment.
        """
        if not verify_b64(
            issuer_key,
            self.credential.signing_bytes(),
            self.credential.signature_b64,
        ):
            raise SelectiveDisclosureError(
                f"issuer signature on {self.credential.cred_id!r} "
                "does not verify"
            )
        committed = set(self.credential.commitments)
        revealed: dict[str, AttributeValue] = {}
        for opening in self.disclosed:
            if opening.commitment not in committed:
                raise SelectiveDisclosureError(
                    f"opening for {opening.attribute.name!r} does not match "
                    "any signed commitment"
                )
            revealed[opening.attribute.name] = opening.attribute
        return revealed

    @property
    def hidden_count(self) -> int:
        return len(self.credential.commitments) - len(self.disclosed)
