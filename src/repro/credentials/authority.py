"""Credential Authorities: issuance, signing, and revocation.

"A credential is a set of identity attributes of a party issued by a
Credential Authority (CA)" (paper Section 4.1).  An authority owns a
key pair, allocates serial numbers, signs credential bodies, and
maintains the revocation list for everything it issued.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping

from repro.credentials.credential import Credential, ValidityPeriod
from repro.credentials.revocation import RevocationList
from repro.credentials.sensitivity import AUTO, Sensitivity, classify_sensitivity
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import IssuanceError

__all__ = ["CredentialAuthority"]


@dataclass
class CredentialAuthority:
    """An issuing authority for X-TNL credentials.

    >>> ca = CredentialAuthority.create("INFN", key_bits=512)
    >>> cred = ca.issue(
    ...     cred_type="ISO 9000 Certified",
    ...     subject="AerospaceCo",
    ...     subject_key="abc123",
    ...     attributes={"QualityRegulation": "UNI EN ISO 9000"},
    ...     not_before=datetime(2009, 10, 26, 21, 32, 52),
    ...     days=365,
    ... )
    >>> cred.is_signed
    True
    """

    name: str
    keypair: KeyPair
    issued_types: set[str] = field(default_factory=set)
    _serials: itertools.count = field(default_factory=lambda: itertools.count(1))
    crl: RevocationList = field(init=False)

    def __post_init__(self) -> None:
        self.crl = RevocationList(issuer=self.name)
        self.crl.sign(self.keypair.private)

    @classmethod
    def create(cls, name: str, key_bits: int = 1024) -> "CredentialAuthority":
        return cls(name=name, keypair=KeyPair.generate(key_bits))

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public

    def issue(
        self,
        cred_type: str,
        subject: str,
        subject_key: str,
        attributes: Mapping[str, object],
        not_before: datetime,
        days: int = 365,
        sensitivity: Sensitivity | str = Sensitivity.LOW,
        cred_id: str | None = None,
    ) -> Credential:
        """Issue and sign a credential for ``subject``.

        Pass ``sensitivity=sensitivity.AUTO`` to label the credential
        with the keyword classifier instead of an explicit level.
        """
        if not cred_type:
            raise IssuanceError("credential type must be non-empty")
        if sensitivity == AUTO:
            sensitivity = classify_sensitivity(cred_type, attributes.keys())
        serial = next(self._serials)
        if cred_id is None:
            cred_id = f"{self.name}:{cred_type}:{serial}"
        body = Credential.build(
            cred_type=cred_type,
            cred_id=cred_id,
            issuer=self.name,
            subject=subject,
            subject_key=subject_key,
            validity=ValidityPeriod.starting(not_before, days),
            attributes=attributes,
            sensitivity=sensitivity,
            serial=serial,
        )
        signature = self.keypair.private.sign_b64(body.signing_bytes())
        self.issued_types.add(cred_type)
        return body.with_signature(signature)

    def revoke(self, credential: Credential) -> None:
        """Revoke a credential this authority issued and re-sign the CRL."""
        if credential.issuer != self.name:
            raise IssuanceError(
                f"{self.name!r} cannot revoke a credential issued by "
                f"{credential.issuer!r}"
            )
        self.crl.revoke(credential.serial)
        self.crl.sign(self.keypair.private)

    def has_revoked(self, credential: Credential) -> bool:
        return self.crl.is_revoked(credential.serial)
