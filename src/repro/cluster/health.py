"""Health-aware shard tracking: ejection, probing, re-admission.

The failover path in :class:`~repro.cluster.sharded.ShardedTNService`
handles shards that are *dead* (transport errors kill the node and
migrate its sessions).  This module handles the nastier middle
ground: shards that are **degraded** — answering, but pathologically
slowly, or flapping with transient failures — which failover never
touches because the calls eventually succeed.

:class:`HealthTracker` is sans-IO bookkeeping (no clock, no
transport; the router reports observations and asks questions):

- ``record_failure`` counts consecutive transient failures per shard;
  at ``ejection_threshold`` the shard is **ejected** — new sessions
  route around it via the ring's preference order (existing pinned
  sessions stay put; moving them is failover's job).
- ``record_latency`` treats a response slower than ``slow_after_ms``
  as a strike too: a shard can be ejected for being slow without ever
  failing a call.
- While ejected, the router half-open **probes** the shard at most
  once per ``probe_interval_ms`` (on a discarded clock branch, so
  callers never pay for probing); a healthy probe re-admits it.

State machine per shard::

    HEALTHY ──(strikes >= threshold)──> EJECTED
    EJECTED ──(probe due, probe healthy)──> HEALTHY
    EJECTED ──(probe due, probe fails)──> EJECTED (strike, window resets)

The tracker is shared by the sync and asyncio routers; the live
healthy-shard count is surfaced as the ``cluster.healthy_shards`` obs
gauge by the router after every observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["HealthPolicy", "HealthTracker", "ShardHealth"]


@dataclass(frozen=True, kw_only=True)
class HealthPolicy:
    """Knobs for shard ejection and re-admission."""

    #: Consecutive strikes (transient failures and/or slow responses)
    #: before a shard is ejected from new-session routing.
    ejection_threshold: int = 3
    #: Minimum simulated ms between half-open probes of an ejected
    #: shard.
    probe_interval_ms: float = 1000.0
    #: A successful response slower than this counts as a strike;
    #: ``None`` disables slow-shard detection (failures only).
    slow_after_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ejection_threshold < 1:
            raise ValueError(
                f"ejection_threshold must be >= 1, got "
                f"{self.ejection_threshold}"
            )
        if self.probe_interval_ms < 0:
            raise ValueError(
                f"probe_interval_ms must be >= 0, got "
                f"{self.probe_interval_ms}"
            )
        if self.slow_after_ms is not None and self.slow_after_ms <= 0:
            raise ValueError(
                f"slow_after_ms must be > 0, got {self.slow_after_ms}"
            )


@dataclass
class ShardHealth:
    """Per-shard bookkeeping."""

    strikes: int = 0
    ejected: bool = False
    ejected_at_ms: float = 0.0
    last_probe_ms: Optional[float] = None
    ejections: int = 0
    readmissions: int = 0


class HealthTracker:
    """Sans-IO consecutive-failure/slow-shard ejection tracker."""

    def __init__(self, policy: HealthPolicy) -> None:
        self.policy = policy
        self._shards: dict[str, ShardHealth] = {}

    def shard(self, url: str) -> ShardHealth:
        entry = self._shards.get(url)
        if entry is None:
            entry = self._shards[url] = ShardHealth()
        return entry

    # -- observations -----------------------------------------------------------------

    def record_success(self, url: str) -> None:
        """A healthy (fast enough) response: strikes reset.

        Does **not** re-admit an ejected shard — only a probe may do
        that, so one lucky routed call (e.g. a pinned session that must
        stay put) can't sneak a degraded shard back into rotation.
        """
        self.shard(url).strikes = 0

    def record_failure(self, url: str, now_ms: float) -> bool:
        """A transient failure; returns True when this strike ejects."""
        entry = self.shard(url)
        entry.strikes += 1
        if not entry.ejected and entry.strikes >= self.policy.ejection_threshold:
            self._eject(entry, now_ms)
            return True
        return False

    def record_latency(self, url: str, latency_ms: float,
                       now_ms: float) -> bool:
        """A successful response's latency; slow counts as a strike."""
        slow_after = self.policy.slow_after_ms
        if slow_after is None:
            self.record_success(url)
            return False
        if latency_ms <= slow_after:
            self.record_success(url)
            return False
        return self.record_failure(url, now_ms)

    def _eject(self, entry: ShardHealth, now_ms: float) -> None:
        entry.ejected = True
        entry.ejected_at_ms = now_ms
        entry.last_probe_ms = None
        entry.ejections += 1

    # -- probing ----------------------------------------------------------------------

    def probe_due(self, url: str, now_ms: float) -> bool:
        """Whether an ejected shard may be probed now (rate-limited)."""
        entry = self.shard(url)
        if not entry.ejected:
            return False
        since = (
            entry.ejected_at_ms if entry.last_probe_ms is None
            else entry.last_probe_ms
        )
        return now_ms - since >= self.policy.probe_interval_ms

    def note_probe(self, url: str, now_ms: float) -> None:
        self.shard(url).last_probe_ms = now_ms

    def readmit(self, url: str) -> None:
        """A probe came back healthy: the shard rejoins rotation."""
        entry = self.shard(url)
        if entry.ejected:
            entry.ejected = False
            entry.readmissions += 1
        entry.strikes = 0

    # -- queries ----------------------------------------------------------------------

    def is_healthy(self, url: str) -> bool:
        return not self.shard(url).ejected

    def ejected_urls(self) -> list[str]:
        return sorted(
            url for url, entry in self._shards.items() if entry.ejected
        )

    def healthy_count(self, urls: list[str]) -> int:
        """How many of ``urls`` are currently in rotation."""
        return sum(1 for url in urls if self.is_healthy(url))

    def total_ejections(self) -> int:
        """Ejections across all shards over the tracker's lifetime."""
        return sum(entry.ejections for entry in self._shards.values())

    def total_readmissions(self) -> int:
        """Probe re-admissions across all shards over the lifetime."""
        return sum(entry.readmissions for entry in self._shards.values())
