"""Consistent-hash ring with virtual nodes.

Standard construction: every node is hashed onto the ring at
``replicas`` points (``"{node}#{i}"``), a key routes to the first
node point clockwise from the key's hash, and removing a node only
re-routes the keys that mapped to it — the property that makes
failover migrate one shard's sessions instead of reshuffling the
whole cluster.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["HashRing"]


def _hash(key: str) -> int:
    return int(hashlib.sha256(key.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """Maps string keys onto member nodes."""

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 32) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def nodes(self) -> list[str]:
        return sorted(self._members)

    def add(self, node: str) -> None:
        if node in self._members:
            return
        self._members.add(node)
        for replica in range(self.replicas):
            point = (_hash(f"{node}#{replica}"), node)
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._members:
            return
        self._members.discard(node)
        self._points = [
            point for point in self._points if point[1] != node
        ]

    def route(self, key: str) -> str:
        """Node owning ``key`` (first ring point clockwise)."""
        if not self._points:
            raise LookupError("hash ring is empty")
        index = bisect.bisect_right(
            self._points, (_hash(key), "￿")
        )
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str, count: int) -> list[str]:
        """First ``count`` distinct nodes clockwise from ``key`` —
        the failover order for sessions placed at ``key``."""
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, (_hash(key), "￿"))
        seen: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) >= count:
                    break
        return seen
