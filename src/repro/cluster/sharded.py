"""N TN shards behind one URL, with failover and session migration.

Topology (simulated, same process)::

    client ── urn:vo:tn ──> ShardedTNService.handle
                               │ consistent hash / placement map
                               ├─> urn:vo:tn:s0  TNWebService (+ WAL)
                               ├─> urn:vo:tn:s1  TNWebService (+ WAL)
                               └─> urn:vo:tn:s2  TNWebService (+ WAL)

Routing: ``StartNegotiation`` hashes its idempotency key (``requestId``
when present, else the requester name) onto the ring; the minted
negotiation id is pinned to that shard in the placement map, and the
phase operations follow the pin.  Forwarding goes through whatever
transport the router was built on — stack it on a
:class:`~repro.faults.FaultInjector` and shard hops become faultable
calls like any other.

Failover: a forward that fails with a transport-level error (endpoint
down, response lost) declares the shard dead, replays its durable
session journal into the ring successor via
:meth:`TNWebService.adopt_session`, re-points the placements, and
retries the in-flight call there — the client sees one slow call, not
a failed negotiation.  Dead shards restart after ``restart_after_ms``
of simulated time (or explicitly via :meth:`restart_node`), recovering
from their journal whatever was *not* migrated away while they were
down.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional
from xml.etree import ElementTree as ET

from repro.cluster.health import HealthPolicy, HealthTracker
from repro.cluster.ring import HashRing
from repro.errors import (
    ErrorCode,
    OverloadError,
    ReproError,
    ServiceError,
    TransportError,
)
from repro.hardening.admission import AdmissionStats
from repro.hardening.config import HardeningConfig
from repro.hardening.guard import GuardStats
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.cache import SequenceCache
from repro.negotiation.strategies import Strategy
from repro.obs import (
    enabled as obs_enabled,
    event as obs_event,
    gauge as obs_gauge,
)
from repro.services.resilience_core import TRANSIENT_ERRORS
from repro.services.tn_service import (
    NegotiationSession,
    SESSION_COLLECTION,
    TNWebService,
)
from repro.storage.document_store import XMLDocumentStore
from repro.storage.session_store import (
    InMemorySessionStore,
    SessionStore,
    WALSessionStore,
)

__all__ = ["ShardedTNService", "ShardNode"]

#: Bounded ``requestId -> recorded start`` replay map on the router.
#: Route-by-hash is not stable across a negotiation's lifetime — a
#: shard can die, get ejected by the health tracker, or lose a hedge
#: race and release its freshly-minted session — so a *retry* of a
#: remembered ``StartNegotiation`` token is answered here, from the
#: response that actually won, instead of being re-routed to a shard
#: that may no longer hold the dedup entry (which would mint a
#: duplicate session, or accept a tampered reuse of the token).
_START_REPLAY_DEPTH = 1024


@dataclass
class ShardNode:
    """One shard: its service, stores, and liveness bookkeeping."""

    index: int
    url: str
    store: XMLDocumentStore
    session_store: SessionStore
    service: Optional[TNWebService] = None
    live: bool = True
    restart_at_ms: Optional[float] = None
    kills: int = 0
    restarts: int = 0
    #: Counters harvested from service generations that have died.
    internal_errors_accum: int = 0
    guard_accum: GuardStats = field(default_factory=GuardStats)
    admission_accum: AdmissionStats = field(default_factory=AdmissionStats)


class _AggregateView:
    """Duck-types the ``.stats`` attribute of a guard/admission
    controller with cluster-wide totals."""

    def __init__(self, stats) -> None:
        self.stats = stats


class ShardedTNService:
    """Consistent-hash session router over N TN shards."""

    def __init__(
        self,
        owner: TrustXAgent,
        transport,
        url: str = "urn:vo:tn",
        shards: int = 3,
        agents: Optional[dict[str, TrustXAgent]] = None,
        cache: Optional[SequenceCache] = None,
        checkpoints: bool = True,
        hardening: Optional[HardeningConfig] = None,
        wal_dir: Optional[str] = None,
        restart_after_ms: float = 2000.0,
        replicas: int = 32,
        max_in_flight: Optional[int] = None,
        health: Optional[HealthPolicy] = None,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"cluster needs >= 1 shard, got {shards}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ServiceError(
                f"cluster max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.owner = owner
        self.transport = transport
        self.url = url
        self.cache = cache
        self.checkpoints = checkpoints
        self.hardening = hardening
        self.restart_after_ms = restart_after_ms
        #: Requester-name -> agent map consulted when sessions are
        #: restored or adopted; mutable so late-registered requesters
        #: still resume deterministically.
        self.agents: dict[str, TrustXAgent] = dict(agents or {})
        #: Cluster-level shed policy: when the aggregate number of
        #: in-flight sessions across live shards reaches this cap, the
        #: router refuses new ``StartNegotiation`` traffic with a
        #: backpressure hint instead of piling work onto per-shard
        #: queues (None disables).
        self.max_in_flight = max_in_flight
        #: Health-aware routing: when a policy is set, shards with too
        #: many consecutive strikes (failures, or slow responses when
        #: ``slow_after_ms`` is set) are ejected from *new-session*
        #: routing and half-open probed back in; pinned sessions stay
        #: put.  ``None`` keeps the legacy route-by-hash behavior.
        self.health_policy = health
        self.health: Optional[HealthTracker] = (
            HealthTracker(health) if health is not None else None
        )
        self.health_probes = 0
        self.cluster_sheds = 0
        self.failovers = 0
        self.kills = 0
        self.restarts = 0
        self.migrations = 0
        self.sessions_recovered = 0
        self._placements: dict[str, int] = {}  # negotiationId -> shard
        self._start_replays: dict[str, dict] = {}  # requestId -> start
        #: Starts answered from the router's replay map.
        self.start_replays = 0
        self._nodes: list[ShardNode] = []
        for index in range(shards):
            shard_url = f"{url}:s{index}"
            if wal_dir is not None:
                session_store: SessionStore = WALSessionStore(
                    os.path.join(wal_dir, f"shard-{index}.wal")
                )
            else:
                session_store = InMemorySessionStore(f"shard-{index}")
            store = XMLDocumentStore(f"tn-shard-{index}")
            node = ShardNode(
                index=index, url=shard_url, store=store,
                session_store=session_store,
            )
            node.service = self._build_service(node)
            self._nodes.append(node)
        self.ring = HashRing(
            (node.url for node in self._nodes), replicas=replicas
        )
        self._closed = False
        transport.bind(url, self._endpoint_handler())

    def _endpoint_handler(self):
        """The callable bound at the cluster URL (async routers bind
        their awaitable twin)."""
        return self.handle

    def _service_class(self) -> type[TNWebService]:
        """The per-shard service class (async routers build async
        shards so engine turns interleave on the loop)."""
        return TNWebService

    def _build_service(self, node: ShardNode) -> TNWebService:
        return self._service_class()(
            self.owner, self.transport, node.store, node.url,
            cache=self.cache, checkpoints=self.checkpoints,
            hardening=self.hardening,
            session_store=node.session_store,
            node_id=f"tn-s{node.index}",
        )

    # -- lifecycle -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        for node in self._nodes:
            if node.live and node.service is not None:
                node.service.close()
            node.session_store.close()
        self.transport.unbind(self.url)
        self._closed = True

    def __enter__(self) -> "ShardedTNService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- node liveness -------------------------------------------------------------

    def nodes(self) -> list[ShardNode]:
        return list(self._nodes)

    def live_nodes(self) -> list[ShardNode]:
        return [node for node in self._nodes if node.live]

    def kill_node(self, index: int,
                  restart_after_ms: Optional[float] = None) -> None:
        """Declare shard ``index`` dead: volatile sessions are lost,
        its URL leaves the ring, and a restart is scheduled."""
        node = self._nodes[index]
        if not node.live:
            return
        node.live = False
        node.kills += 1
        self.kills += 1
        self.ring.remove(node.url)
        delay = (
            self.restart_after_ms if restart_after_ms is None
            else restart_after_ms
        )
        node.restart_at_ms = self.transport.clock.elapsed_ms + delay
        service = node.service
        if service is not None:
            self._harvest_counters(node, service)
            if not service.closed:
                service.crash()
        if obs_enabled():
            obs_event(
                "cluster.node_kill",
                clock=self.transport.clock,
                shard=node.url,
            )

    def restart_node(self, index: int) -> Optional[TNWebService]:
        """Revive shard ``index`` from its durable journal.

        Sessions that failed over to another shard while this node was
        down stay where they are (the placement map owns them); the
        restarted node recovers only what it still owns."""
        node = self._nodes[index]
        if node.live:
            return node.service
        service = self._service_class().restore(
            self.owner, self.transport, node.store, node.url,
            agents=self.agents, cache=self.cache,
            checkpoints=self.checkpoints, hardening=self.hardening,
            session_store=node.session_store,
            node_id=f"tn-s{node.index}",
        )
        recovered = 0
        for session_id in list(service.sessions()):
            if self._placements.get(session_id, index) != index:
                service.release_session(session_id)
            else:
                recovered += 1
        node.service = service
        node.live = True
        node.restart_at_ms = None
        node.restarts += 1
        self.restarts += 1
        self.sessions_recovered += recovered
        self.ring.add(node.url)
        if obs_enabled():
            obs_event(
                "cluster.node_restart",
                clock=self.transport.clock,
                shard=node.url,
                recovered=recovered,
            )
        return service

    def tear_wal(self, index: int) -> bool:
        """Damage the final WAL record of shard ``index`` (torn
        write); the next recovery must discard it."""
        return self._nodes[index].session_store.tear_last_record()

    def _revive_due(self) -> None:
        now = self.transport.clock.elapsed_ms
        for node in self._nodes:
            if (
                not node.live
                and node.restart_at_ms is not None
                and now >= node.restart_at_ms
            ):
                self.restart_node(node.index)

    def _harvest_counters(self, node: ShardNode,
                          service: TNWebService) -> None:
        node.internal_errors_accum += service.internal_errors
        if service.guard is not None:
            stats = service.guard.stats
            node.guard_accum.validated += stats.validated
            node.guard_accum.rejected += stats.rejected
            for code, count in stats.by_code.items():
                node.guard_accum.by_code[code] = (
                    node.guard_accum.by_code.get(code, 0) + count
                )
        if service.admission is not None:
            stats = service.admission.stats
            node.admission_accum.offered += stats.offered
            node.admission_accum.admitted += stats.admitted
            node.admission_accum.shed += stats.shed
            node.admission_accum.expired += stats.expired
            for key, count in stats.shed_by_priority.items():
                node.admission_accum.shed_by_priority[key] = (
                    node.admission_accum.shed_by_priority.get(key, 0)
                    + count
                )

    # -- routing -------------------------------------------------------------------

    def handle(self, operation: str, payload: dict) -> dict:
        if self._closed:
            raise TransportError(
                f"TN cluster at {self.url!r} is closed"
            )
        self._revive_due()
        self._probe_ejected()
        if operation == "StartNegotiation":
            requester = payload.get("requester") if isinstance(
                payload, dict
            ) else None
            request_key = ""
            if isinstance(payload, dict):
                request_key = str(payload.get("requestId") or "")
            replayed = self._replayed_start(request_key, payload)
            if replayed is not None:
                return replayed
            self._shed_if_saturated()
            key = request_key or getattr(requester, "name", "") or "anonymous"
            node = self._node_for_key(key)
            response, served_by = self._forward(node, operation, payload)
            negotiation_id = None
            if isinstance(response, dict):
                negotiation_id = response.get("negotiationId")
            if negotiation_id:
                self._placements[negotiation_id] = served_by.index
                self._remember_start(request_key, payload, response)
            return response
        negotiation_id = ""
        if isinstance(payload, dict):
            negotiation_id = str(payload.get("negotiationId") or "")
        node = self._node_for_session(negotiation_id)
        response, _ = self._forward(node, operation, payload)
        return response

    @property
    def sessions_in_flight(self) -> int:
        """Aggregate live (non-terminal) sessions across live shards."""
        return sum(
            node.service.sessions_in_flight
            for node in self._nodes
            if node.live and node.service is not None
        )

    def _shed_if_saturated(self) -> None:
        """Cluster-level admission: refuse new negotiations once the
        aggregate in-flight count reaches ``max_in_flight``.

        This sits *above* the per-shard :class:`AdmissionController`s —
        they bound each shard's queue, this bounds the fleet — and uses
        the same backpressure contract (:class:`OverloadError` with a
        ``retry_after_ms`` hint that :class:`ResilientTransport` honors
        without tripping its breaker)."""
        cap = self.max_in_flight
        if cap is None:
            return
        in_flight = self.sessions_in_flight
        if in_flight < cap:
            return
        self.cluster_sheds += 1
        drain_per_ms = (
            self.hardening.drain_per_ms if self.hardening is not None
            else 0.05
        )
        live = max(1, len(self.live_nodes()))
        excess = in_flight - cap + 1
        retry_after_ms = excess / (drain_per_ms * live)
        if obs_enabled():
            obs_event(
                "cluster.shed",
                clock=self.transport.clock,
                in_flight=in_flight,
                cap=cap,
            )
        raise OverloadError(
            f"cluster at {self.url!r} is saturated: {in_flight} sessions "
            f"in flight >= cap {cap}",
            retry_after_ms=retry_after_ms,
        )

    @staticmethod
    def _start_fingerprint(payload: dict) -> tuple:
        """Order-insensitive scalar fingerprint of a start payload.

        The requester agent reference is matched by name (object
        identity would reject a faithful retry built from a restored
        agent); every other field must repeat verbatim."""
        return tuple(
            (name, repr(payload[name]))
            for name in sorted(payload)
            if name != "requester"
        )

    def _remember_start(self, key: str, payload: dict,
                        response: dict) -> None:
        """Record a successful tokened ``StartNegotiation`` so retries
        of the token are answered consistently even after route-by-hash
        has shifted (see :data:`_START_REPLAY_DEPTH`)."""
        if not key or not isinstance(response, dict):
            return
        if len(self._start_replays) >= _START_REPLAY_DEPTH:
            self._start_replays.pop(next(iter(self._start_replays)))
        requester = payload.get("requester")
        self._start_replays[key] = {
            "requester": getattr(requester, "name", None),
            "strategy": Strategy.parse(payload.get("strategy", "standard")),
            "fingerprint": self._start_fingerprint(payload),
            "response": response,
        }

    def _replayed_start(self, key: str,
                        payload: dict) -> Optional[dict]:
        """Answer a retried start token, policing reuse.

        Returns the recorded response for a faithful retry, ``None``
        for an unknown token, and rejects the same token arriving with
        a different requester or strategy exactly like the shard's own
        dedup would (``REPLAY_MISMATCH``) — the token's original shard
        may have lost the entry to a hedge cancellation, an ejection,
        or a failover, so the router must police it."""
        entry = self._start_replays.get(key) if key else None
        if entry is None:
            return None
        requester = (
            payload.get("requester") if isinstance(payload, dict) else None
        )
        strategy = Strategy.parse(
            payload.get("strategy", "standard")
            if isinstance(payload, dict) else "standard"
        )
        if (
            getattr(requester, "name", None) != entry["requester"]
            or strategy is not entry["strategy"]
            or (
                isinstance(payload, dict)
                and self._start_fingerprint(payload) != entry["fingerprint"]
            )
        ):
            raise ServiceError(
                f"requestId {key!r} was already used by requester "
                f"{entry['requester']!r} with strategy "
                f"{entry['strategy'].value!r}; a retry must repeat the "
                "original payload",
                error_code=ErrorCode.REPLAY_MISMATCH,
            )
        self.start_replays += 1
        return dict(entry["response"])

    def _node_for_key(self, key: str) -> ShardNode:
        try:
            url = self.ring.route(key)
        except LookupError as exc:
            raise TransportError(
                f"TN cluster at {self.url!r} has no live shards"
            ) from exc
        if self.health is not None and not self.health.is_healthy(url):
            # Routed shard is ejected: walk the ring's preference order
            # for the first healthy live shard.  When every shard is
            # ejected, fall through to the routed one — degraded
            # service beats refusing everyone.
            for candidate in self.ring.preference(key, len(self.ring)):
                if self.health.is_healthy(candidate):
                    url = candidate
                    break
        return self._node_at(url)

    def _node_at(self, url: str) -> ShardNode:
        for node in self._nodes:
            if node.url == url:
                return node
        raise ServiceError(  # pragma: no cover - ring holds our urls
            f"ring routed to unknown shard {url!r}"
        )

    def _node_for_session(self, negotiation_id: str) -> ShardNode:
        index = self._placements.get(negotiation_id)
        if index is not None:
            node = self._nodes[index]
            if node.live:
                return node
            # The pinned shard is dead and its restart is not due yet:
            # fail the placement over now rather than stall the caller.
            survivor = self._failover(node)
            if survivor is not None:
                return survivor
            return node  # no survivor: let the forward fail visibly
        # Unknown id — probe traffic or a pre-cluster session.  Route
        # by hash so exactly one shard answers (typically with a typed
        # unknown-session rejection).
        return self._node_for_key(negotiation_id or "unplaced")

    def _forward(
        self, node: ShardNode, operation: str, payload: dict
    ) -> tuple[dict, ShardNode]:
        began = self.transport.clock.elapsed_ms
        try:
            response = self.transport.call(node.url, operation, payload)
        except TransportError:
            # Endpoint unreachable (crashed, unbound, or response
            # lost): declare it dead and retry once on the successor
            # that adopted its sessions.
            self._note_shard_failure(node.url)
            survivor = self._failover(node)
            if survivor is None:
                raise
            began = self.transport.clock.elapsed_ms
            response = self.transport.call(survivor.url, operation, payload)
            self._note_shard_success(
                survivor.url, self.transport.clock.elapsed_ms - began
            )
            return response, survivor
        self._note_shard_success(
            node.url, self.transport.clock.elapsed_ms - began
        )
        return response, node

    # -- shard health -----------------------------------------------------------------

    def _note_shard_success(self, url: str, latency_ms: float) -> None:
        if self.health is None:
            return
        now = self.transport.clock.elapsed_ms
        if self.health.record_latency(url, latency_ms, now):
            self._note_ejection(url)
        self._emit_health_gauge()

    def _note_shard_failure(self, url: str) -> None:
        if self.health is None:
            return
        now = self.transport.clock.elapsed_ms
        if self.health.record_failure(url, now):
            self._note_ejection(url)
        self._emit_health_gauge()

    def _note_ejection(self, url: str) -> None:
        if obs_enabled():
            obs_event(
                "cluster.shard_ejected",
                clock=self.transport.clock,
                shard=url,
            )

    def _emit_health_gauge(self) -> None:
        if self.health is None or not obs_enabled():
            return
        live_urls = [node.url for node in self._nodes if node.live]
        obs_gauge(
            "cluster.healthy_shards",
            self.health.healthy_count(live_urls),
        )

    def _probe_ejected(self) -> None:
        """Half-open probe ejected-but-live shards (rate-limited)."""
        tracker = self.health
        if tracker is None:
            return
        now = self.transport.clock.elapsed_ms
        for node in self._nodes:
            if not node.live or not tracker.probe_due(node.url, now):
                continue
            tracker.note_probe(node.url, now)
            self.health_probes += 1
            self._probe_verdict(node, self._probe_once(node), now)

    def _probe_verdict(self, node: ShardNode, alive: bool,
                       now: float) -> None:
        if alive:
            self.health.readmit(node.url)
            if obs_enabled():
                obs_event(
                    "cluster.shard_readmitted",
                    clock=self.transport.clock,
                    shard=node.url,
                )
        else:
            self.health.record_failure(node.url, now)
        self._emit_health_gauge()

    def _probe_result(self, branch, began_ms: float,
                      error: Optional[Exception]) -> bool:
        """Classify one probe: a typed application rejection proves
        the shard alive (the probe's fake session *should* be
        refused); only transport-level failures or a response slower
        than the slow threshold keep it ejected."""
        if error is not None:
            if isinstance(error, TRANSIENT_ERRORS):
                return False
            if not isinstance(error, ReproError):
                return False
        latency = branch.elapsed_ms - began_ms
        slow_after = (
            self.health_policy.slow_after_ms
            if self.health_policy is not None else None
        )
        return slow_after is None or latency <= slow_after

    def _probe_payload(self) -> tuple[str, dict]:
        return "PolicyExchange", {
            "negotiationId": "__health_probe__",
            "resource": "",
            "clientSeq": 1,
        }

    def _probe_once(self, node: ShardNode) -> bool:
        """One synchronous probe on a discarded clock branch (callers
        never pay for probing)."""
        operation, payload = self._probe_payload()
        with self.transport.clock_branch() as branch:
            began = branch.elapsed_ms
            error: Optional[Exception] = None
            try:
                self.transport.call(node.url, operation, payload)
            except Exception as exc:  # noqa: BLE001 - classified below
                error = exc
            return self._probe_result(branch, began, error)

    def _failover(self, dead: ShardNode) -> Optional[ShardNode]:
        """Migrate ``dead``'s durably-journalled sessions to its ring
        successor; returns the successor, or None when the cluster has
        no other live node."""
        if dead.live:
            self.kill_node(dead.index)
        if not self.ring.nodes():
            return None
        successor = self._node_at(self.ring.route(dead.url))
        moved = 0
        checkpoints = dead.session_store.latest()
        for session_id in sorted(checkpoints):
            if self._placements.get(session_id, dead.index) != dead.index:
                continue  # already migrated in an earlier failover
            assert successor.service is not None
            successor.service.adopt_session(
                checkpoints[session_id], self.agents
            )
            self._placements[session_id] = successor.index
            moved += 1
        self.failovers += 1
        self.sessions_recovered += moved
        if obs_enabled():
            obs_event(
                "cluster.failover",
                clock=self.transport.clock,
                dead=dead.url,
                successor=successor.url,
                migrated=moved,
            )
        return successor

    # -- explicit migration ----------------------------------------------------------

    def migrate_session(
        self, session_id: str, target_index: int
    ) -> NegotiationSession:
        """Move a (possibly mid-negotiation) session to another live
        shard: adopt from the source's last checkpoint, release it at
        the source, re-point the placement."""
        target = self._nodes[target_index]
        if not target.live or target.service is None:
            raise ServiceError(
                f"cannot migrate {session_id!r} to dead shard "
                f"{target.url!r}"
            )
        source_index = self._placements.get(session_id)
        if source_index is None:
            raise ServiceError(f"unknown session {session_id!r}")
        if source_index == target_index:
            session = target.service.sessions().get(session_id)
            if session is None:
                raise ServiceError(
                    f"placement map points {session_id!r} at "
                    f"{target.url!r} but the shard does not hold it"
                )
            return session
        source = self._nodes[source_index]
        element = source.store.get(SESSION_COLLECTION, session_id)
        session = target.service.adopt_session(element, self.agents)
        if source.live and source.service is not None:
            source.service.release_session(session_id)
        self._placements[session_id] = target_index
        self.migrations += 1
        if obs_enabled():
            obs_event(
                "cluster.migrate",
                clock=self.transport.clock,
                session=session_id,
                source=source.url,
                target=target.url,
            )
        return session

    def placement(self, session_id: str) -> Optional[str]:
        index = self._placements.get(session_id)
        return self._nodes[index].url if index is not None else None

    def placement_index(self, session_id: str) -> Optional[int]:
        return self._placements.get(session_id)

    # -- aggregate views (soak/report surface) ----------------------------------------

    def sessions(self) -> dict[str, NegotiationSession]:
        merged: dict[str, NegotiationSession] = {}
        for node in self._nodes:
            if node.live and node.service is not None:
                merged.update(node.service.sessions())
        return merged

    def durable_sessions(self) -> dict[str, ET.Element]:
        """Last journalled checkpoint per session across all shards,
        preferring the placement owner's journal."""
        latest: dict[str, ET.Element] = {}
        for node in self._nodes:
            for session_id, element in node.session_store.latest().items():
                owner = self._placements.get(session_id)
                if owner == node.index or session_id not in latest:
                    latest[session_id] = element
        return latest

    def reap_expired(self, older_than_ms: Optional[float] = None) -> int:
        reaped = 0
        for node in self._nodes:
            if node.live and node.service is not None:
                reaped += node.service.reap_expired(older_than_ms)
        return reaped

    @property
    def internal_errors(self) -> int:
        total = 0
        for node in self._nodes:
            total += node.internal_errors_accum
            if node.live and node.service is not None:
                total += node.service.internal_errors
        return total

    @property
    def guard(self) -> Optional[_AggregateView]:
        if self.hardening is None:
            return None
        stats = GuardStats()
        for node in self._nodes:
            sources = [node.guard_accum]
            if (
                node.live and node.service is not None
                and node.service.guard is not None
            ):
                sources.append(node.service.guard.stats)
            for source in sources:
                stats.validated += source.validated
                stats.rejected += source.rejected
                for code, count in source.by_code.items():
                    stats.by_code[code] = (
                        stats.by_code.get(code, 0) + count
                    )
        return _AggregateView(stats)

    @property
    def admission(self) -> Optional[_AggregateView]:
        if self.hardening is None:
            return None
        stats = AdmissionStats()
        for node in self._nodes:
            sources = [node.admission_accum]
            if (
                node.live and node.service is not None
                and node.service.admission is not None
            ):
                sources.append(node.service.admission.stats)
            for source in sources:
                stats.offered += source.offered
                stats.admitted += source.admitted
                stats.shed += source.shed
                stats.expired += source.expired
                for key, count in source.shed_by_priority.items():
                    stats.shed_by_priority[key] = (
                        stats.shed_by_priority.get(key, 0) + count
                    )
        return _AggregateView(stats)

    def wal_records(self) -> int:
        return sum(node.session_store.records() for node in self._nodes)

    def torn_records_discarded(self) -> int:
        return sum(
            getattr(node.session_store, "torn_discarded", 0)
            for node in self._nodes
        )
