"""Multi-node TN service: consistent-hash routing and failover.

One :class:`~repro.services.tn_service.TNWebService` per shard, a
:class:`HashRing` to place sessions, and a
:class:`ShardedTNService` router bound at a single client-facing URL.
Clients keep speaking the three-operation TN protocol; the cluster
routes ``StartNegotiation`` by consistent hash, pins the minted
negotiation id to its shard, and — when a shard dies mid-negotiation —
fails the session over to the ring successor by replaying the dead
shard's durable :class:`~repro.storage.session_store.SessionStore`
journal.
"""

from repro.cluster.aio import AioShardedTNService, HedgePolicy, HedgeStats
from repro.cluster.health import HealthPolicy, HealthTracker, ShardHealth
from repro.cluster.ring import HashRing
from repro.cluster.sharded import ShardedTNService, ShardNode

__all__ = [
    "AioShardedTNService",
    "HashRing",
    "HealthPolicy",
    "HealthTracker",
    "HedgePolicy",
    "HedgeStats",
    "ShardHealth",
    "ShardNode",
    "ShardedTNService",
]
