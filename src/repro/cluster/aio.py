"""Asyncio router over the TN shards: hedged starts, async failover.

:class:`AioShardedTNService` is the asyncio twin of
:class:`~repro.cluster.sharded.ShardedTNService`.  It binds an
*awaitable* handler at the cluster URL, builds
:class:`~repro.services.aio.AioTNWebService` shards (so engine turns
interleave on the event loop), forwards through ``transport.acall``
(shard hops stay faultable through an async
:class:`~repro.faults.injector.FaultInjector`), and inherits the
health-aware routing, ejection, and probing machinery from the base
router — probes simply await.

On top of that it adds **hedged requests** for ``StartNegotiation``:
when the primary shard has not answered within the hedge delay (a
fixed ``delay_ms`` or an adaptive percentile of recent start
latencies), a second identical attempt fires at the ring-successor
shard and the faster success wins.  This is safe precisely because of
the protocol's idempotency machinery:

- both racers carry the same ``requestId``, so each shard's replay
  dedup makes the race harmless *within* a shard;
- the loser's freshly-minted session is **cancelled** — released from
  its shard (dropping its dedup entry with it) so exactly one session
  commit survives the race, with no double billing of the placement
  map;
- a client *retry* of a hedged start would route by hash back to the
  losing shard and mint a fresh duplicate — so the base router's
  bounded start-replay map (see
  :data:`~repro.cluster.sharded._START_REPLAY_DEPTH`) answers retries
  from the winning response directly, and rejects tampered reuse of
  the token with ``REPLAY_MISMATCH``.

Only ``StartNegotiation`` is hedged.  Phase operations mutate pinned
session state; racing them against a copy of the session on another
shard would let the loser's state diverge mid-negotiation.  Start is
the idempotent, side-effect-contained opening move — and the one that
dominates tail latency when a shard degrades, because routing pins
every later operation to whichever shard answered it.

The race itself runs on forked clock branches (simulated time): both
legs execute to completion sequentially — deterministic, like every
other concurrency model in this repo — the winner's latency is
charged to the caller's timeline, and the loser is released after the
fact.  The loser's *transport charges* still count, exactly like a
real hedge pays for the work it cancels.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.cluster.sharded import ShardedTNService, ShardNode
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    event as obs_event,
)
from repro.errors import TransportError
from repro.services.aio import AioTNWebService

__all__ = ["AioShardedTNService", "HedgePolicy", "HedgeStats"]

#: Recent successful start latencies kept for the adaptive delay.
_HEDGE_SAMPLE_DEPTH = 128


@dataclass(frozen=True, kw_only=True)
class HedgePolicy:
    """When to fire a second ``StartNegotiation`` at the successor."""

    #: Fixed hedge delay in simulated ms; ``None`` adapts to the
    #: ``percentile`` of recent start latencies.
    delay_ms: Optional[float] = None
    #: Latency percentile after which the hedge fires (adaptive mode).
    percentile: float = 0.95
    #: Starts observed before the adaptive delay kicks in.
    min_samples: int = 20
    #: Delay used until enough samples exist.
    initial_delay_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.delay_ms is not None and self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError(
                f"percentile must be in (0, 1), got {self.percentile}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.initial_delay_ms < 0:
            raise ValueError(
                f"initial_delay_ms must be >= 0, got "
                f"{self.initial_delay_ms}"
            )

    def current_delay(self, samples) -> float:
        """The hedge delay given recent successful start latencies."""
        if self.delay_ms is not None:
            return self.delay_ms
        if len(samples) < self.min_samples:
            return self.initial_delay_ms
        ordered = sorted(samples)
        rank = min(len(ordered) - 1, int(self.percentile * len(ordered)))
        return ordered[rank]


@dataclass
class HedgeStats:
    #: Starts that were eligible for hedging (policy set, requestId
    #: present, >= 2 live shards).
    considered: int = 0
    #: Hedges actually fired (primary slower than the delay).
    fired: int = 0
    #: Races the hedge leg won.
    won: int = 0
    #: Loser sessions released (both legs committed; one cancelled).
    cancelled: int = 0
    #: Client retries answered from the router's start-replay map
    #: (:attr:`~repro.cluster.sharded.ShardedTNService.start_replays`
    #: counts the same events on the base router).
    replays: int = 0


class AioShardedTNService(ShardedTNService):
    """Consistent-hash session router driven from the event loop."""

    def __init__(self, *args, hedge: Optional[HedgePolicy] = None,
                 **kwargs) -> None:
        self.hedge_policy = hedge
        self.hedge_stats = HedgeStats()
        self._hedge_samples: deque = deque(maxlen=_HEDGE_SAMPLE_DEPTH)
        super().__init__(*args, **kwargs)

    def _endpoint_handler(self):
        return self.ahandle

    def _service_class(self):
        return AioTNWebService

    def handle(self, operation: str, payload: dict) -> dict:
        raise TransportError(
            f"TN cluster at {self.url!r} is asyncio-native; reach it "
            "through AioSimTransport.acall"
        )

    # -- async routing ----------------------------------------------------------------

    async def ahandle(self, operation: str, payload: dict) -> dict:
        if self._closed:
            raise TransportError(f"TN cluster at {self.url!r} is closed")
        self._revive_due()
        await self._aprobe_ejected()
        if operation == "StartNegotiation":
            requester = payload.get("requester") if isinstance(
                payload, dict
            ) else None
            request_key = ""
            if isinstance(payload, dict):
                request_key = str(payload.get("requestId") or "")
            # A retried start whose original race was won by the hedge
            # (or whose shard was since ejected or killed): route-by-
            # hash would hit a shard that no longer holds the dedup
            # entry, so the router answers faithful retries itself and
            # rejects tampered token reuse (REPLAY_MISMATCH).
            replayed = self._replayed_start(request_key, payload)
            if replayed is not None:
                self.hedge_stats.replays += 1
                return replayed
            self._shed_if_saturated()
            key = request_key or getattr(requester, "name", "") or "anonymous"
            node = self._node_for_key(key)
            if self._should_hedge(payload):
                response, served_by = await self._ahedged_start(
                    node, key, payload
                )
            else:
                response, served_by = await self._aforward(
                    node, operation, payload
                )
            negotiation_id = None
            if isinstance(response, dict):
                negotiation_id = response.get("negotiationId")
            if negotiation_id:
                self._placements[negotiation_id] = served_by.index
                self._remember_start(request_key, payload, response)
            return response
        negotiation_id = ""
        if isinstance(payload, dict):
            negotiation_id = str(payload.get("negotiationId") or "")
        node = self._node_for_session(negotiation_id)
        response, _ = await self._aforward(node, operation, payload)
        return response

    async def _aforward(
        self, node: ShardNode, operation: str, payload: dict
    ) -> tuple[dict, ShardNode]:
        began = self.transport.clock.elapsed_ms
        try:
            response = await self.transport.acall(
                node.url, operation, payload
            )
        except TransportError:
            # Same contract as the sync router: declare the shard
            # dead, migrate its journalled sessions to the ring
            # successor, retry once there.
            self._note_shard_failure(node.url)
            survivor = self._failover(node)
            if survivor is None:
                raise
            began = self.transport.clock.elapsed_ms
            response = await self.transport.acall(
                survivor.url, operation, payload
            )
            self._note_shard_success(
                survivor.url, self.transport.clock.elapsed_ms - began
            )
            return response, survivor
        latency = self.transport.clock.elapsed_ms - began
        if operation == "StartNegotiation":
            self._hedge_samples.append(latency)
        self._note_shard_success(node.url, latency)
        return response, node

    # -- hedging ----------------------------------------------------------------------

    def _should_hedge(self, payload: dict) -> bool:
        if self.hedge_policy is None:
            return False
        if not isinstance(payload, dict) or not payload.get("requestId"):
            return False  # no idempotency token, no race
        return len(self.live_nodes()) >= 2

    def _hedge_backup(self, primary: ShardNode,
                      key: str) -> Optional[ShardNode]:
        """The shard the hedge leg targets: the first healthy live
        ring-successor distinct from the primary."""
        for url in self.ring.preference(key, len(self.ring)):
            if url == primary.url:
                continue
            if self.health is not None and not self.health.is_healthy(url):
                continue
            node = self._node_at(url)
            if node.live and node.service is not None:
                return node
        for node in self.live_nodes():  # everyone ejected: any survivor
            if node.url != primary.url:
                return node
        return None

    async def _ahedged_start(
        self, primary: ShardNode, key: str, payload: dict
    ) -> tuple[dict, ShardNode]:
        self.hedge_stats.considered += 1
        delay = self.hedge_policy.current_delay(self._hedge_samples)
        current = self.transport.clock
        t0 = current.elapsed_ms
        primary_response: Optional[dict] = None
        primary_error: Optional[Exception] = None
        with self.transport.clock_branch(current) as primary_branch:
            try:
                primary_response = await self.transport.acall(
                    primary.url, "StartNegotiation", payload
                )
            except Exception as exc:  # noqa: BLE001 - raced below
                primary_error = exc
        primary_ms = primary_branch.elapsed_ms - t0
        if primary_error is None and primary_ms <= delay:
            # The primary answered before the hedge would have fired.
            current.advance(primary_ms)
            self._hedge_samples.append(primary_ms)
            self._note_shard_success(primary.url, primary_ms)
            return primary_response, primary
        backup = self._hedge_backup(primary, key)
        if backup is None:
            current.advance(primary_ms)
            if primary_error is not None:
                self._note_shard_failure(primary.url)
                raise primary_error
            self._hedge_samples.append(primary_ms)
            self._note_shard_success(primary.url, primary_ms)
            return primary_response, primary
        self.hedge_stats.fired += 1
        if obs_enabled():
            obs_count("cluster.hedges.fired")
        hedge_response: Optional[dict] = None
        hedge_error: Optional[Exception] = None
        with self.transport.clock_branch(current) as hedge_branch:
            hedge_branch.advance(delay)  # fires after the hedge delay
            try:
                hedge_response = await self.transport.acall(
                    backup.url, "StartNegotiation", payload
                )
            except Exception as exc:  # noqa: BLE001 - raced below
                hedge_error = exc
        hedge_ms = hedge_branch.elapsed_ms - t0
        if primary_error is not None and hedge_error is not None:
            # Both legs failed: adopt the primary timeline and surface
            # its error; the client's resilient retry re-enters the
            # normal (failover-capable) path.
            current.advance(primary_ms)
            self._note_shard_failure(primary.url)
            self._note_shard_failure(backup.url)
            raise primary_error
        if primary_error is None and (
            hedge_error is not None or primary_ms <= hedge_ms
        ):
            winner, winner_ms = primary, primary_ms
            winner_response = primary_response
            loser, loser_response, loser_ms = backup, hedge_response, hedge_ms
        else:
            winner, winner_ms = backup, hedge_ms
            winner_response = hedge_response
            loser, loser_response, loser_ms = primary, primary_response, primary_ms
            self.hedge_stats.won += 1
            if obs_enabled():
                obs_count("cluster.hedges.won")
            if primary_error is not None:
                self._note_shard_failure(primary.url)
        current.advance(winner_ms)
        self._hedge_samples.append(winner_ms)
        self._note_shard_success(winner.url, winner_ms)
        if loser_response is not None:
            # The losing leg still answered; its latency feeds the
            # health tracker (a chronically slow loser earns strikes
            # and is eventually ejected from new-session routing).
            self._note_shard_success(loser.url, loser_ms)
        self._cancel_loser(loser, loser_response)
        if obs_enabled():
            obs_event(
                "cluster.hedge",
                clock=current,
                winner=winner.url,
                loser=loser.url,
                primary_ms=round(primary_ms, 3),
                hedge_ms=round(hedge_ms, 3),
                delay_ms=round(delay, 3),
            )
        return winner_response, winner

    def _cancel_loser(self, loser: ShardNode,
                      loser_response: Optional[dict]) -> None:
        """Release the losing leg's freshly-minted session (and its
        dedup entry with it) so exactly one commit survives the race."""
        if not isinstance(loser_response, dict):
            return
        loser_id = loser_response.get("negotiationId")
        if not loser_id or not loser.live or loser.service is None:
            return
        loser.service.release_session(loser_id)
        self._placements.pop(loser_id, None)
        self.hedge_stats.cancelled += 1
        if obs_enabled():
            obs_count("cluster.hedges.cancelled")

    # -- async health probing ----------------------------------------------------------

    async def _aprobe_ejected(self) -> None:
        tracker = self.health
        if tracker is None:
            return
        now = self.transport.clock.elapsed_ms
        for node in self._nodes:
            if not node.live or not tracker.probe_due(node.url, now):
                continue
            tracker.note_probe(node.url, now)
            self.health_probes += 1
            self._probe_verdict(node, await self._aprobe_once(node), now)

    async def _aprobe_once(self, node: ShardNode) -> bool:
        operation, payload = self._probe_payload()
        with self.transport.clock_branch() as branch:
            began = branch.elapsed_ms
            error: Optional[Exception] = None
            try:
                await self.transport.acall(node.url, operation, payload)
            except Exception as exc:  # noqa: BLE001 - classified below
                error = exc
            return self._probe_result(branch, began, error)
