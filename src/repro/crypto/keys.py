"""Key wrappers, serialization, fingerprints, and keyrings.

Negotiation parties identify credential issuers by key fingerprint and
look the issuer's public key up in a local keyring (the paper verifies
credentials "using credential issuers' public keys", Section 5).
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field

from repro.crypto import rsa
from repro.errors import KeyError_, SignatureError

__all__ = [
    "PublicKey",
    "PrivateKey",
    "KeyPair",
    "Keyring",
    "verify_b64",
    "verify_b64_batch",
]


@dataclass(frozen=True)
class PublicKey:
    """Public key with a stable fingerprint for identification."""

    raw: rsa.RSAPublicKey

    @property
    def fingerprint(self) -> str:
        material = f"{self.raw.modulus:x}:{self.raw.exponent:x}".encode()
        return hashlib.sha256(material).hexdigest()[:32]

    def verify(self, message: bytes, signature: bytes) -> bool:
        return rsa.verify(self.raw, message, signature)

    def to_dict(self) -> dict:
        return {
            "kind": "rsa-public",
            "n": f"{self.raw.modulus:x}",
            "e": f"{self.raw.exponent:x}",
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PublicKey":
        try:
            if data.get("kind") != "rsa-public":
                raise KeyError_(f"not a public key record: {data.get('kind')!r}")
            return cls(rsa.RSAPublicKey(int(data["n"], 16), int(data["e"], 16)))
        except (KeyError, ValueError) as exc:
            raise KeyError_(f"malformed public key record: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PublicKey":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise KeyError_(f"malformed public key JSON: {exc}") from exc


@dataclass(frozen=True)
class PrivateKey:
    """Private signing key."""

    raw: rsa.RSAPrivateKey

    @property
    def public_key(self) -> PublicKey:
        return PublicKey(self.raw.public_key)

    def sign(self, message: bytes) -> bytes:
        return rsa.sign(self.raw, message)

    def sign_b64(self, message: bytes) -> str:
        """Signature as base64 text, the form embedded in X-TNL XML."""
        return base64.b64encode(self.sign(message)).decode("ascii")


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of a private key and its public half."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def generate(cls, bits: int = 1024) -> "KeyPair":
        private = PrivateKey(rsa.generate_keypair(bits))
        return cls(private, private.public_key)

    @property
    def fingerprint(self) -> str:
        return self.public.fingerprint


def verify_b64(key: PublicKey, message: bytes, signature_b64: str) -> bool:
    """Verify a base64-encoded signature; malformed base64 is invalid."""
    try:
        signature = base64.b64decode(signature_b64, validate=True)
    except (ValueError, TypeError):
        return False
    return key.verify(message, signature)


def verify_b64_batch(items) -> list:
    """Verify ``(key, sha256_digest, signature_b64)`` triples in one pass.

    The batch analogue of :func:`verify_b64` for callers that already
    hold the message digests (credentials expose ``signing_digest()``):
    base64 decoding and padding construction are amortized across the
    batch by :func:`repro.crypto.rsa.verify_batch`, and each verdict is
    exactly what the scalar call would have returned.  Malformed base64
    is an invalid signature, never an exception.
    """
    items = list(items)
    decoded = []
    malformed = set()
    for index, (key, digest, signature_b64) in enumerate(items):
        try:
            signature = base64.b64decode(signature_b64, validate=True)
        except (ValueError, TypeError):
            malformed.add(index)
            continue
        decoded.append((key.raw, digest, signature))
    verified = iter(rsa.verify_batch(decoded))
    return [
        False if index in malformed else next(verified)
        for index in range(len(items))
    ]


@dataclass
class Keyring:
    """Maps issuer names and fingerprints to trusted public keys.

    A party's keyring models its set of trusted Credential Authorities:
    a credential from an issuer that is absent from the verifier's
    keyring cannot be verified and is rejected.
    """

    _by_name: dict[str, PublicKey] = field(default_factory=dict)
    _by_fingerprint: dict[str, PublicKey] = field(default_factory=dict)

    def add(self, name: str, key: PublicKey) -> None:
        existing = self._by_name.get(name)
        if existing is not None and existing.fingerprint != key.fingerprint:
            raise KeyError_(
                f"issuer {name!r} already registered with a different key"
            )
        self._by_name[name] = key
        self._by_fingerprint[key.fingerprint] = key

    def get(self, name: str) -> PublicKey:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError_(f"no trusted key for issuer {name!r}") from exc

    def get_by_fingerprint(self, fingerprint: str) -> PublicKey:
        try:
            return self._by_fingerprint[fingerprint]
        except KeyError as exc:
            raise KeyError_(
                f"no trusted key with fingerprint {fingerprint!r}"
            ) from exc

    def trusts(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def verify(self, issuer: str, message: bytes, signature_b64: str) -> bool:
        """Verify ``signature_b64`` as coming from ``issuer``.

        Raises :class:`SignatureError` when the issuer is unknown, so
        callers can distinguish "bad signature" from "unknown issuer".
        """
        if not self.trusts(issuer):
            raise SignatureError(f"issuer {issuer!r} is not trusted")
        return verify_b64(self.get(issuer), message, signature_b64)
