"""RSA key generation and SHA-256 signatures.

This implements textbook-correct RSA with deterministic PKCS#1-v1.5
style padding for signing.  It is a reproduction substrate, not a
hardened production library: it favours clarity and determinism so that
the negotiation engine's signature checks are real (a tampered
credential genuinely fails to verify) without an external dependency.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.numbers import generate_prime, modular_inverse
from repro.errors import CryptoError, SignatureError

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "generate_keypair",
    "sign",
    "verify",
    "verify_batch",
]

# DER prefix for a SHA-256 DigestInfo, as in PKCS#1 v1.5 signatures.
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

_DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    modulus: int
    exponent: int

    @property
    def bit_length(self) -> int:
        return self.modulus.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key; carries the public half for convenience."""

    modulus: int
    public_exponent: int
    private_exponent: int
    prime_p: int
    prime_q: int

    @property
    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(self.modulus, self.public_exponent)

    @property
    def byte_length(self) -> int:
        return (self.modulus.bit_length() + 7) // 8


def generate_keypair(bits: int = 1024) -> RSAPrivateKey:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    512-bit keys are accepted for fast test fixtures; real examples use
    1024 or 2048 bits.
    """
    if bits < 256:
        raise CryptoError(f"RSA modulus too small: {bits} bits")
    half = bits // 2
    while True:
        p = generate_prime(half)
        q = generate_prime(bits - half)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _DEFAULT_PUBLIC_EXPONENT == 0:
            continue
        d = modular_inverse(_DEFAULT_PUBLIC_EXPONENT, phi)
        return RSAPrivateKey(n, _DEFAULT_PUBLIC_EXPONENT, d, p, q)


def _pad_digest(digest: bytes, length: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a SHA-256 digest."""
    payload = _SHA256_DIGEST_INFO + digest
    if length < len(payload) + 11:
        raise SignatureError(
            f"key too small to sign a SHA-256 digest ({length} bytes)"
        )
    padding = b"\xff" * (length - len(payload) - 3)
    return b"\x00\x01" + padding + b"\x00" + payload


def sign(key: RSAPrivateKey, message: bytes) -> bytes:
    """Sign ``message`` with ``key``; returns the raw signature bytes."""
    digest = hashlib.sha256(message).digest()
    encoded = _pad_digest(digest, key.byte_length)
    value = int.from_bytes(encoded, "big")
    signature = pow(value, key.private_exponent, key.modulus)
    return signature.to_bytes(key.byte_length, "big")


def verify(key: RSAPublicKey, message: bytes, signature: bytes) -> bool:
    """Return True when ``signature`` over ``message`` verifies under
    ``key``.  Never raises for a merely-invalid signature."""
    if len(signature) != key.byte_length:
        return False
    value = int.from_bytes(signature, "big")
    if value >= key.modulus:
        return False
    recovered = pow(value, key.exponent, key.modulus)
    expected = _pad_digest(
        hashlib.sha256(message).digest(), key.byte_length
    )
    return recovered.to_bytes(key.byte_length, "big") == expected


def verify_batch(items) -> list:
    """Verify a batch of ``(key, sha256_digest, signature)`` triples.

    Returns one bool per item, each exactly what
    ``verify(key, message, signature)`` would return for a message
    hashing to ``sha256_digest``.  The batch form amortizes the
    per-call marshalling: the PKCS#1 padding prefix is built once per
    key size and identical triples are verified once.

    The classical RSA screening trick — checking
    ``prod(sig_i)^e == prod(pad(digest_i)) (mod n)`` in a single
    exponentiation — is deliberately **not** used here.  Unweighted, it
    is unsound against adversarial batches (a peer can cancel a bad
    signature against a compensating one, and these verdicts feed a
    cache); with random weights it needs one small-exponent
    exponentiation per item *plus* the weighting arithmetic, which for
    e = 65537 costs more than the plain per-item check it replaces.
    """
    # Padding depends only on (digest length, key byte length); cache
    # the constant prefix per pair so the loop is pure concatenation.
    prefixes: dict[tuple, bytes] = {}
    results: dict[tuple, bool] = {}
    verdicts = []
    for key, digest, signature in items:
        length = key.byte_length
        item_key = (key.modulus, key.exponent, digest, signature)
        cached = results.get(item_key)
        if cached is not None:
            verdicts.append(cached)
            continue
        ok = False
        if len(signature) == length:
            value = int.from_bytes(signature, "big")
            if value < key.modulus:
                prefix = prefixes.get((length, len(digest)))
                if prefix is None:
                    payload_len = len(_SHA256_DIGEST_INFO) + len(digest)
                    if length < payload_len + 11:
                        raise SignatureError(
                            "key too small to sign a SHA-256 digest "
                            f"({length} bytes)"
                        )
                    prefix = (
                        b"\x00\x01"
                        + b"\xff" * (length - payload_len - 3)
                        + b"\x00"
                        + _SHA256_DIGEST_INFO
                    )
                    prefixes[(length, len(digest))] = prefix
                recovered = pow(value, key.exponent, key.modulus)
                ok = recovered.to_bytes(length, "big") == prefix + digest
        results[item_key] = ok
        verdicts.append(ok)
    return verdicts
