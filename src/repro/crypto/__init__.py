"""Cryptographic substrate for credential signatures.

The paper's prototype relies on standard PKI operations: credential
authorities sign X-TNL credentials and X.509-style attribute
certificates, and negotiation parties verify those signatures with the
issuers' public keys.  Since the reproduction environment is offline,
this subpackage implements the needed primitives from scratch:

- :mod:`repro.crypto.numbers` — Miller-Rabin primality, prime
  generation, modular inverse.
- :mod:`repro.crypto.rsa` — RSA key generation and PKCS#1-v1.5-style
  SHA-256 signatures.
- :mod:`repro.crypto.keys` — serialization, fingerprints, and keyrings.

Key sizes are configurable; tests and benchmarks default to small-but-
real keys so that thousands of signatures stay cheap, while examples use
2048-bit keys to demonstrate realistic deployments.
"""

from repro.crypto.keys import (
    KeyPair,
    Keyring,
    PrivateKey,
    PublicKey,
    verify_b64,
    verify_b64_batch,
)
from repro.crypto.rsa import generate_keypair, sign, verify, verify_batch

__all__ = [
    "KeyPair",
    "Keyring",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "sign",
    "verify",
    "verify_b64",
    "verify_b64_batch",
    "verify_batch",
]
