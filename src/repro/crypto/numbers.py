"""Number-theoretic primitives backing the RSA implementation."""

from __future__ import annotations

import secrets

from repro.errors import CryptoError

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "modular_inverse",
    "SMALL_PRIMES",
]

# Primes below 1000, used as a cheap trial-division sieve before the
# Miller-Rabin rounds.
SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211,
    223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
    293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379,
    383, 389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461,
    463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563,
    569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643,
    647, 653, 659, 661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739,
    743, 751, 757, 761, 769, 773, 787, 797, 809, 811, 821, 823, 827, 829,
    839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929, 937,
    941, 947, 953, 967, 971, 977, 983, 991, 997,
)


def _miller_rabin_round(candidate: int, witness: int) -> bool:
    """One Miller-Rabin round; returns False when ``witness`` proves
    ``candidate`` composite."""
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(witness, d, candidate)
    if x in (1, candidate - 1):
        return True
    for _ in range(r - 1):
        x = pow(x, 2, candidate)
        if x == candidate - 1:
            return True
    return False


def is_probable_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with ``rounds`` random witnesses.

    With 40 rounds the composite-acceptance probability is below 4^-40,
    which is far below any practical concern.
    """
    if candidate < 2:
        return False
    for prime in SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    for _ in range(rounds):
        witness = secrets.randbelow(candidate - 3) + 2
        if not _miller_rabin_round(candidate, witness):
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError(f"prime size too small: {bits} bits")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate):
            return candidate


def modular_inverse(value: int, modulus: int) -> int:
    """Return ``value^-1 mod modulus`` (extended Euclid via pow)."""
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:
        raise CryptoError(
            f"{value} is not invertible modulo {modulus}"
        ) from exc
