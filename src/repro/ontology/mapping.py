"""Algorithm 1: mapping policy concepts onto local credentials.

Given a disclosure policy expressed as concepts ``C1, ..., Ck``
(Section 4.3.1), the receiving party resolves each concept to a local
credential to disclose:

1. when the concept belongs to the local ontology, collect the local
   credentials associated with it (directly bound, or bound to an
   ``is_a`` descendant, whose information infers the concept);
2. cluster those credentials by sensitivity with ``CredCluster`` and
   return one from the lowest non-empty cluster (low, then medium,
   then high);
3. when the concept is absent, compute the similarity of the requested
   concept against every local concept (``ComputeSimilarity``, the
   Jaccard/GLUE measure) and resolve through the best match whose
   confidence clears the configured threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.credentials.credential import Credential
from repro.credentials.profile import XProfile
from repro.credentials.sensitivity import Sensitivity, cred_cluster
from repro.errors import MappingError
from repro.ontology.concept import Concept
from repro.ontology.graph import Ontology
from repro.ontology.similarity import compute_similarity

__all__ = ["MappingOutcome", "ConceptMapper"]


@dataclass(frozen=True)
class MappingOutcome:
    """Result of resolving one policy concept."""

    requested: str
    resolved_concept: str
    confidence: float  # 1.0 for a direct ontology hit
    credential: Credential
    cluster: Sensitivity


class ConceptMapper:
    """Algorithm 1, bound to one party's local ontology."""

    def __init__(
        self, ontology: Ontology, similarity_threshold: float = 0.25
    ) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise MappingError(
                f"similarity threshold must be in [0, 1], "
                f"got {similarity_threshold}"
            )
        self.ontology = ontology
        self.similarity_threshold = similarity_threshold

    # -- concept resolution -------------------------------------------------

    def _resolve_concept(self, requested: str) -> tuple[Concept, float]:
        """The local concept to use, with the match confidence."""
        if requested in self.ontology:
            return self.ontology.get(requested), 1.0
        # Lines 20-29: similarity sweep over the local concept set.
        probe = Concept.of(requested)
        best: Optional[Concept] = None
        best_score = 0.0
        for candidate in sorted(self.ontology, key=lambda c: c.name):
            score = compute_similarity(probe, candidate)
            if score > best_score:
                best, best_score = candidate, score
        if best is None or best_score < self.similarity_threshold:
            raise MappingError(
                f"concept {requested!r} is not in ontology "
                f"{self.ontology.name!r} and no local concept clears the "
                f"similarity threshold {self.similarity_threshold}"
            )
        return best, best_score

    def _credentials_conveying(
        self, concept: Concept, profile: XProfile
    ) -> list[Credential]:
        """Profile credentials bound to the concept or an is_a descendant."""
        conveying = self.ontology.conveying(concept.name)
        matched: list[Credential] = []
        seen: set[str] = set()
        for conveyor in conveying:
            for credential in profile:
                if credential.cred_id in seen:
                    continue
                if conveyor.implemented_by(credential):
                    matched.append(credential)
                    seen.add(credential.cred_id)
        return matched

    # -- Algorithm 1 ----------------------------------------------------------

    def map_concept(self, requested: str, profile: XProfile) -> MappingOutcome:
        """Resolve one concept to the least sensitive local credential.

        Raises :class:`MappingError` when no local concept matches or no
        local credential implements the matched concept.
        """
        concept, confidence = self._resolve_concept(requested)
        candidates = self._credentials_conveying(concept, profile)
        if not candidates:
            raise MappingError(
                f"no credential in {profile.owner!r}'s profile implements "
                f"concept {concept.name!r}"
            )
        for level in (Sensitivity.LOW, Sensitivity.MEDIUM, Sensitivity.HIGH):
            cluster = cred_cluster(candidates, level)
            if cluster:
                return MappingOutcome(
                    requested=requested,
                    resolved_concept=concept.name,
                    confidence=confidence,
                    credential=cluster[0],
                    cluster=level,
                )
        raise MappingError(  # pragma: no cover - clusters partition candidates
            f"unreachable: candidates for {concept.name!r} fit no cluster"
        )

    def map_policy(
        self, concepts: list[str], profile: XProfile
    ) -> list[MappingOutcome]:
        """Algorithm 1's outer loop over the policy's concept list."""
        return [self.map_concept(concept, profile) for concept in concepts]

    # -- adapters ---------------------------------------------------------------

    def candidates(self, requested: str, profile: XProfile) -> list[Credential]:
        """All candidate credentials for ``requested``, cluster order.

        This is the adapter plugged into
        :class:`repro.policy.compliance.ComplianceChecker` as its
        ``concept_resolver``: it returns every viable credential (the
        caller may need alternatives), ordered low → medium → high.
        """
        try:
            concept, _ = self._resolve_concept(requested)
        except MappingError:
            return []
        candidates = self._credentials_conveying(concept, profile)
        ordered: list[Credential] = []
        for level in (Sensitivity.LOW, Sensitivity.MEDIUM, Sensitivity.HIGH):
            ordered.extend(cred_cluster(candidates, level))
        return ordered

    def resolver(self):
        """Bound-method resolver for :class:`ComplianceChecker`."""
        return self.candidates
