"""The ontology graph: concepts plus ``is_a`` and custom relations.

"Within the ontology, concepts are related by different relationships,
and hierarchically organized according to the conventional is_a
relationship.  As such, if concept Ci is in a relation is_a with Ck,
the information conveyed by concept Ci can be used to infer information
conveyed by concept Ck" (paper Section 4.3) — e.g. a Texas driver
license infers a civilian driver license.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.errors import ConceptNotFoundError, OntologyError
from repro.ontology.concept import Concept

__all__ = ["Ontology"]

IS_A = "is_a"


class Ontology:
    """A party's local ontology (or the shared reference ontology)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._concepts: dict[str, Concept] = {}
        self._graph = nx.DiGraph()  # edge child -> parent with relation attr

    # -- construction -----------------------------------------------------------

    def add(self, concept: Concept) -> Concept:
        if concept.name in self._concepts:
            raise OntologyError(
                f"concept {concept.name!r} already exists in {self.name!r}"
            )
        self._concepts[concept.name] = concept
        self._graph.add_node(concept.name)
        return concept

    def add_concept(
        self,
        name: str,
        bindings: Iterable[str] = (),
        attributes: Iterable[str] = (),
    ) -> Concept:
        """Convenience wrapper over :meth:`add` with textual bindings."""
        return self.add(Concept.of(name, tuple(bindings), tuple(attributes)))

    def relate(self, child: str, parent: str, relation: str = IS_A) -> None:
        """Record ``child --relation--> parent``; ``is_a`` must stay acyclic."""
        self._require(child)
        self._require(parent)
        self._graph.add_edge(child, parent, relation=relation)
        if relation == IS_A:
            is_a_edges = [
                (u, v)
                for u, v, data in self._graph.edges(data=True)
                if data.get("relation") == IS_A
            ]
            subgraph = nx.DiGraph(is_a_edges)
            if not nx.is_directed_acyclic_graph(subgraph):
                self._graph.remove_edge(child, parent)
                raise OntologyError(
                    f"is_a cycle introduced by {child!r} -> {parent!r}"
                )

    # -- lookup ------------------------------------------------------------------

    def _require(self, name: str) -> Concept:
        try:
            return self._concepts[name]
        except KeyError as exc:
            raise ConceptNotFoundError(
                f"concept {name!r} not in ontology {self.name!r}"
            ) from exc

    def get(self, name: str) -> Concept:
        return self._require(name)

    def __contains__(self, name: str) -> bool:
        return name in self._concepts

    def __iter__(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def __len__(self) -> int:
        return len(self._concepts)

    def names(self) -> list[str]:
        return sorted(self._concepts)

    # -- is_a inference ------------------------------------------------------------

    def _is_a_edges(self) -> list[tuple[str, str]]:
        return [
            (u, v)
            for u, v, data in self._graph.edges(data=True)
            if data.get("relation") == IS_A
        ]

    def ancestors(self, name: str) -> set[str]:
        """Concepts that ``name`` can be used to infer (transitive is_a)."""
        self._require(name)
        subgraph = nx.DiGraph(self._is_a_edges())
        subgraph.add_node(name)
        return set(nx.descendants(subgraph, name))

    def descendants(self, name: str) -> set[str]:
        """Concepts whose information infers ``name``."""
        self._require(name)
        subgraph = nx.DiGraph(self._is_a_edges())
        subgraph.add_node(name)
        return set(nx.ancestors(subgraph, name))

    def infers(self, specific: str, general: str) -> bool:
        """True when ``specific`` is_a* ``general`` (or the same)."""
        if specific == general:
            return True
        return general in self.ancestors(specific)

    def conveying(self, name: str) -> list[Concept]:
        """All concepts conveying ``name``: itself plus descendants.

        These are the concepts whose bound credentials can be disclosed
        to satisfy a request for ``name``: the concept itself first,
        then is_a descendants in a stable (sorted) order.
        """
        self._require(name)
        ordered = [self._concepts[name]]
        ordered.extend(
            self._concepts[child] for child in sorted(self.descendants(name))
        )
        return ordered

    def related(self, name: str, relation: str) -> set[str]:
        """Direct neighbours of ``name`` through ``relation`` edges."""
        self._require(name)
        out = {
            v
            for _, v, data in self._graph.out_edges(name, data=True)
            if data.get("relation") == relation
        }
        return out

    # -- generalization (for policy abstraction, §4.3.1) -------------------------

    def generalize(self, name: str, hops: int = 1) -> Optional[str]:
        """Return an ancestor ``hops`` is_a levels up, if any.

        Used to abstract disclosure policies: "the process can be
        iterated so as to hide even more information, if the ancestor
        concept is used."
        """
        current = name
        for _ in range(hops):
            parents = sorted(self.related(current, IS_A))
            if not parents:
                return current if current != name else None
            current = parents[0]
        return current
