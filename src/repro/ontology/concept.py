"""Concepts: the vocabulary entries of a party's ontology.

"Each concept in the ontology is associated with the concept name, a
set of attributes and credential types names.
⟨gender; Passport.gender; DrivingLicense.sex⟩ is an example of concept.
... a concept can be implemented by attributes of different credentials
or by different credentials" (paper Section 4.3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.credentials.credential import Credential
from repro.errors import OntologyError

__all__ = ["CredentialBinding", "Concept", "tokenize_identifier"]

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_SPLIT_RE = re.compile(r"[\s_.\-/]+")


def tokenize_identifier(identifier: str) -> frozenset[str]:
    """Lower-cased word tokens of an identifier.

    Splits camelCase, snake_case, dotted, and spaced names so that
    e.g. ``WebDesignerQuality`` and ``web_designer_quality`` share the
    same token set for similarity scoring.
    """
    pieces: list[str] = []
    for chunk in _SPLIT_RE.split(identifier):
        if chunk:
            pieces.extend(_CAMEL_RE.split(chunk))
    return frozenset(piece.lower() for piece in pieces if piece)


@dataclass(frozen=True)
class CredentialBinding:
    """One implementation of a concept: a credential type and,
    optionally, the specific attribute carrying the value."""

    cred_type: str
    attribute: Optional[str] = None

    def implemented_by(self, credential: Credential) -> bool:
        if credential.cred_type != self.cred_type:
            return False
        if self.attribute is None:
            return True
        return credential.has_attribute(self.attribute)

    def qualified(self) -> str:
        if self.attribute is None:
            return self.cred_type
        return f"{self.cred_type}.{self.attribute}"

    @classmethod
    def parse(cls, text: str) -> "CredentialBinding":
        """Parse ``CredType`` or ``CredType.attribute``."""
        text = text.strip()
        if not text:
            raise OntologyError("empty credential binding")
        if "." in text:
            cred_type, attribute = text.rsplit(".", 1)
            return cls(cred_type.strip(), attribute.strip())
        return cls(text)


@dataclass(frozen=True)
class Concept:
    """A named concept with descriptive attributes and bindings."""

    name: str
    attributes: tuple[str, ...] = ()
    bindings: tuple[CredentialBinding, ...] = ()

    @classmethod
    def of(
        cls,
        name: str,
        bindings: tuple[str, ...] | list[str] = (),
        attributes: tuple[str, ...] | list[str] = (),
    ) -> "Concept":
        """Build from textual bindings (``"Passport.gender"`` forms)."""
        return cls(
            name=name,
            attributes=tuple(attributes),
            bindings=tuple(CredentialBinding.parse(b) for b in bindings),
        )

    def credential_types(self) -> set[str]:
        return {binding.cred_type for binding in self.bindings}

    def implemented_by(self, credential: Credential) -> bool:
        """True when ``credential`` can convey this concept."""
        return any(
            binding.implemented_by(credential) for binding in self.bindings
        )

    def feature_tokens(self) -> frozenset[str]:
        """Token set describing the concept, used for similarity."""
        tokens = set(tokenize_identifier(self.name))
        for attribute in self.attributes:
            tokens |= tokenize_identifier(attribute)
        for binding in self.bindings:
            tokens |= tokenize_identifier(binding.cred_type)
            if binding.attribute:
                tokens |= tokenize_identifier(binding.attribute)
        return frozenset(tokens)
