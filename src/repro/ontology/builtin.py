"""Reference ontologies for the paper's running example.

Two builders are provided:

- :func:`aerospace_reference_ontology` — the shared domain ontology of
  the Aircraft Optimization VO (quality certifications, accreditations,
  business proofs, privacy compliance, identity documents);
- :func:`identity_example_ontology` — the identity fragment the paper
  uses to introduce concepts (``gender`` implemented by
  ``Passport.gender`` / ``DrivingLicense.sex``, and the
  ``Texas_DriverLicense is_a Civilian_DriverLicense`` inference).
"""

from __future__ import annotations

from repro.ontology.graph import Ontology

__all__ = ["aerospace_reference_ontology", "identity_example_ontology"]


def aerospace_reference_ontology() -> Ontology:
    """The domain ontology the Aircraft Optimization VO parties share."""
    onto = Ontology("aerospace-reference")

    # Quality certifications.  The Design Web Portal's ISO 9000
    # credential implements WebDesignerQuality; both roll up to a
    # generic QualityCertification concept.
    onto.add_concept(
        "QualityCertification",
        attributes=["QualityRegulation"],
    )
    onto.add_concept(
        "WebDesignerQuality",
        bindings=["ISO 9000 Certified.QualityRegulation"],
        attributes=["QualityRegulation"],
    )
    onto.add_concept(
        "ISO9000Compliance",
        bindings=["ISO 9000 Certified"],
        attributes=["QualityRegulation"],
    )
    onto.relate("WebDesignerQuality", "QualityCertification")
    onto.relate("ISO9000Compliance", "QualityCertification")

    # Accreditations: the American Aircraft Association credential.
    onto.add_concept("Accreditation", attributes=["association"])
    onto.add_concept(
        "AAAccreditation",
        bindings=["AAA Member"],
        attributes=["association", "memberSince"],
    )
    onto.relate("AAAccreditation", "Accreditation")

    # Business proofs: "it can ask for a generic business list, rather
    # than naming exactly the type of document" (Section 4.3).
    onto.add_concept("BusinessProof", attributes=["Issuer"])
    onto.add_concept(
        "BalanceSheet",
        bindings=["CertificationAuthorityCompany.Issuer", "BalanceSheet"],
        attributes=["Issuer", "fiscalYear"],
    )
    onto.add_concept(
        "BusinessRegistration",
        bindings=["ChamberOfCommerceRecord"],
        attributes=["registrationNumber"],
    )
    onto.relate("BalanceSheet", "BusinessProof")
    onto.relate("BusinessRegistration", "BusinessProof")

    # Privacy compliance, used in the operation-phase renegotiation.
    onto.add_concept(
        "PrivacyRegulator",
        bindings=["PrivacySealCertificate"],
        attributes=["regulation"],
    )

    # Service-quality concepts for HPC / storage providers.
    onto.add_concept("ServiceQuality", attributes=["qosLevel"])
    onto.add_concept(
        "HPCServiceQuality",
        bindings=["HPC QoS Certificate.qosLevel"],
        attributes=["qosLevel", "gflops"],
    )
    onto.add_concept(
        "StorageServiceQuality",
        bindings=["Storage QoS Certificate.qosLevel"],
        attributes=["qosLevel", "capacityTB"],
    )
    onto.relate("HPCServiceQuality", "ServiceQuality")
    onto.relate("StorageServiceQuality", "ServiceQuality")

    # VO participation history: "tickets attesting their participation
    # to other VOs" (Section 5.1).
    onto.add_concept(
        "VOParticipationHistory",
        bindings=["VO Participation Ticket"],
        attributes=["voName", "outcome"],
    )

    # Optimization capability of the scientific/engineering consultancy.
    onto.add_concept(
        "OptimizationCapability",
        bindings=["OptimizationCapability"],
        attributes=["domain", "method"],
    )

    # The ISO 002 certification renegotiated during the operation phase
    # (Section 5.1's second scenario example).
    onto.add_concept(
        "ISO002Certification",
        bindings=["ISO 002 Certification"],
        attributes=["scope"],
    )
    onto.relate("ISO002Certification", "QualityCertification")
    return onto


def identity_example_ontology() -> Ontology:
    """The identity fragment of Section 4.3."""
    onto = Ontology("identity-example")
    onto.add_concept(
        "gender",
        bindings=["Passport.gender", "DrivingLicense.sex"],
        attributes=["gender"],
    )
    onto.add_concept("IdentityDocument")
    onto.add_concept("Civilian_DriverLicense", bindings=["DrivingLicense"])
    onto.add_concept(
        "Texas_DriverLicense", bindings=["TexasDrivingLicense"]
    )
    onto.add_concept("Passport_Document", bindings=["Passport"])
    onto.relate("Civilian_DriverLicense", "IdentityDocument")
    onto.relate("Passport_Document", "IdentityDocument")
    # "if an individual has a driver's license issued in Texas, then
    # he/she has a civilian license".
    onto.relate("Texas_DriverLicense", "Civilian_DriverLicense")
    return onto
