"""Cross-ontology alignment with confidence scores.

"Given ontologies O1 and O2, an ontology matching algorithm takes O1
and O2 as input and returns a mapping M(O1 ← O2) between the two
ontologies.  The mapping contains for each concept Ci in ontology O1 a
matching concept Cj in O2 along with a confidence measure m, that is, a
value between 0 and 1" (paper Section 4.3.1).  This module plays the
role Falcon-AO played in the prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ontology.concept import Concept
from repro.ontology.graph import Ontology
from repro.ontology.similarity import compute_similarity

__all__ = ["ConceptMatch", "OntologyMapping", "match_ontologies", "best_match"]


@dataclass(frozen=True)
class ConceptMatch:
    """One aligned concept pair with its confidence."""

    source: str
    target: str
    confidence: float


@dataclass
class OntologyMapping:
    """The mapping ``M(source ← target)`` between two ontologies."""

    source_name: str
    target_name: str
    matches: dict[str, ConceptMatch]

    def match_for(self, source_concept: str) -> Optional[ConceptMatch]:
        return self.matches.get(source_concept)

    def confident_matches(self, threshold: float) -> list[ConceptMatch]:
        return sorted(
            (m for m in self.matches.values() if m.confidence >= threshold),
            key=lambda m: (-m.confidence, m.source),
        )

    def __len__(self) -> int:
        return len(self.matches)


def best_match(
    concept: Concept, ontology: Ontology
) -> Optional[ConceptMatch]:
    """The highest-similarity concept of ``ontology`` for ``concept``.

    "This is achieved by taking C and matching it with every concept in
    ontology O2.  The concept with higher similarity score is the one
    selected."  Ties break on the lexicographically first target name
    so matching is deterministic.
    """
    best: Optional[ConceptMatch] = None
    for candidate in sorted(ontology, key=lambda c: c.name):
        score = compute_similarity(concept, candidate)
        if best is None or score > best.confidence:
            best = ConceptMatch(concept.name, candidate.name, score)
    return best


def match_ontologies(source: Ontology, target: Ontology) -> OntologyMapping:
    """Full alignment: the best target match for every source concept."""
    matches: dict[str, ConceptMatch] = {}
    for concept in source:
        match = best_match(concept, target)
        if match is not None:
            matches[concept.name] = match
    return OntologyMapping(source.name, target.name, matches)
