"""OWL-subset (RDF/XML) import and export of ontologies.

The prototype stored its common credential-attribute ontology in OWL
(paper Fig. 8, authored with Protégé and reasoned over with Jena).
This codec emits the corresponding RDF/XML subset: ``owl:Class``
declarations with ``rdfs:subClassOf`` for ``is_a`` edges, plus a small
``repro:`` vocabulary for credential bindings and descriptive
attributes, which OWL itself does not model.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.errors import OntologyError
from repro.ontology.concept import Concept, CredentialBinding
from repro.ontology.graph import IS_A, Ontology
from repro.xmlutil.canonical import parse_xml

__all__ = ["ontology_to_owl", "ontology_from_owl"]

_RDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
_RDFS = "http://www.w3.org/2000/01/rdf-schema#"
_OWL = "http://www.w3.org/2002/07/owl#"
_REPRO = "urn:repro:ontology#"


def _q(namespace: str, local: str) -> str:
    return f"{{{namespace}}}{local}"


def ontology_to_owl(ontology: Ontology) -> str:
    """Serialize ``ontology`` to an RDF/XML string."""
    ET.register_namespace("rdf", _RDF)
    ET.register_namespace("rdfs", _RDFS)
    ET.register_namespace("owl", _OWL)
    ET.register_namespace("repro", _REPRO)
    root = ET.Element(_q(_RDF, "RDF"), {_q(_REPRO, "ontologyName"): ontology.name})
    header = ET.SubElement(root, _q(_OWL, "Ontology"))
    header.set(_q(_RDF, "about"), f"urn:repro:{ontology.name}")
    for concept in sorted(ontology, key=lambda c: c.name):
        klass = ET.SubElement(root, _q(_OWL, "Class"))
        klass.set(_q(_RDF, "ID"), concept.name)
        for parent in sorted(ontology.related(concept.name, IS_A)):
            sub = ET.SubElement(klass, _q(_RDFS, "subClassOf"))
            sub.set(_q(_RDF, "resource"), f"#{parent}")
        for attribute in concept.attributes:
            node = ET.SubElement(klass, _q(_REPRO, "attribute"))
            node.text = attribute
        for binding in concept.bindings:
            node = ET.SubElement(klass, _q(_REPRO, "binding"))
            node.set(_q(_REPRO, "credType"), binding.cred_type)
            if binding.attribute is not None:
                node.set(_q(_REPRO, "credAttribute"), binding.attribute)
    return ET.tostring(root, encoding="unicode")


def ontology_from_owl(text: str) -> Ontology:
    """Rebuild an :class:`Ontology` from its RDF/XML form."""
    root = parse_xml(text)
    if root.tag != _q(_RDF, "RDF"):
        raise OntologyError(f"expected rdf:RDF root, found {root.tag!r}")
    name = root.attrib.get(_q(_REPRO, "ontologyName"))
    if not name:
        raise OntologyError("RDF document lacks repro:ontologyName")
    ontology = Ontology(name)
    is_a_edges: list[tuple[str, str]] = []
    for klass in root.findall(_q(_OWL, "Class")):
        concept_name = klass.attrib.get(_q(_RDF, "ID"))
        if not concept_name:
            raise OntologyError("owl:Class lacks rdf:ID")
        attributes = tuple(
            (node.text or "").strip()
            for node in klass.findall(_q(_REPRO, "attribute"))
            if node.text and node.text.strip()
        )
        bindings = []
        for node in klass.findall(_q(_REPRO, "binding")):
            cred_type = node.attrib.get(_q(_REPRO, "credType"))
            if not cred_type:
                raise OntologyError(
                    f"binding of {concept_name!r} lacks repro:credType"
                )
            bindings.append(
                CredentialBinding(
                    cred_type, node.attrib.get(_q(_REPRO, "credAttribute"))
                )
            )
        ontology.add(
            Concept(concept_name, attributes, tuple(bindings))
        )
        for sub in klass.findall(_q(_RDFS, "subClassOf")):
            parent_ref = sub.attrib.get(_q(_RDF, "resource"), "")
            if not parent_ref.startswith("#"):
                raise OntologyError(
                    f"subClassOf of {concept_name!r} lacks a #local resource"
                )
            is_a_edges.append((concept_name, parent_ref[1:]))
    for child, parent in is_a_edges:
        ontology.relate(child, parent, IS_A)
    return ontology
