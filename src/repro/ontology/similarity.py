"""Similarity measures for ontology matching.

"The matching operation is executed according to the Jaccard
coefficient, as developed for the GLUE mapping tool" (paper
Section 4.3.1).  GLUE estimates, for concepts A and B, the joint
probability ``P(A ∩ B) / P(A ∪ B)``; without instance data, the
standard surrogate is the Jaccard coefficient over the concepts'
feature sets (name, attribute, and binding tokens), which is what
``compute_similarity`` — the function Algorithm 1 calls — implements.
"""

from __future__ import annotations

from typing import AbstractSet

from repro.ontology.concept import Concept, tokenize_identifier

__all__ = ["jaccard", "compute_similarity", "name_similarity"]


def jaccard(left: AbstractSet, right: AbstractSet) -> float:
    """Jaccard coefficient ``|L ∩ R| / |L ∪ R|`` in [0, 1].

    Two empty sets are defined to have similarity 0 (no evidence of
    overlap, rather than perfect overlap).
    """
    if not left and not right:
        return 0.0
    union = len(left | right)
    if union == 0:
        return 0.0
    return len(left & right) / union


def compute_similarity(left: Concept, right: Concept) -> float:
    """``ComputeSimilarity`` of Algorithm 1: feature-set Jaccard."""
    return jaccard(left.feature_tokens(), right.feature_tokens())


def name_similarity(left: str, right: str) -> float:
    """Jaccard over the token sets of two bare identifiers.

    Used when only a concept *name* is available (e.g. a counterpart
    policy names a concept absent from every local ontology record).
    """
    return jaccard(tokenize_identifier(left), tokenize_identifier(right))
