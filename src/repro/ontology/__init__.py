"""Semantic layer: ontologies, matching, and Algorithm 1 (paper §4.3).

Trust-X is extended with a reasoning engine so that parties can express
policies at concept level and negotiate across different naming
schemas.  The layer provides:

- :mod:`concept` — concepts binding names to credential types and
  attributes (``⟨gender; Passport.gender; DrivingLicense.sex⟩``),
- :mod:`graph` — the ontology graph with ``is_a`` inference,
- :mod:`similarity` — the Jaccard coefficient as used by GLUE,
- :mod:`matching` — cross-ontology alignment with confidence scores,
- :mod:`mapping` — Algorithm 1: concept → credential resolution with
  sensitivity clustering,
- :mod:`owl` — OWL-subset (RDF/XML) import/export (paper Fig. 8),
- :mod:`builtin` — the aerospace reference ontology used by the
  running example.
"""

from repro.ontology.concept import Concept, CredentialBinding
from repro.ontology.graph import Ontology
from repro.ontology.mapping import ConceptMapper, MappingOutcome
from repro.ontology.matching import OntologyMapping, match_ontologies
from repro.ontology.owl import ontology_from_owl, ontology_to_owl
from repro.ontology.similarity import compute_similarity, jaccard

__all__ = [
    "Concept",
    "CredentialBinding",
    "Ontology",
    "jaccard",
    "compute_similarity",
    "OntologyMapping",
    "match_ontologies",
    "ConceptMapper",
    "MappingOutcome",
    "ontology_to_owl",
    "ontology_from_owl",
]
