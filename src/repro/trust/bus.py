"""The retraction-event bus: nonmonotonic trust, end to end.

Trust established by the Trust-X protocol is *monotone by default*: a
signature verdict, a cached trust sequence, a reputation score — each
only ever accumulates.  Nonmonotonic trust management (Czenko et al.)
requires the opposite capability: a fact can be *retracted* and every
derived artifact must follow, synchronously, before the next
negotiation turn can rely on it.

:class:`TrustEvent` names the retraction (a credential revoked, a CRL
published, a negative credential asserted, a reputation decayed below
threshold) and :meth:`TrustBus.retract` propagates it:

1. **Revocation registry** — a carried CRL is installed (signed and
   version-checked; unsigned lists are rejected with
   :data:`~repro.errors.ErrorCode.UNSIGNED_REVOCATION_LIST`).
2. **Signature cache** — exactly the ``(issuer, serial)``-tagged
   verdicts the event contradicts are evicted from
   :data:`repro.perf.SIGNATURE_CACHE`; other serials of the same
   issuer keep their entries (precision the old whole-issuer flush
   lacked).
3. **Sequence caches** — every registered
   :class:`~repro.negotiation.cache.SequenceCache` drops the cached
   trust sequences whose provenance includes a retracted credential.
4. **Epoch** — the process-wide :func:`trust_epoch` advances, which an
   in-flight :class:`~repro.negotiation.core.NegotiationCore` samples
   each exchange turn to re-verify the credentials it has already
   accepted.
5. **Subscribers** — registered callbacks (strategy escalation,
   scenario reputation) observe the event; the bus also remembers
   which parties an event *touched* so a later negotiation can
   escalate against them (:meth:`TrustBus.touched`).

The bus is the single blessed entry point for revocation operations;
``RevocationRegistry.publish`` and
``repro.perf.invalidate_issuer_signatures`` survive only as
``DeprecationWarning`` shims over it.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.credentials.credential import Credential
from repro.credentials.revocation import RevocationList, RevocationRegistry
from repro.perf import SIGNATURE_CACHE

__all__ = [
    "TrustEvent",
    "TrustEventKind",
    "TrustBus",
    "RetractionReceipt",
    "trust_epoch",
    "register_sequence_cache",
    "default_bus",
]


class TrustEventKind(Enum):
    """The ways previously-established trust can be retracted."""

    #: One specific credential was revoked by its issuer.
    CREDENTIAL_REVOKED = "credential_revoked"
    #: An issuer published a (newer) revocation list; the delta against
    #: the superseded list is the set of retracted credentials.
    CRL_PUBLISHED = "crl_published"
    #: A negative credential was asserted against a party — an explicit
    #: "do not trust" statement outside the CRL mechanism.
    NEGATIVE_CREDENTIAL = "negative_credential"
    #: A party's reputation decayed below the isolation threshold.
    REPUTATION_DECAYED = "reputation_decayed"


@dataclass(frozen=True)
class TrustEvent:
    """One retraction, with enough provenance to evict precisely.

    ``issuer``/``serials`` name the cache entries the event
    contradicts; ``subjects`` names the parties it touches (for
    strategy escalation and reputation); ``crl`` optionally carries a
    revocation list to install in the bus's registry.
    """

    kind: TrustEventKind
    issuer: str = ""
    serials: frozenset[int] = frozenset()
    subjects: frozenset[str] = frozenset()
    crl: Optional[RevocationList] = None
    detail: str = ""

    @classmethod
    def credential_revoked(
        cls, credential: Credential, *,
        crl: Optional[RevocationList] = None, detail: str = "",
    ) -> "TrustEvent":
        """Retraction of one credential.  Pass the authority's re-signed
        ``crl`` so the bus's registry learns the revocation too (the
        usual flow after :meth:`CredentialAuthority.revoke`)."""
        return cls(
            kind=TrustEventKind.CREDENTIAL_REVOKED,
            issuer=credential.issuer,
            serials=frozenset({credential.serial}),
            subjects=frozenset({credential.subject}),
            crl=crl,
            detail=detail or f"revoked {credential.cred_id!r}",
        )

    @classmethod
    def crl_published(
        cls, crl: RevocationList, *, detail: str = "",
    ) -> "TrustEvent":
        """Publication of an issuer's current revocation list.  The
        serials actually retracted are the delta against the list the
        registry held before — computed by :meth:`TrustBus.retract`."""
        return cls(
            kind=TrustEventKind.CRL_PUBLISHED,
            issuer=crl.issuer,
            serials=frozenset(crl.serials),
            crl=crl,
            detail=detail or f"CRL v{crl.version} for {crl.issuer!r}",
        )

    @classmethod
    def negative_credential(
        cls, *, issuer: str, serial: int, subject: str, detail: str = "",
    ) -> "TrustEvent":
        return cls(
            kind=TrustEventKind.NEGATIVE_CREDENTIAL,
            issuer=issuer,
            serials=frozenset({serial}),
            subjects=frozenset({subject}),
            detail=detail or f"negative credential against {subject!r}",
        )

    @classmethod
    def reputation_decayed(
        cls, member: str, *, score: float, threshold: float,
        detail: str = "",
    ) -> "TrustEvent":
        return cls(
            kind=TrustEventKind.REPUTATION_DECAYED,
            subjects=frozenset({member}),
            detail=detail or (
                f"{member!r} decayed to {score:.3f} < {threshold:.3f}"
            ),
        )


@dataclass(frozen=True)
class RetractionReceipt:
    """What one :meth:`TrustBus.retract` call actually did."""

    event: TrustEvent
    #: Serials newly retracted by this event (for CRL publications,
    #: the delta against the superseded list; empty when the event
    #: retracted nothing new).
    retracted: frozenset[int]
    #: Signature-cache verdicts evicted (exact ``(issuer, serial)``
    #: tags, not a whole-issuer flush).
    evicted_signatures: int
    #: Cached trust sequences evicted across registered caches.
    evicted_sequences: int
    #: The trust epoch after this retraction.
    epoch: int


# -- process-wide retraction epoch ------------------------------------------------

_epoch = 0
_epoch_lock = threading.Lock()


def trust_epoch() -> int:
    """Monotone counter advanced by every effective retraction.

    An in-flight negotiation samples it per exchange turn: unchanged
    means no retraction happened anywhere in the process and the turn
    may trust what it already verified; advanced means already-accepted
    credentials must be re-verified before the exchange continues.
    """
    return _epoch


def _advance_epoch() -> int:
    global _epoch
    with _epoch_lock:
        _epoch += 1
        return _epoch


# -- sequence-cache registry ------------------------------------------------------

_sequence_caches: "weakref.WeakSet" = weakref.WeakSet()


def register_sequence_cache(cache) -> None:
    """Enroll a sequence cache for retraction-driven eviction.

    Called by :class:`repro.negotiation.cache.SequenceCache` on
    construction (weakly referenced — the registry never keeps a cache
    alive).  ``cache`` must expose
    ``invalidate_retracted(issuer, serials) -> int``.
    """
    _sequence_caches.add(cache)


def _evict_sequences(issuer: str, serials: frozenset[int]) -> int:
    dropped = 0
    for cache in list(_sequence_caches):
        dropped += cache.invalidate_retracted(issuer, serials)
    return dropped


class TrustBus:
    """The retraction surface over one revocation registry.

    >>> bus = TrustBus()
    >>> bus.publish_crl(authority.crl)          # doctest: +SKIP
    >>> authority.revoke(credential)            # doctest: +SKIP
    >>> receipt = bus.retract(                  # doctest: +SKIP
    ...     TrustEvent.credential_revoked(credential, crl=authority.crl)
    ... )

    Construction is cheap: a bus wraps an existing registry (or creates
    a fresh one) and keeps only its own subscriber list and touched-
    party memory.  Cache eviction and the epoch are process-wide, so
    every bus sees every retraction's cache effects; subscriber
    notification and :meth:`touched` are per-bus.
    """

    def __init__(
        self, registry: Optional[RevocationRegistry] = None,
    ) -> None:
        #: The revocation registry this bus governs — hand it to
        #: :class:`~repro.credentials.validation.CredentialValidator`.
        self.registry = registry if registry is not None else RevocationRegistry()
        self._subscribers: list[Callable[[TrustEvent], None]] = []
        self._touched: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- subscription -----------------------------------------------------------

    def subscribe(
        self, callback: Callable[[TrustEvent], None],
    ) -> Callable[[], None]:
        """Observe every retraction; returns an unsubscribe callable."""
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return unsubscribe

    def touched(self, party: str) -> int:
        """How many retractions have touched ``party`` (as credential
        subject or decayed member) on this bus."""
        with self._lock:
            return self._touched.get(party, 0)

    # -- the one entry point ----------------------------------------------------

    def retract(self, event: TrustEvent) -> RetractionReceipt:
        """Propagate one retraction synchronously through every layer.

        Returns a receipt stating exactly what was retracted and
        evicted; when the receipt's ``retracted`` set is empty (e.g. an
        initial, empty CRL publication) no caches were touched and the
        epoch did not advance.
        """
        retracted = event.serials
        if event.crl is not None:
            newly = self.registry._install(event.crl)
            if event.kind is TrustEventKind.CRL_PUBLISHED:
                retracted = newly
            else:
                retracted = retracted | newly
        evicted_signatures = 0
        evicted_sequences = 0
        if retracted and event.issuer:
            for serial in retracted:
                evicted_signatures += SIGNATURE_CACHE.invalidate_tag(
                    (event.issuer, serial)
                )
            evicted_sequences = _evict_sequences(event.issuer, retracted)
        effective = bool(retracted) or event.kind in (
            TrustEventKind.NEGATIVE_CREDENTIAL,
            TrustEventKind.REPUTATION_DECAYED,
        )
        epoch = _advance_epoch() if effective else trust_epoch()
        if effective:
            with self._lock:
                for subject in event.subjects:
                    self._touched[subject] = self._touched.get(subject, 0) + 1
                subscribers = list(self._subscribers)
        else:
            subscribers = []
        for callback in subscribers:
            callback(event)
        return RetractionReceipt(
            event=event,
            retracted=frozenset(retracted),
            evicted_signatures=evicted_signatures,
            evicted_sequences=evicted_sequences,
            epoch=epoch,
        )

    # -- conveniences over retract() --------------------------------------------

    def publish_crl(self, crl: RevocationList) -> RetractionReceipt:
        """Install an issuer's revocation list (the blessed replacement
        for the deprecated ``RevocationRegistry.publish``)."""
        return self.retract(TrustEvent.crl_published(crl))

    def revoke(
        self, authority, credential: Credential, *, detail: str = "",
    ) -> RetractionReceipt:
        """Revoke ``credential`` at its ``authority`` and propagate:
        the authority re-signs its CRL, the bus installs it and evicts
        exactly that credential's cached artifacts."""
        authority.revoke(credential)
        return self.retract(TrustEvent.credential_revoked(
            credential, crl=authority.crl, detail=detail,
        ))


# -- default bus ------------------------------------------------------------------

_default_bus: Optional[TrustBus] = None
_default_bus_lock = threading.Lock()


def default_bus() -> TrustBus:
    """The process-default bus (fresh registry), created on first use.

    Applications with their own :class:`RevocationRegistry` construct
    their own bus; the default exists so short scripts can write
    ``default_bus().publish_crl(ca.crl)`` without plumbing.
    """
    global _default_bus
    with _default_bus_lock:
        if _default_bus is None:
            _default_bus = TrustBus()
        return _default_bus
