"""Nonmonotonic trust: the retraction-event bus.

See :mod:`repro.trust.bus` for the design notes.  This package may
import :mod:`repro.perf`, :mod:`repro.errors`, and
:mod:`repro.credentials` but never :mod:`repro.negotiation` — the
negotiation layer registers its sequence caches *into* the bus via
:func:`register_sequence_cache`.
"""

from repro.trust.bus import (
    RetractionReceipt,
    TrustBus,
    TrustEvent,
    TrustEventKind,
    default_bus,
    register_sequence_cache,
    trust_epoch,
)

__all__ = [
    "TrustEvent",
    "TrustEventKind",
    "TrustBus",
    "RetractionReceipt",
    "trust_epoch",
    "register_sequence_cache",
    "default_bus",
]
