"""Parser for the textual policy DSL used throughout the paper.

Grammar (arrows may be written ``<-`` or the paper's ``←``)::

    policy    := rterm arrow body [ "{" brace-conds "}" ]
    rterm     := NAME [ "(" NAME ("," NAME)* ")" ]
    body      := "DELIV" | term ("," term)*
    term      := ["$" | "@"] NAME [ "(" cond ("," cond)* ")" ]
    cond      := NAME op value          -- attribute condition
               | value                  -- any-attribute condition
               | xpath( 'expression' )  -- raw XPath condition
    value     := 'quoted' | "quoted" | number | bare words
    op        := = | != | <= | >= | < | >

``$Name`` is a variable term (credential type unspecified), ``@Name`` a
concept term resolved through the ontology.  A trailing brace block
attaches its conditions to the *last* term, matching the paper's
``VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}`` shorthand
("conditions added within brackets at the end of the policy",
Section 4.3).

Examples from the paper all parse::

    VoMembership <- WebDesignerQuality
    QualityCertification <- AAACreditation
    VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}
    Certification() <- AAAccreditation()
    Certification() <- BalanceSheet
    Certification() <- PrivacyRegulator()
"""

from __future__ import annotations

import re

from repro.errors import PolicyParseError
from repro.policy.conditions import (
    AnyAttributeCondition,
    AttributeCondition,
    Condition,
    XPathCondition,
)
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import RTerm, Term, TermKind

__all__ = ["parse_policy", "parse_policies"]

_ARROW_RE = re.compile(r"<-|←")
_NAME_RE = re.compile(r"^[A-Za-z_][\w .:-]*$")
_COND_RE = re.compile(
    r"^\s*(?P<attr>[A-Za-z_][\w.-]*)\s*(?P<op><=|>=|!=|=|<|>)\s*(?P<value>.+)$"
)
_NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?$")
_XPATH_RE = re.compile(r"^xpath\(\s*(?P<quote>['\"])(?P<expr>.*)(?P=quote)\s*\)$")


def _split_top_level(text: str, separator: str = ",") -> list[str]:
    """Split on ``separator`` outside parentheses, braces and quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for char in text:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char in "({[":
            depth += 1
            current.append(char)
        elif char in ")}]":
            depth -= 1
            if depth < 0:
                raise PolicyParseError(f"unbalanced brackets in {text!r}")
            current.append(char)
        elif char == separator and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if quote is not None:
        raise PolicyParseError(f"unterminated quote in {text!r}")
    if depth != 0:
        raise PolicyParseError(f"unbalanced brackets in {text!r}")
    tail = "".join(current).strip()
    if tail or parts:
        parts.append(tail)
    return [part for part in parts if part]


def _parse_value(text: str) -> str | float:
    text = text.strip()
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    if _NUMBER_RE.match(text):
        return float(text)
    return text  # bare word(s)


def _parse_condition(text: str) -> Condition:
    text = text.strip()
    xpath_match = _XPATH_RE.match(text)
    if xpath_match:
        return XPathCondition(xpath_match.group("expr"))
    cond_match = _COND_RE.match(text)
    if cond_match:
        return AttributeCondition(
            cond_match.group("attr"),
            cond_match.group("op"),
            _parse_value(cond_match.group("value")),
        )
    value = _parse_value(text)
    return AnyAttributeCondition(str(value) if not isinstance(value, str) else value)


def _parse_name_and_parens(text: str, what: str) -> tuple[str, str | None]:
    """Split ``Name(inner)`` into (name, inner); inner is None when no
    parens are present and '' for empty parens."""
    text = text.strip()
    if "(" not in text:
        if not _NAME_RE.match(text):
            raise PolicyParseError(f"invalid {what} name {text!r}")
        return text, None
    open_idx = text.index("(")
    if not text.endswith(")"):
        raise PolicyParseError(f"unbalanced parentheses in {what} {text!r}")
    name = text[:open_idx].strip()
    if not _NAME_RE.match(name):
        raise PolicyParseError(f"invalid {what} name {name!r}")
    return name, text[open_idx + 1 : -1].strip()


def _parse_term(text: str) -> Term:
    text = text.strip()
    kind = TermKind.CREDENTIAL
    if text.startswith("$"):
        kind = TermKind.VARIABLE
        text = text[1:]
    elif text.startswith("@"):
        kind = TermKind.CONCEPT
        text = text[1:]
    name, inner = _parse_name_and_parens(text, "term")
    conditions: tuple[Condition, ...] = ()
    if inner:
        conditions = tuple(
            _parse_condition(part) for part in _split_top_level(inner)
        )
    return Term(kind, name, conditions)


def _parse_rterm(text: str) -> RTerm:
    name, inner = _parse_name_and_parens(text, "resource")
    attrset: tuple[str, ...] = ()
    if inner:
        attrset = tuple(part.strip() for part in _split_top_level(inner))
        for attr in attrset:
            if not _NAME_RE.match(attr):
                raise PolicyParseError(
                    f"invalid resource attribute name {attr!r}"
                )
    return RTerm(name, attrset)


_GROUP_SUFFIX_RE = re.compile(r"\|\s*group\((?P<inner>.*)\)\s*$")


def parse_policy(text: str, transient: bool = False) -> DisclosurePolicy:
    """Parse one policy rule from its DSL form."""
    pieces = _ARROW_RE.split(text, maxsplit=1)
    if len(pieces) != 2:
        raise PolicyParseError(f"policy {text!r} lacks an arrow (<- or ←)")
    head, body = pieces[0].strip(), pieces[1].strip()
    if not head:
        raise PolicyParseError(f"policy {text!r} lacks a resource head")
    target = _parse_rterm(head)

    # Peel the group-condition suffix:  ... | group(cond, cond)
    group_conditions: list = []
    group_match = _GROUP_SUFFIX_RE.search(body)
    if group_match:
        from repro.policy.groups import parse_group_condition

        inner = group_match.group("inner").strip()
        if not inner:
            raise PolicyParseError(f"empty group() clause in {text!r}")
        group_conditions = [
            parse_group_condition(part) for part in _split_top_level(inner)
        ]
        body = body[: group_match.start()].rstrip()

    # Peel a trailing brace block: its conditions attach to the last term.
    brace_conditions: list[Condition] = []
    if body.endswith("}"):
        open_idx = body.rfind("{")
        if open_idx == -1:
            raise PolicyParseError(f"unbalanced braces in {text!r}")
        brace_inner = body[open_idx + 1 : -1].strip()
        body = body[:open_idx].rstrip().rstrip(",").strip()
        if brace_inner:
            brace_conditions = [
                _parse_condition(part)
                for part in _split_top_level(brace_inner)
            ]

    if body.upper() == "DELIV":
        if brace_conditions:
            raise PolicyParseError(
                f"delivery rule {text!r} cannot carry brace conditions"
            )
        if group_conditions:
            raise PolicyParseError(
                f"delivery rule {text!r} cannot carry group conditions"
            )
        return DisclosurePolicy.delivery(target.name, transient=transient)

    if not body:
        raise PolicyParseError(f"policy {text!r} has an empty body")
    terms = [_parse_term(part) for part in _split_top_level(body)]
    if brace_conditions:
        last = terms[-1]
        terms[-1] = Term(
            last.kind, last.name, last.conditions + tuple(brace_conditions)
        )
    return DisclosurePolicy(
        target,
        tuple(terms),
        transient=transient,
        group_conditions=tuple(group_conditions),
    )


def parse_policies(text: str, transient: bool = False) -> list[DisclosurePolicy]:
    """Parse a block of policies, one per non-empty line.

    Lines starting with ``#`` are comments.  Alternative policies for
    the same resource are simply repeated lines with the same head.
    """
    policies = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            policies.append(parse_policy(stripped, transient=transient))
        except PolicyParseError as exc:
            raise PolicyParseError(f"line {line_no}: {exc}") from exc
    return policies
