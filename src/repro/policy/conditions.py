"""The condition language of disclosure-policy terms.

A term ``P(C)`` carries "a (possibly empty) list of conditions on the
attributes encoded in credentials of type P" (paper Section 4.1).
Three condition forms cover the paper's usage:

- :class:`AttributeCondition` — ``attr op value`` on a named attribute;
- :class:`AnyAttributeCondition` — a bare value in the brace shorthand
  (``WebDesignerQuality, {UNI EN ISO 9000}``), satisfied when *any*
  attribute equals the value;
- :class:`XPathCondition` — a raw XPath expression over the credential
  document, the form stored in ``<certCond>`` elements (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.credentials.credential import Credential
from repro.errors import ConditionError
from repro.xmlutil.xpath import XPath

__all__ = [
    "Condition",
    "AttributeCondition",
    "AnyAttributeCondition",
    "XPathCondition",
    "OPERATORS",
]

OPERATORS = ("=", "!=", "<=", ">=", "<", ">")

_Scalar = Union[str, float]


def _compare(op: str, left: _Scalar, right: _Scalar) -> bool:
    """Compare with numeric coercion when both sides are numeric."""
    try:
        left_num = float(left)
        right_num = float(right)
    except (TypeError, ValueError):
        left_str, right_str = str(left), str(right)
        if op == "=":
            return left_str == right_str
        if op == "!=":
            return left_str != right_str
        if op == "<":
            return left_str < right_str
        if op == "<=":
            return left_str <= right_str
        if op == ">":
            return left_str > right_str
        if op == ">=":
            return left_str >= right_str
        raise ConditionError(f"unknown operator {op!r}")
    if op == "=":
        return left_num == right_num
    if op == "!=":
        return left_num != right_num
    if op == "<":
        return left_num < right_num
    if op == "<=":
        return left_num <= right_num
    if op == ">":
        return left_num > right_num
    if op == ">=":
        return left_num >= right_num
    raise ConditionError(f"unknown operator {op!r}")


@dataclass(frozen=True)
class AttributeCondition:
    """``attribute op value`` over a credential's named attribute."""

    attribute: str
    op: str
    value: _Scalar

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ConditionError(
                f"unknown operator {self.op!r}; expected one of {OPERATORS}"
            )

    def evaluate(self, credential: Credential) -> bool:
        if not credential.has_attribute(self.attribute):
            return False
        actual = credential.attribute(self.attribute).comparable()
        return _compare(self.op, actual, self.value)

    def dsl(self) -> str:
        value = (
            f"'{self.value}'" if isinstance(self.value, str) else
            f"{self.value:g}"
        )
        return f"{self.attribute}{self.op}{value}"


@dataclass(frozen=True)
class AnyAttributeCondition:
    """Satisfied when any attribute of the credential equals ``value``.

    Models the paper's brace shorthand where only a required value is
    named (``{UNI EN ISO 9000}``) without binding it to an attribute.
    """

    value: str

    def evaluate(self, credential: Credential) -> bool:
        return any(
            attr.xml_text == self.value for attr in credential.attributes
        )

    def dsl(self) -> str:
        return f"'{self.value}'"


class XPathCondition:
    """A raw XPath expression evaluated over the credential XML."""

    def __init__(self, expression: str) -> None:
        self.expression = expression
        XPath(expression)  # validates eagerly (and warms the AST cache)

    def evaluate(self, credential: Credential) -> bool:
        # Compile through the shared AST memo rather than pinning a
        # private compiled copy at parse time: every evaluation of the
        # same expression — across policy copies, engine re-runs, and
        # service restores — resolves to one XPATH_CACHE entry.
        return XPath(self.expression).matches(credential.to_element())

    def dsl(self) -> str:
        return f"xpath({self.expression!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XPathCondition)
            and other.expression == self.expression
        )

    def __hash__(self) -> int:
        return hash(("XPathCondition", self.expression))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"XPathCondition({self.expression!r})"


Condition = Union[AttributeCondition, AnyAttributeCondition, XPathCondition]
