"""Terms and R-Terms, the building blocks of disclosure policies.

"A term is an expression of form P(C) where P is a credential type and
C is a (possibly empty) list of conditions ... The credential type P
can be unspecified (and denoted by a variable) ... R-Terms are
expressions of the form ResName(attrset)" (paper Section 4.1).

A term can reference the counterpart's credentials in three ways:

- a **credential term** names a concrete credential type;
- a **variable term** leaves the type unspecified, constraining only
  properties, so the receiver may choose which credential to send;
- a **concept term** names an ontology concept instead of a credential
  type (Section 4.3.1), resolved via Algorithm 1 by the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.credentials.credential import Credential
from repro.policy.conditions import Condition

__all__ = ["TermKind", "Term", "RTerm"]


class TermKind(Enum):
    CREDENTIAL = "credential"
    VARIABLE = "variable"
    CONCEPT = "concept"


@dataclass(frozen=True)
class Term:
    """One requirement of a disclosure policy."""

    kind: TermKind
    name: str  # credential type, variable name, or concept name
    conditions: tuple[Condition, ...] = ()

    @classmethod
    def credential(cls, cred_type: str, *conditions: Condition) -> "Term":
        return cls(TermKind.CREDENTIAL, cred_type, tuple(conditions))

    @classmethod
    def variable(cls, var_name: str, *conditions: Condition) -> "Term":
        return cls(TermKind.VARIABLE, var_name, tuple(conditions))

    @classmethod
    def concept(cls, concept_name: str, *conditions: Condition) -> "Term":
        return cls(TermKind.CONCEPT, concept_name, tuple(conditions))

    def matches_credential(self, credential: Credential) -> bool:
        """True when ``credential`` satisfies this term directly.

        Concept terms never match directly — they are first resolved to
        credential types through the ontology layer.
        """
        if self.kind == TermKind.CONCEPT:
            return False
        if (
            self.kind == TermKind.CREDENTIAL
            and credential.cred_type != self.name
        ):
            return False
        return all(cond.evaluate(credential) for cond in self.conditions)

    def conditions_hold(self, credential: Credential) -> bool:
        """Evaluate just the conditions, ignoring the type/concept test.

        Used after a concept term has been resolved to a concrete
        credential."""
        return all(cond.evaluate(credential) for cond in self.conditions)

    def dsl(self) -> str:
        prefix = {
            TermKind.CREDENTIAL: "",
            TermKind.VARIABLE: "$",
            TermKind.CONCEPT: "@",
        }[self.kind]
        if not self.conditions:
            return f"{prefix}{self.name}"
        conds = ", ".join(cond.dsl() for cond in self.conditions)
        return f"{prefix}{self.name}({conds})"


@dataclass(frozen=True)
class RTerm:
    """The resource a disclosure policy protects.

    ``attrset`` names "relevant characteristics of the resource";
    resources can be credentials, files, or services.
    """

    name: str
    attrset: tuple[str, ...] = ()

    def dsl(self) -> str:
        if not self.attrset:
            return self.name
        return f"{self.name}({', '.join(self.attrset)})"
