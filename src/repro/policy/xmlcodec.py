"""XML wire format of disclosure policies (paper Fig. 7).

A policy document has three components: ``<resource>`` (the protected
credential/resource, ``target`` attribute), ``<properties>`` (one
``<certificate targetCertType="...">`` per term, each holding zero or
more ``<certCond>`` XPath conditions), and a ``type`` attribute on the
root.  Fig. 7's example — the Aerospace Company's policy protecting the
"ISO 9000 Certified" credential — round-trips through this codec.

Attribute conditions from the DSL are lowered to XPath ``<certCond>``
expressions on the wire (that is the only condition form Fig. 7
supports) and lifted back to :class:`XPathCondition` on decode; the
DSL and XML forms are therefore semantically, not syntactically,
round-trip stable.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.errors import PolicyParseError
from repro.policy.conditions import (
    AnyAttributeCondition,
    AttributeCondition,
    XPathCondition,
)
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import RTerm, Term, TermKind
from repro.xmlutil.canonical import canonicalize, parse_xml

__all__ = ["policy_to_xml", "policy_from_xml", "policy_to_element", "policy_from_element"]

_KIND_TO_MARKER = {
    TermKind.CREDENTIAL: "credential",
    TermKind.VARIABLE: "variable",
    TermKind.CONCEPT: "concept",
}
_MARKER_TO_KIND = {marker: kind for kind, marker in _KIND_TO_MARKER.items()}


def _condition_to_xpath(condition, term: Term) -> str:
    """Lower a DSL condition to the XPath form ``<certCond>`` stores."""
    if isinstance(condition, XPathCondition):
        return condition.expression
    if isinstance(condition, AttributeCondition):
        value = condition.value
        literal = f"'{value}'" if isinstance(value, str) else f"{value:g}"
        return f"//{condition.attribute} {condition.op} {literal}"
    if isinstance(condition, AnyAttributeCondition):
        return f"//content/* = '{condition.value}'"
    raise PolicyParseError(f"cannot serialize condition {condition!r}")


def policy_to_element(policy: DisclosurePolicy) -> ET.Element:
    attributes = {"type": "delivery" if policy.is_delivery else "disclosure"}
    if policy.transient:
        attributes["transient"] = "true"
    root = ET.Element("policy", attributes)
    resource_attrs = {"target": policy.target.name}
    if policy.target.attrset:
        resource_attrs["attrset"] = ",".join(policy.target.attrset)
    ET.SubElement(root, "resource", resource_attrs)
    properties = ET.SubElement(root, "properties")
    for group in policy.group_conditions:
        group_node = ET.SubElement(properties, "groupCond")
        group_node.text = group.dsl()
    for term in policy.terms:
        certificate = ET.SubElement(
            properties,
            "certificate",
            {
                "targetCertType": term.name,
                "kind": _KIND_TO_MARKER[term.kind],
            },
        )
        for condition in term.conditions:
            cond_node = ET.SubElement(certificate, "certCond")
            cond_node.text = _condition_to_xpath(condition, term)
    return root


def policy_to_xml(policy: DisclosurePolicy) -> str:
    """Serialize ``policy`` to its canonical XML string."""
    return canonicalize(policy_to_element(policy))


def policy_from_element(root: ET.Element) -> DisclosurePolicy:
    if root.tag != "policy":
        raise PolicyParseError(f"expected <policy>, found <{root.tag}>")
    resource = root.find("resource")
    if resource is None or "target" not in resource.attrib:
        raise PolicyParseError("policy lacks a <resource target=...>")
    attrset_text = resource.attrib.get("attrset", "")
    attrset = tuple(
        part.strip() for part in attrset_text.split(",") if part.strip()
    )
    target = RTerm(resource.attrib["target"], attrset)

    transient = root.attrib.get("transient") == "true"
    if root.attrib.get("type") == "delivery":
        return DisclosurePolicy(target, deliver=True, transient=transient)

    properties = root.find("properties")
    terms: list[Term] = []
    group_conditions = []
    if properties is not None:
        from repro.policy.groups import parse_group_condition

        for group_node in properties.findall("groupCond"):
            if group_node.text and group_node.text.strip():
                group_conditions.append(
                    parse_group_condition(group_node.text.strip())
                )
        for certificate in properties.findall("certificate"):
            cert_type = certificate.attrib.get("targetCertType")
            if not cert_type:
                raise PolicyParseError(
                    "certificate element lacks targetCertType"
                )
            kind = _MARKER_TO_KIND.get(
                certificate.attrib.get("kind", "credential")
            )
            if kind is None:
                raise PolicyParseError(
                    f"unknown term kind {certificate.attrib.get('kind')!r}"
                )
            conditions = tuple(
                XPathCondition((node.text or "").strip())
                for node in certificate.findall("certCond")
                if node.text and node.text.strip()
            )
            terms.append(Term(kind, cert_type, conditions))
    if not terms:
        raise PolicyParseError(
            f"disclosure policy for {target.name!r} has no certificate terms"
        )
    return DisclosurePolicy(
        target,
        tuple(terms),
        transient=transient,
        group_conditions=tuple(group_conditions),
    )


def policy_from_xml(text: str) -> DisclosurePolicy:
    """Parse a policy from its XML string form."""
    return policy_from_element(parse_xml(text))
