"""Disclosure-policy rules.

Policies take one of two forms (paper Section 4.1):

1. ``R <- T1, T2, ..., Tn`` — the resource ``R`` is released once every
   term is satisfied by disclosed credentials;
2. ``R <- DELIV`` — a *delivery rule*: ``R`` can be released as is.

A resource may be protected by several alternative rules; satisfying
any one of them suffices (that disjunction is what multiedges in the
negotiation tree represent).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.policy.groups import GroupCondition
from repro.policy.terms import RTerm, Term

__all__ = ["DisclosurePolicy"]

_policy_ids = itertools.count(1)


def _next_policy_id() -> str:
    return f"pol-{next(_policy_ids)}"


@dataclass(frozen=True)
class DisclosurePolicy:
    """One disclosure rule for a resource."""

    target: RTerm
    terms: tuple[Term, ...] = ()
    deliver: bool = False
    policy_id: str = field(default_factory=_next_policy_id, compare=False)
    #: Transient policies are "specific to the VO", created on the fly
    #: before a negotiation (paper Section 5.1) and discarded after it.
    transient: bool = False
    #: Conditions over the *set* of credentials satisfying the policy
    #: (the paper's planned "group conditions" extension, §8).
    group_conditions: tuple[GroupCondition, ...] = ()

    def __post_init__(self) -> None:
        if self.deliver and self.terms:
            raise PolicyError(
                f"delivery rule for {self.target.name!r} must not carry terms"
            )
        if not self.deliver and not self.terms:
            raise PolicyError(
                f"policy for {self.target.name!r} needs terms or DELIV"
            )
        if self.deliver and self.group_conditions:
            raise PolicyError(
                f"delivery rule for {self.target.name!r} cannot carry "
                "group conditions"
            )

    @classmethod
    def delivery(cls, resource: str, transient: bool = False) -> "DisclosurePolicy":
        return cls(RTerm(resource), deliver=True, transient=transient)

    @classmethod
    def rule(
        cls, resource: str, *terms: Term, transient: bool = False
    ) -> "DisclosurePolicy":
        return cls(RTerm(resource), tuple(terms), transient=transient)

    @property
    def is_delivery(self) -> bool:
        return self.deliver

    def dsl(self) -> str:
        """Render back to the paper's rule notation."""
        if self.deliver:
            return f"{self.target.dsl()} <- DELIV"
        body = ", ".join(term.dsl() for term in self.terms)
        rendered = f"{self.target.dsl()} <- {body}"
        if self.group_conditions:
            group = ", ".join(cond.dsl() for cond in self.group_conditions)
            rendered += f" | group({group})"
        return rendered

    def __str__(self) -> str:
        return self.dsl()
