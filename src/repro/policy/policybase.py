"""A party's disclosure-policy database.

"Each party adopts its own Trust-X set of disclosure policies to
regulate release of local information (that is, credentials or
policies) and access to services" (paper Section 4.1).  The policy base
stores, per protected resource, an ordered list of *alternative* rules
— the policy-evaluation phase sends "an alternative policy, if any"
after a counterpart reports non-possession.

Policies marked *transient* model the VO-specific rules "specified ...
on the fly before starting the TN" (Section 5.1) and can be cleared en
masse after the negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.policy.parser import parse_policies
from repro.policy.rules import DisclosurePolicy

__all__ = ["PolicyBase"]


@dataclass
class PolicyBase:
    """Ordered alternatives per resource name."""

    owner: str
    _by_resource: dict[str, list[DisclosurePolicy]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Resources released by a delivery rule, maintained across
        # add/remove/clear_transient so `is_freely_deliverable` — hit
        # once per disclosure decision — is a set lookup, not a scan.
        self._delivery_resources: set[str] = {
            resource
            for resource, alternatives in self._by_resource.items()
            if any(policy.is_delivery for policy in alternatives)
        }

    @classmethod
    def of(
        cls, owner: str, policies: Iterable[DisclosurePolicy] = ()
    ) -> "PolicyBase":
        base = cls(owner)
        for policy in policies:
            base.add(policy)
        return base

    @classmethod
    def from_dsl(cls, owner: str, text: str, transient: bool = False) -> "PolicyBase":
        """Build a policy base from a block of DSL rules."""
        return cls.of(owner, parse_policies(text, transient=transient))

    # -- mutation ---------------------------------------------------------------

    def add(self, policy: DisclosurePolicy) -> None:
        self._by_resource.setdefault(policy.target.name, []).append(policy)
        if policy.is_delivery:
            self._delivery_resources.add(policy.target.name)

    def add_dsl(self, text: str, transient: bool = False) -> list[DisclosurePolicy]:
        """Parse and add DSL rules; returns the added policies."""
        policies = parse_policies(text, transient=transient)
        for policy in policies:
            self.add(policy)
        return policies

    def remove(self, policy: DisclosurePolicy) -> None:
        resource = policy.target.name
        alternatives = self._by_resource.get(resource, [])
        if policy in alternatives:
            alternatives.remove(policy)
            if not alternatives:
                del self._by_resource[resource]
            self._refresh_delivery(resource)

    def clear_transient(self) -> int:
        """Drop every transient policy; returns how many were dropped."""
        dropped = 0
        for resource in list(self._by_resource):
            kept = [
                policy
                for policy in self._by_resource[resource]
                if not policy.transient
            ]
            dropped += len(self._by_resource[resource]) - len(kept)
            if kept:
                self._by_resource[resource] = kept
            else:
                del self._by_resource[resource]
            self._refresh_delivery(resource)
        return dropped

    def _refresh_delivery(self, resource: str) -> None:
        if any(
            policy.is_delivery
            for policy in self._by_resource.get(resource, [])
        ):
            self._delivery_resources.add(resource)
        else:
            self._delivery_resources.discard(resource)

    # -- lookup ------------------------------------------------------------------

    # -- XML round-trip -----------------------------------------------------------

    def to_xml(self) -> str:
        """Serialize the whole base as one ``<policyBase>`` document.

        The prototype kept each party's disclosure policies in its
        database; this document form is what gets persisted (and what
        :class:`~repro.services.tn_service.TNWebService` mirrors into
        its store).
        """
        from xml.etree import ElementTree as ET

        from repro.policy.xmlcodec import policy_to_element
        from repro.xmlutil.canonical import canonicalize

        root = ET.Element("policyBase", {"owner": self.owner})
        for resource in self.resources():
            for policy in self._by_resource[resource]:
                root.append(policy_to_element(policy))
        return canonicalize(root)

    @classmethod
    def from_xml(cls, text: str) -> "PolicyBase":
        from repro.errors import PolicyParseError
        from repro.policy.xmlcodec import policy_from_element
        from repro.xmlutil.canonical import parse_xml

        root = parse_xml(text)
        if root.tag != "policyBase":
            raise PolicyParseError(
                f"expected <policyBase>, found <{root.tag}>"
            )
        owner = root.attrib.get("owner")
        if not owner:
            raise PolicyParseError("policyBase lacks an owner attribute")
        base = cls(owner)
        for node in root:
            base.add(policy_from_element(node))
        return base

    def policies_for(self, resource: str) -> list[DisclosurePolicy]:
        """Alternative policies protecting ``resource``, in order."""
        return list(self._by_resource.get(resource, []))

    def protects(self, resource: str) -> bool:
        return resource in self._by_resource

    def is_freely_deliverable(self, resource: str) -> bool:
        """True when a delivery rule releases ``resource`` as is."""
        return resource in self._delivery_resources

    def is_unprotected(self, resource: str) -> bool:
        """No policy at all mentions the resource.

        Following the principle that unmentioned local credentials are
        not protected by specific rules, the negotiation agent treats
        them as deliverable; sensitive credentials must carry an
        explicit policy."""
        return resource not in self._by_resource

    def resources(self) -> list[str]:
        return sorted(self._by_resource)

    def __iter__(self) -> Iterator[DisclosurePolicy]:
        for alternatives in self._by_resource.values():
            yield from alternatives

    def __len__(self) -> int:
        return sum(len(alts) for alts in self._by_resource.values())
