"""XACML encoding of disclosure policies.

The paper's second planned extension (§8): "the support of XACML
policies, which would make our integrated toolkit portable and
interoperable with a number of other VO Management tools."

This codec maps X-TNL disclosure policies onto an XACML-2.0-shaped
document and back:

- the protected resource becomes the policy ``<Target>`` (a
  ``ResourceMatch`` on ``urn:repro:resource-id``);
- each alternative rule for the resource becomes one ``<Rule
  Effect="Permit">``;
- each term becomes an ``<Apply FunctionId="...and">`` conjunction of
  subject-attribute tests: the credential type via
  ``urn:repro:credential-type`` and each attribute condition via a
  comparison function over ``urn:repro:attr:<name>``;
- delivery rules become condition-less Permit rules;
- group conditions are carried as XACML *extension functions* under
  ``urn:repro:group:<form>`` (legal per the XACML extensibility
  model), so a repro-aware PDP can evaluate them and any other PDP can
  at least transport them.

The translation is *structural*: round-tripping preserves targets,
term kinds/names, attribute conditions, and group conditions.  Raw
XPath conditions are carried verbatim in an ``urn:repro:xpath``
extension function.
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.errors import PolicyParseError
from repro.policy.conditions import (
    AnyAttributeCondition,
    AttributeCondition,
    XPathCondition,
)
from repro.policy.groups import parse_group_condition
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import RTerm, Term, TermKind
from repro.xmlutil.canonical import canonicalize, parse_xml

__all__ = ["policies_to_xacml", "policies_from_xacml"]

_XACML_NS = "urn:oasis:names:tc:xacml:2.0:policy:schema:os"
_FN = "urn:oasis:names:tc:xacml:1.0:function"
_RESOURCE_ID = "urn:repro:resource-id"
_CRED_TYPE = "urn:repro:credential-type"
_ATTR_PREFIX = "urn:repro:attr:"
_GROUP_PREFIX = "urn:repro:group"
_XPATH_FN = "urn:repro:xpath"
_TERM_KIND = "reproTermKind"

_OP_TO_FUNCTION = {
    "=": f"{_FN}:string-equal",
    "!=": "urn:repro:fn:string-not-equal",
    "<": f"{_FN}:double-less-than",
    "<=": f"{_FN}:double-less-than-or-equal",
    ">": f"{_FN}:double-greater-than",
    ">=": f"{_FN}:double-greater-than-or-equal",
}
_FUNCTION_TO_OP = {fn: op for op, fn in _OP_TO_FUNCTION.items()}


def _apply(function_id: str) -> ET.Element:
    node = ET.Element("Apply")
    node.set("FunctionId", function_id)
    return node


def _attribute_value(text: str) -> ET.Element:
    node = ET.Element("AttributeValue")
    node.text = text
    return node


def _designator(attribute_id: str) -> ET.Element:
    node = ET.Element("SubjectAttributeDesignator")
    node.set("AttributeId", attribute_id)
    return node


def _term_to_apply(term: Term) -> ET.Element:
    conjunction = _apply(f"{_FN}:and")
    conjunction.set(_TERM_KIND, term.kind.value)
    type_check = _apply(f"{_FN}:string-equal")
    type_check.append(_attribute_value(term.name))
    type_check.append(_designator(_CRED_TYPE))
    conjunction.append(type_check)
    for condition in term.conditions:
        if isinstance(condition, AttributeCondition):
            check = _apply(_OP_TO_FUNCTION[condition.op])
            value = condition.value
            text = f"{value:g}" if isinstance(value, float) else str(value)
            check.append(_attribute_value(text))
            check.append(_designator(f"{_ATTR_PREFIX}{condition.attribute}"))
            conjunction.append(check)
        elif isinstance(condition, AnyAttributeCondition):
            check = _apply("urn:repro:fn:any-attribute-equal")
            check.append(_attribute_value(condition.value))
            conjunction.append(check)
        elif isinstance(condition, XPathCondition):
            check = _apply(_XPATH_FN)
            check.append(_attribute_value(condition.expression))
            conjunction.append(check)
        else:  # pragma: no cover - condition union is closed
            raise PolicyParseError(
                f"cannot encode condition {condition!r} as XACML"
            )
    return conjunction


def policies_to_xacml(
    resource: str, alternatives: list[DisclosurePolicy]
) -> str:
    """Encode the alternative policies protecting ``resource``.

    Produces one ``<Policy>`` with permit-overrides rule combining —
    matching X-TNL's semantics where satisfying any alternative
    releases the resource.
    """
    if not alternatives:
        raise PolicyParseError(f"no policies given for {resource!r}")
    for policy in alternatives:
        if policy.target.name != resource:
            raise PolicyParseError(
                f"policy for {policy.target.name!r} does not protect "
                f"{resource!r}"
            )
    root = ET.Element("Policy")
    root.set("xmlns", _XACML_NS)
    root.set("PolicyId", f"urn:repro:policyset:{resource}")
    root.set(
        "RuleCombiningAlgId",
        "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:"
        "permit-overrides",
    )
    target = ET.SubElement(root, "Target")
    resources = ET.SubElement(target, "Resources")
    resource_node = ET.SubElement(resources, "Resource")
    match = ET.SubElement(resource_node, "ResourceMatch")
    match.set("MatchId", f"{_FN}:string-equal")
    match.append(_attribute_value(resource))
    designator = ET.SubElement(match, "ResourceAttributeDesignator")
    designator.set("AttributeId", _RESOURCE_ID)

    for index, policy in enumerate(alternatives):
        rule = ET.SubElement(root, "Rule")
        rule.set("RuleId", f"urn:repro:rule:{resource}:{index}")
        rule.set("Effect", "Permit")
        if policy.is_delivery:
            continue  # a Permit rule with no condition: always applies
        condition = ET.SubElement(rule, "Condition")
        conjunction = _apply(f"{_FN}:and")
        for term in policy.terms:
            conjunction.append(_term_to_apply(term))
        for group in policy.group_conditions:
            check = _apply(f"{_GROUP_PREFIX}:{type(group).__name__}")
            check.append(_attribute_value(group.dsl()))
            conjunction.append(check)
        condition.append(conjunction)
    return canonicalize(root)


def _apply_to_term(node: ET.Element) -> Term:
    kind = TermKind(node.attrib.get(_TERM_KIND, "credential"))
    children = list(node)
    if not children:
        raise PolicyParseError("term Apply node has no children")
    type_check = children[0]
    name_node = type_check.find("AttributeValue")
    if name_node is None or not name_node.text:
        raise PolicyParseError("term Apply lacks a credential-type value")
    name = name_node.text
    conditions = []
    for check in children[1:]:
        function_id = check.attrib.get("FunctionId", "")
        value_node = check.find("AttributeValue")
        value_text = (
            value_node.text if value_node is not None and value_node.text
            else ""
        )
        if function_id == _XPATH_FN:
            conditions.append(XPathCondition(value_text))
            continue
        if function_id == "urn:repro:fn:any-attribute-equal":
            conditions.append(AnyAttributeCondition(value_text))
            continue
        op = _FUNCTION_TO_OP.get(function_id)
        if op is None:
            raise PolicyParseError(
                f"unknown XACML function {function_id!r}"
            )
        designator = check.find("SubjectAttributeDesignator")
        if designator is None:
            raise PolicyParseError("comparison Apply lacks a designator")
        attribute_id = designator.attrib.get("AttributeId", "")
        if not attribute_id.startswith(_ATTR_PREFIX):
            raise PolicyParseError(
                f"unexpected attribute id {attribute_id!r}"
            )
        attribute = attribute_id[len(_ATTR_PREFIX):]
        value: object = value_text
        try:
            value = float(value_text)
        except ValueError:
            pass
        conditions.append(AttributeCondition(attribute, op, value))
    return Term(kind, name, tuple(conditions))


def policies_from_xacml(text: str) -> tuple[str, list[DisclosurePolicy]]:
    """Decode an XACML document back to (resource, alternatives)."""
    root = parse_xml(text)
    # The document carries a default xmlns; strip it so tag matching is
    # uniform whether or not the producer namespaced the elements.
    for node in root.iter():
        if isinstance(node.tag, str) and node.tag.startswith("{"):
            node.tag = node.tag.split("}", 1)[1]
    if root.tag != "Policy":
        raise PolicyParseError(f"expected an XACML Policy, got {root.tag!r}")

    def find(parent: ET.Element, tag: str):
        return parent.find(tag)

    def findall(parent: ET.Element, tag: str):
        return parent.findall(tag)

    target = find(root, "Target")
    if target is None:
        raise PolicyParseError("XACML policy lacks a Target")
    resource_value = None
    for resources in findall(target, "Resources"):
        for resource_node in findall(resources, "Resource"):
            for match in findall(resource_node, "ResourceMatch"):
                value = find(match, "AttributeValue")
                if value is not None and value.text:
                    resource_value = value.text
    if not resource_value:
        raise PolicyParseError("XACML Target names no resource")

    alternatives: list[DisclosurePolicy] = []
    for rule in findall(root, "Rule"):
        if rule.attrib.get("Effect") != "Permit":
            continue
        condition = find(rule, "Condition")
        if condition is None:
            alternatives.append(DisclosurePolicy.delivery(resource_value))
            continue
        conjunction = find(condition, "Apply")
        if conjunction is None:
            raise PolicyParseError("Rule Condition lacks an Apply")
        terms = []
        groups = []
        for child in conjunction:
            function_id = child.attrib.get("FunctionId", "")
            if function_id.startswith(f"{_GROUP_PREFIX}:"):
                value = find(child, "AttributeValue")
                groups.append(
                    parse_group_condition(value.text if value is not None else "")
                )
            else:
                terms.append(_apply_to_term(child))
        alternatives.append(
            DisclosurePolicy(
                RTerm(resource_value),
                tuple(terms),
                group_conditions=tuple(groups),
            )
        )
    if not alternatives:
        raise PolicyParseError("XACML policy contains no Permit rules")
    return resource_value, alternatives
