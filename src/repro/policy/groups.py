"""Group conditions over sets of disclosed credentials.

The paper's first planned extension (§8): "enhancing the Trust-X
language to support the specification of policies with group
conditions".  A plain term constrains one credential; a *group
condition* constrains the whole set of credentials disclosed to satisfy
a policy — e.g. "at least two distinct certification issuers" or
"the advertised capacities must sum to 100 TB".

Group conditions attach to a :class:`DisclosurePolicy` and are written
after the body with a ``| group(...)`` suffix::

    Contract <- QualityCert, QualityCert | group(distinct_issuers >= 2)
    Pool <- Storage QoS Certificate, Storage QoS Certificate
        | group(sum(capacityTB) >= 100)

Supported forms:

- ``count(CredType) op N`` — how many disclosed credentials have the
  given type (``count(*)`` counts all of them);
- ``distinct_issuers op N`` — number of distinct issuers;
- ``same_issuer`` — all disclosed credentials share one issuer;
- ``sum(attr) op N`` / ``min(attr) op N`` / ``max(attr) op N`` —
  aggregates over a numeric attribute (credentials lacking the
  attribute are ignored; an empty aggregate fails).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence, Union

from repro.credentials.credential import Credential
from repro.errors import ConditionError, PolicyParseError

__all__ = [
    "GroupCondition",
    "CountCondition",
    "DistinctIssuersCondition",
    "SameIssuerCondition",
    "AggregateCondition",
    "parse_group_condition",
]


def _compare(op: str, left: float, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ConditionError(f"unknown operator {op!r}")


@dataclass(frozen=True)
class CountCondition:
    """``count(CredType) op N``; ``*`` counts every disclosed credential."""

    cred_type: str
    op: str
    value: float

    def evaluate(self, credentials: Sequence[Credential]) -> bool:
        if self.cred_type == "*":
            count = len(credentials)
        else:
            count = sum(
                1 for cred in credentials if cred.cred_type == self.cred_type
            )
        return _compare(self.op, count, self.value)

    def dsl(self) -> str:
        return f"count({self.cred_type}){self.op}{self.value:g}"


@dataclass(frozen=True)
class DistinctIssuersCondition:
    """``distinct_issuers op N``."""

    op: str
    value: float

    def evaluate(self, credentials: Sequence[Credential]) -> bool:
        issuers = {cred.issuer for cred in credentials}
        return _compare(self.op, len(issuers), self.value)

    def dsl(self) -> str:
        return f"distinct_issuers{self.op}{self.value:g}"


@dataclass(frozen=True)
class SameIssuerCondition:
    """``same_issuer`` — every credential from one issuer."""

    def evaluate(self, credentials: Sequence[Credential]) -> bool:
        return len({cred.issuer for cred in credentials}) <= 1

    def dsl(self) -> str:
        return "same_issuer"


@dataclass(frozen=True)
class AggregateCondition:
    """``sum|min|max(attr) op N`` over a numeric attribute."""

    function: str  # "sum" | "min" | "max"
    attribute: str
    op: str
    value: float

    def evaluate(self, credentials: Sequence[Credential]) -> bool:
        values = []
        for cred in credentials:
            if cred.has_attribute(self.attribute):
                comparable = cred.attribute(self.attribute).comparable()
                if isinstance(comparable, float):
                    values.append(comparable)
        if not values:
            return False
        if self.function == "sum":
            aggregate = sum(values)
        elif self.function == "min":
            aggregate = min(values)
        else:
            aggregate = max(values)
        return _compare(self.op, aggregate, self.value)

    def dsl(self) -> str:
        return f"{self.function}({self.attribute}){self.op}{self.value:g}"


GroupCondition = Union[
    CountCondition,
    DistinctIssuersCondition,
    SameIssuerCondition,
    AggregateCondition,
]

_COUNT_RE = re.compile(
    r"^count\(\s*(?P<type>\*|[A-Za-z_][\w .:-]*?)\s*\)\s*"
    r"(?P<op><=|>=|!=|=|<|>)\s*(?P<value>-?\d+(?:\.\d+)?)$"
)
_DISTINCT_RE = re.compile(
    r"^distinct_issuers\s*(?P<op><=|>=|!=|=|<|>)\s*(?P<value>-?\d+(?:\.\d+)?)$"
)
_AGG_RE = re.compile(
    r"^(?P<fn>sum|min|max)\(\s*(?P<attr>[A-Za-z_][\w.-]*)\s*\)\s*"
    r"(?P<op><=|>=|!=|=|<|>)\s*(?P<value>-?\d+(?:\.\d+)?)$"
)


def parse_group_condition(text: str) -> GroupCondition:
    """Parse one group-condition clause of the ``| group(...)`` suffix."""
    text = text.strip()
    if text == "same_issuer":
        return SameIssuerCondition()
    match = _COUNT_RE.match(text)
    if match:
        return CountCondition(
            match.group("type").strip(),
            match.group("op"),
            float(match.group("value")),
        )
    match = _DISTINCT_RE.match(text)
    if match:
        return DistinctIssuersCondition(
            match.group("op"), float(match.group("value"))
        )
    match = _AGG_RE.match(text)
    if match:
        return AggregateCondition(
            match.group("fn"),
            match.group("attr"),
            match.group("op"),
            float(match.group("value")),
        )
    raise PolicyParseError(f"invalid group condition {text!r}")
