"""X-TNL disclosure policies (paper Section 4.1, Figs. 6-7).

Disclosure policies are logic rules ``R <- T1, ..., Tn`` (or the
delivery rule ``R <- DELIV``) whose terms constrain the credentials the
counterpart must disclose.  This subpackage provides:

- :mod:`terms` — ``Term`` (credential / variable / concept) and
  ``RTerm`` (resource),
- :mod:`conditions` — the condition language evaluated against
  credential attributes (including raw XPath conditions),
- :mod:`rules` — the ``DisclosurePolicy`` rule itself,
- :mod:`parser` — the text DSL used throughout the paper's examples,
- :mod:`xmlcodec` — the XML wire format of Figs. 6-7,
- :mod:`compliance` — policy satisfaction against an X-Profile,
- :mod:`policybase` — a party's policy database with alternatives.
"""

from repro.policy.compliance import ComplianceChecker, PolicySatisfaction
from repro.policy.conditions import (
    AnyAttributeCondition,
    AttributeCondition,
    Condition,
    XPathCondition,
)
from repro.policy.parser import parse_policy, parse_policies
from repro.policy.policybase import PolicyBase
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import RTerm, Term
from repro.policy.groups import GroupCondition, parse_group_condition
from repro.policy.xacml import policies_from_xacml, policies_to_xacml
from repro.policy.xmlcodec import policy_from_xml, policy_to_xml

__all__ = [
    "Term",
    "RTerm",
    "Condition",
    "AttributeCondition",
    "AnyAttributeCondition",
    "XPathCondition",
    "DisclosurePolicy",
    "parse_policy",
    "parse_policies",
    "policy_to_xml",
    "policy_from_xml",
    "GroupCondition",
    "parse_group_condition",
    "policies_to_xacml",
    "policies_from_xacml",
    "ComplianceChecker",
    "PolicySatisfaction",
    "PolicyBase",
]
