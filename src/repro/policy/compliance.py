"""Policy satisfaction against an X-Profile.

"A disclosure policy is satisfied if the stated credentials are
disclosed to the policy sender and the policy conditions (if any)
evaluated as true" (paper Section 4.1).  The compliance checker
determines, on the receiving side, whether the local X-Profile *could*
satisfy a policy — choosing, for each term, the least sensitive local
credential that fits (the preference Algorithm 1 encodes).

Concept terms (``@Concept``) are resolved through an optional
``concept_resolver`` callback wired to the ontology layer, keeping the
policy package independent from :mod:`repro.ontology`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.credentials.credential import Credential
from repro.credentials.profile import XProfile
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import Term, TermKind

__all__ = ["TermSatisfaction", "PolicySatisfaction", "ComplianceChecker"]

#: Maps a concept name to the local credentials implementing it,
#: ordered by preference.  Provided by the ontology layer.
ConceptResolver = Callable[[str, XProfile], list[Credential]]


@dataclass(frozen=True)
class TermSatisfaction:
    """One term satisfied by one chosen local credential."""

    term: Term
    credential: Credential
    #: Every local credential that could satisfy the term, preference
    #: order; alternatives matter when the chosen one is itself too
    #: sensitive to release under local policy.
    alternatives: tuple[Credential, ...]


@dataclass(frozen=True)
class PolicySatisfaction:
    """A full assignment of local credentials to a policy's terms."""

    policy: DisclosurePolicy
    assignments: tuple[TermSatisfaction, ...]

    def credentials(self) -> list[Credential]:
        return [assignment.credential for assignment in self.assignments]

    def credential_ids(self) -> list[str]:
        return [cred.cred_id for cred in self.credentials()]


class ComplianceChecker:
    """Checks whether a profile can satisfy policies and terms."""

    def __init__(
        self, concept_resolver: Optional[ConceptResolver] = None
    ) -> None:
        self._concept_resolver = concept_resolver

    # -- term-level -----------------------------------------------------------

    def candidates(self, term: Term, profile: XProfile) -> list[Credential]:
        """Local credentials able to satisfy ``term``, preferred first."""
        if term.kind == TermKind.CREDENTIAL:
            pool = profile.by_type(term.name)
            return [cred for cred in pool if term.matches_credential(cred)]
        if term.kind == TermKind.VARIABLE:
            # The profile memoizes its sensitivity order until the next
            # mutation, so the per-term sort disappears on repeats.
            pool = profile.sorted_by_sensitivity()
            return [cred for cred in pool if term.matches_credential(cred)]
        # Concept term: resolve through the ontology, then re-check the
        # term's conditions on each candidate.
        if self._concept_resolver is None:
            return []
        resolved = self._concept_resolver(term.name, profile)
        return [cred for cred in resolved if term.conditions_hold(cred)]

    def satisfies_term(self, term: Term, profile: XProfile) -> bool:
        return bool(self.candidates(term, profile))

    # -- policy-level -----------------------------------------------------------

    #: Bound on the combination search used for group conditions.
    MAX_GROUP_COMBINATIONS = 512

    def satisfy(
        self, policy: DisclosurePolicy, profile: XProfile
    ) -> Optional[PolicySatisfaction]:
        """Choose one credential per term, or None when any term fails.

        Terms are independent (each names its own requirement), so a
        greedy least-sensitive choice per term is optimal for the
        sensitivity preference.  With group conditions the greedy
        assignment may violate the set-level constraint, so a bounded
        search over candidate combinations runs instead, in preference
        order (least sensitive combinations first).
        """
        if policy.is_delivery:
            return PolicySatisfaction(policy, ())
        per_term: list[list[Credential]] = []
        for term in policy.terms:
            candidates = self.candidates(term, profile)
            if not candidates:
                return None
            per_term.append(candidates)
        if not policy.group_conditions:
            assignments = tuple(
                TermSatisfaction(term, candidates[0], tuple(candidates))
                for term, candidates in zip(policy.terms, per_term)
            )
            return PolicySatisfaction(policy, assignments)
        return self._satisfy_with_groups(policy, per_term)

    def _satisfy_with_groups(
        self,
        policy: DisclosurePolicy,
        per_term: list[list[Credential]],
    ) -> Optional[PolicySatisfaction]:
        import itertools

        examined = 0
        for combination in itertools.product(*per_term):
            examined += 1
            if examined > self.MAX_GROUP_COMBINATIONS:
                return None
            # Each term must be satisfied by its own credential:
            # "QualityCert, QualityCert" means two distinct certificates.
            ids = [cred.cred_id for cred in combination]
            if len(ids) != len(set(ids)):
                continue
            if all(
                cond.evaluate(combination)
                for cond in policy.group_conditions
            ):
                assignments = tuple(
                    TermSatisfaction(term, chosen, tuple(candidates))
                    for term, chosen, candidates in zip(
                        policy.terms, combination, per_term
                    )
                )
                return PolicySatisfaction(policy, assignments)
        return None

    def first_satisfiable(
        self, policies: list[DisclosurePolicy], profile: XProfile
    ) -> Optional[PolicySatisfaction]:
        """First satisfiable policy among alternatives, in given order."""
        for policy in policies:
            satisfaction = self.satisfy(policy, profile)
            if satisfaction is not None:
                return satisfaction
        return None
