"""Command-line interface: ``python -m repro <command>``.

Commands:

``demo``
    Run the paper's formation negotiation (Example 2) and print the
    transcript.

``lifecycle``
    Run the full Aircraft Optimization VO lifecycle and print a phase
    summary.

``fig9``
    Reproduce the Fig. 9 join-time series and print paper-vs-measured.

``negotiate RESOURCE``
    Negotiate a resource of the aircraft scenario between two named
    parties under a chosen strategy.

``faults``
    Run the fault-tolerant negotiation demo: a seeded fault storm and
    a service crash with checkpoint recovery
    (``examples/fault_tolerant_negotiation.py`` runs the same flow).

``policy``
    Parse policy DSL from stdin or ``--text`` and print the DSL,
    X-TNL XML, and XACML forms.

``tree``
    Run the formation negotiation and render its negotiation tree
    (``--format ascii|dot``).

``trace``
    Run an instrumented VO formation (default 8 roles, parallel) and
    render the merged trace as an ASCII timeline; ``--json PATH``
    additionally writes Chrome Trace Event JSON for
    ``chrome://tracing`` / Perfetto.

``soak``
    Run the seeded chaos soak (``repro.hardening.soak``): negotiations
    under mixed adversarial faults and overload bursts, with the
    invariant report printed (and optionally written with
    ``--report PATH``).  ``--shards N --kill-every K`` deploys a
    sharded TN cluster and interleaves kill/restart drills (with
    ``--wal-dir`` for durable journals and ``--audit-log`` for a
    verified hash-chained event log).  Exits non-zero when any
    invariant is violated.

``scenarios``
    Run the open-world scenario engine and/or the exemplar experiments
    (two-agent strategy matrix, 5-agent scarcity market, cheater
    isolation on the real TN path) through the
    :class:`~repro.scenario.runner.WorkloadRunner`, printing each
    report's summary and optionally writing one combined seeded JSON
    report (``--report PATH``).  Exits non-zero when any invariant is
    violated or any asserted finding does not hold.

``audit PATH``
    Verify a hash-chained audit log (``repro.obs.audit``): recompute
    the event hash chain and every Merkle epoch commitment.  Exits
    non-zero when verification fails.

``aio``
    Drive N concurrent negotiation sessions against one TN Web service
    through the asyncio driver and, for comparison, through a
    thread-pool of sync clients — printing peak in-flight sessions,
    per-session simulated latency, and wall-clock throughput for each.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.negotiation.engine import negotiate
    from repro.scenario import build_aircraft_scenario
    from repro.scenario.aircraft import ROLE_DESIGN_PORTAL

    scenario = build_aircraft_scenario()
    scenario.initiator.define_vo_policies(scenario.contract)
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    result = negotiate(
        scenario.member("AerospaceCo").agent,
        scenario.initiator.agent,
        role.membership_resource(scenario.contract.vo_name),
        at=scenario.contract.created_at,
    )
    print(result.summary())
    for event in result.transcript:
        print(f"  [{event.phase:8}] {event.actor:12} {event.action:18} "
              f"{event.detail}")
    return 0 if result.success else 1


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    from repro.scenario import build_aircraft_scenario
    from repro.vo.organization import VirtualOrganization

    scenario = build_aircraft_scenario()
    vo = VirtualOrganization(
        contract=scenario.contract, initiator=scenario.initiator
    )
    vo.identify()
    print(f"identification: {len(scenario.contract.roles)} roles defined")
    reports = vo.form(
        scenario.host.registry, scenario.host.directory(),
        at=scenario.contract.created_at,
    )
    for role, report in reports.items():
        print(f"formation: {role:18} -> {report.admitted}")
    vo.begin_operation()
    print("operation: VO is running")
    tickets = vo.dissolve(at=scenario.contract.created_at)
    print(f"dissolution: {len(tickets)} participation tickets issued")
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.scenario import build_aircraft_scenario
    from repro.scenario.aircraft import ROLE_DESIGN_PORTAL
    from repro.services.tn_client import TNClient

    def run_join(with_negotiation: bool) -> float:
        scenario = build_aircraft_scenario()
        edition = scenario.initiator_edition
        edition.create_vo(scenario.contract)
        edition.enable_trust_negotiation()
        outcome = edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=with_negotiation,
        )
        return outcome.elapsed_ms

    def run_tn() -> float:
        scenario = build_aircraft_scenario()
        edition = scenario.initiator_edition
        edition.create_vo(scenario.contract)
        service = edition.enable_trust_negotiation()
        role = scenario.contract.role(ROLE_DESIGN_PORTAL)
        client = TNClient(
            scenario.transport, service.url,
            scenario.member("AerospaceCo").agent,
        )
        with scenario.transport.clock.measure() as stopwatch:
            client.negotiate(
                role.membership_resource(scenario.contract.vo_name)
            )
        return stopwatch.elapsed_ms

    join_tn = run_join(True)
    join = run_join(False)
    tn = run_tn()
    print("Fig. 9 — Join execution times (simulated ms)")
    print(f"  join with trust negotiation : {join_tn:8.0f}   (paper ~4000)")
    print(f"  join                        : {join:8.0f}   (paper ~3000)")
    print(f"  trust negotiation alone     : {tn:8.0f}")
    print(f"  overhead ratio              : {join_tn / join:8.3f}"
          f"   (paper ~1.27-1.33)")
    return 0


def _cmd_negotiate(args: argparse.Namespace) -> int:
    from repro.negotiation.engine import negotiate
    from repro.negotiation.strategies import Strategy
    from repro.scenario import build_aircraft_scenario

    scenario = build_aircraft_scenario()
    scenario.initiator.define_vo_policies(scenario.contract)
    parties = dict(scenario.members)

    def agent_of(name: str):
        if name == "AircraftCo":
            return scenario.initiator.agent
        if name in parties:
            return parties[name].agent
        print(f"unknown party {name!r}; choose from "
              f"{['AircraftCo'] + sorted(parties)}", file=sys.stderr)
        raise SystemExit(2)

    requester = agent_of(args.requester)
    controller = agent_of(args.controller)
    strategy = Strategy.parse(args.strategy)
    requester.strategy = strategy
    controller.strategy = strategy
    result = negotiate(requester, controller, args.resource,
                       at=scenario.contract.created_at)
    print(result.summary())
    if args.verbose:
        for event in result.transcript:
            print(f"  [{event.phase:8}] {event.actor:12} "
                  f"{event.action:18} {event.detail}")
    return 0 if result.success else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.demo import run_demo

    return run_demo(seed=args.seed, strategy=args.strategy)


def _cmd_policy(args: argparse.Namespace) -> int:
    from repro.policy.parser import parse_policies
    from repro.policy.xacml import policies_to_xacml
    from repro.policy.xmlcodec import policy_to_xml

    text = args.text if args.text else sys.stdin.read()
    policies = parse_policies(text)
    if not policies:
        print("no policies parsed", file=sys.stderr)
        return 1
    for policy in policies:
        print(f"DSL:   {policy.dsl()}")
        if args.xml:
            print(f"X-TNL: {policy_to_xml(policy)}")
    if args.xacml:
        by_resource: dict[str, list] = {}
        for policy in policies:
            by_resource.setdefault(policy.target.name, []).append(policy)
        for resource, alternatives in by_resource.items():
            print(f"XACML [{resource}]:")
            print(policies_to_xacml(resource, alternatives))
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    from repro.negotiation.engine import negotiate
    from repro.negotiation.render import render_ascii, render_dot
    from repro.scenario import build_aircraft_scenario
    from repro.scenario.aircraft import ROLE_DESIGN_PORTAL

    scenario = build_aircraft_scenario()
    scenario.initiator.define_vo_policies(scenario.contract)
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    result = negotiate(
        scenario.member("AerospaceCo").agent,
        scenario.initiator.agent,
        role.membership_resource(scenario.contract.vo_name),
        at=scenario.contract.created_at,
    )
    renderer = render_dot if args.format == "dot" else render_ascii
    print(renderer(result.tree))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.api import formation_workload, obs

    obs.enable(obs.ObsConfig())
    fixture = formation_workload(args.roles)
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(
        fixture.plans(), parallel=not args.serial
    )
    obs.disable()

    spans = obs.spans()
    formations = [s for s in spans if s.name == "vo.formation"]
    if not formations:
        print("no vo.formation span recorded", file=sys.stderr)
        return 1
    formation = formations[0]
    members = [s for s in spans if s.trace_id == formation.trace_id]
    report = obs.validate_trace(members)

    print(f"formation: {len(outcome.joined)}/{len(fixture.plans())} joined "
          f"({outcome.mode}, critical path {outcome.critical_path_ms:.0f} ms,"
          f" serial {outcome.serial_ms:.0f} ms)")
    print(f"trace: {report['spans']} spans, {len(report['roots'])} root(s), "
          f"{len(report['orphans'])} orphan(s)")
    print()
    print(obs.render_timeline(members))
    if args.events:
        print()
        for event in obs.events():
            print(f"  #{event.seq:<4} {event.name:28} "
                  f"{event.virtual_ms if event.virtual_ms is not None else '-':>8} "
                  f"{event.fields}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(obs.to_chrome_trace(members), handle, indent=1)
        print(f"\nchrome trace written to {args.json}")
    if len(report["roots"]) != 1 or report["orphans"]:
        print("trace is not coherent", file=sys.stderr)
        return 1
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    import os

    from repro.scenario.runner import WorkloadRunner

    wal_dir = args.wal_dir
    if args.shards > 0 and wal_dir:
        os.makedirs(wal_dir, exist_ok=True)
    report = WorkloadRunner().run(
        "soak",
        seed=args.seed,
        negotiations=args.negotiations,
        roles=args.roles,
        cluster_shards=args.shards,
        node_kill_every=args.kill_every,
        retract_every=args.retract_every,
        wal_dir=wal_dir if args.shards > 0 else None,
        audit_log_path=args.audit_log,
        asyncio_mode=args.asyncio_mode,
    )
    print(report.summary())
    for violation in report.violations:
        print(f"  VIOLATION [{violation.invariant}] {violation.detail}",
              file=sys.stderr)
    for line in report.unhandled:
        print(f"  UNHANDLED {line}", file=sys.stderr)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.scenario.market import MarketConfig
    from repro.scenario.runner import WorkloadRunner

    runner = WorkloadRunner()
    quick = args.quick
    combined: dict = {"seed": args.seed, "experiments": {}}
    ok = True

    def section(label: str, report) -> dict:
        nonlocal ok
        ok = ok and report.ok
        verdict = "PASS" if report.ok else "FAIL"
        if hasattr(report, "summary"):
            print(f"{label}: {report.summary()}")
        else:
            findings = getattr(report, "findings", {})
            held = sum(1 for value in findings.values() if value)
            print(f"{label}: {verdict} — {held}/{len(findings)} "
                  "findings hold")
        for name, value in sorted(
            getattr(report, "findings", {}).items()
        ):
            if not value:
                print(f"  FINDING FAILED [{label}] {name}",
                      file=sys.stderr)
        scenario = getattr(report, "scenario", report)
        for violation in getattr(scenario, "violations", []):
            print(f"  VIOLATION [{violation.invariant}] "
                  f"{violation.detail}", file=sys.stderr)
        return report.to_dict()

    run_all = args.preset == "all"
    if run_all or args.preset == "matrix":
        report = runner.run(
            "two-agent-matrix",
            seed=args.seed,
            rounds=15 if quick else 40,
        )
        combined["experiments"]["twoAgentMatrix"] = section(
            "two-agent matrix", report
        )
    if run_all or args.preset == "scarcity":
        rounds = 40 if quick else 100
        rush_start = (rounds * 3) // 5
        report = runner.run(
            "scarcity",
            seed=args.seed,
            rounds=rounds,
            rush_start=rush_start,
            rush_end=rush_start + max(2, rounds // 10),
        )
        combined["experiments"]["scarcity"] = section(
            "scarcity market", report
        )
    if run_all or args.preset == "cheater-isolation":
        report = runner.run(
            "cheater-isolation",
            seed=args.seed,
            rounds=12 if quick else 20,
            cluster_shards=args.shards,
        )
        combined["experiments"]["cheaterIsolation"] = section(
            "cheater isolation", report
        )
    if run_all or args.preset == "open-world":
        rounds = (
            args.rounds if args.rounds is not None
            else (12 if quick else 24)
        )
        rush_start = rounds // 2
        report = runner.run(
            "scenario",
            seed=args.seed,
            rounds=rounds,
            agents=args.agents,
            cheaters=args.cheaters,
            seats=args.seats,
            churn_every=max(2, rounds // 6),
            rush_start=rush_start,
            rush_end=rush_start + max(1, rounds // 8),
            cluster_shards=args.shards,
            # Scarce market with strong gossip, so cheaters keep
            # finding victims until reputation isolates them.
            market=MarketConfig(
                capacity_per_provider=2,
                demand_per_seeker=4,
                gossip_scale=0.75,
            ),
        )
        combined["openWorld"] = section("open-world scenario", report)

    combined["ok"] = ok
    if not combined["experiments"]:
        del combined["experiments"]
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(combined, indent=2, sort_keys=True))
        print(f"report written to {args.report}")
    return 0 if ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    import json

    from repro.obs.audit import verify_audit_log

    report = verify_audit_log(args.path)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_aio(args: argparse.Namespace) -> int:
    import asyncio
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.scenario.workloads import capacity_workload
    from repro.services.aio import (
        AioSimTransport, AioTNClient, AioTNWebService,
    )
    from repro.services.tn_client import TNClient
    from repro.services.tn_service import TNWebService
    from repro.services.transport import SimTransport
    from repro.storage.document_store import XMLDocumentStore

    fixture = capacity_workload(min(args.sessions, 32))
    at = fixture.negotiation_time()

    def requester(index: int):
        return fixture.requesters[index % len(fixture.requesters)]

    rows = []

    def run_threads() -> None:
        transport = SimTransport()
        service = TNWebService(
            fixture.controller, transport,
            XMLDocumentStore("cli-aio-threads"), "urn:tn-aio-demo",
        )

        def one(index: int) -> float:
            with transport.clock_branch() as branch:
                begin = branch.elapsed_ms
                result = TNClient(
                    transport, "urn:tn-aio-demo", requester(index)
                ).negotiate(fixture.resource, at=at)
                assert result.success, result.failure_detail
                return branch.elapsed_ms - begin

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.workers) as pool:
            deltas = list(pool.map(one, range(args.sessions)))
        rows.append((
            f"thread-pool ({args.workers} workers)",
            service.in_flight_peak, max(deltas),
            time.perf_counter() - started,
        ))
        service.close()

    def run_asyncio() -> None:
        transport = AioSimTransport()
        service = AioTNWebService(
            fixture.controller, transport,
            XMLDocumentStore("cli-aio-loop"), "urn:tn-aio-demo",
        )

        async def one(index: int) -> float:
            with transport.clock_branch() as branch:
                begin = branch.elapsed_ms
                client = AioTNClient(
                    transport, "urn:tn-aio-demo", requester(index)
                )
                result = await client.negotiate(fixture.resource, at=at)
                assert result.success, result.failure_detail
                return branch.elapsed_ms - begin

        async def gather() -> list:
            return list(await asyncio.gather(
                *(one(index) for index in range(args.sessions))
            ))

        started = time.perf_counter()
        deltas = asyncio.run(gather())
        rows.append((
            "asyncio event loop",
            service.in_flight_peak, max(deltas),
            time.perf_counter() - started,
        ))
        service.close()

    run_threads()
    run_asyncio()
    print(f"{args.sessions} concurrent sessions against one TN service")
    print(f"{'driver':32} {'peak in-flight':>14} {'sim ms max':>11} "
          f"{'wall s':>8}")
    for label, peak, sim_max, seconds in rows:
        print(f"{label:32} {peak:>14} {sim_max:>11.1f} {seconds:>8.3f}")
    ratio = rows[1][1] / max(1, rows[0][1])
    print(f"capacity ratio (asyncio / threads): {ratio:.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trust-X trust negotiation for Virtual Organizations "
        "(paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the Example 2 negotiation") \
        .set_defaults(func=_cmd_demo)
    sub.add_parser("lifecycle", help="run the full VO lifecycle") \
        .set_defaults(func=_cmd_lifecycle)
    sub.add_parser("fig9", help="reproduce the Fig. 9 series") \
        .set_defaults(func=_cmd_fig9)

    negotiate_parser = sub.add_parser(
        "negotiate", help="negotiate a scenario resource"
    )
    negotiate_parser.add_argument("resource")
    negotiate_parser.add_argument("--requester", default="AerospaceCo")
    negotiate_parser.add_argument("--controller", default="AircraftCo")
    negotiate_parser.add_argument("--strategy", default="standard")
    negotiate_parser.add_argument("-v", "--verbose", action="store_true")
    negotiate_parser.set_defaults(func=_cmd_negotiate)

    faults_parser = sub.add_parser(
        "faults", help="run the fault-tolerant negotiation demo"
    )
    faults_parser.add_argument("--seed", type=int, default=7,
                               help="fault-plan seed (default 7)")
    faults_parser.add_argument("--strategy", default="standard")
    faults_parser.set_defaults(func=_cmd_faults)

    policy_parser = sub.add_parser(
        "policy", help="parse policy DSL and print wire forms"
    )
    policy_parser.add_argument("--text", help="policy DSL (default: stdin)")
    policy_parser.add_argument("--xml", action="store_true",
                               help="print the X-TNL XML form")
    policy_parser.add_argument("--xacml", action="store_true",
                               help="print the XACML form")
    policy_parser.set_defaults(func=_cmd_policy)

    tree_parser = sub.add_parser(
        "tree", help="render the Fig. 2 negotiation tree"
    )
    tree_parser.add_argument("--format", choices=("ascii", "dot"),
                             default="ascii")
    tree_parser.set_defaults(func=_cmd_tree)

    trace_parser = sub.add_parser(
        "trace", help="run an instrumented formation and show its trace"
    )
    trace_parser.add_argument("--roles", type=int, default=8,
                              help="formation size (default 8)")
    trace_parser.add_argument("--serial", action="store_true",
                              help="join serially instead of in parallel")
    trace_parser.add_argument("--events", action="store_true",
                              help="also print the event log")
    trace_parser.add_argument("--json", metavar="PATH",
                              help="write Chrome Trace Event JSON to PATH")
    trace_parser.set_defaults(func=_cmd_trace)

    soak_parser = sub.add_parser(
        "soak", help="run the chaos-soak invariant harness"
    )
    soak_parser.add_argument("--seed", type=int, default=7,
                             help="soak seed (default 7)")
    soak_parser.add_argument("--negotiations", type=int, default=2000,
                             help="negotiations to drive (default 2000)")
    soak_parser.add_argument("--roles", type=int, default=4,
                             help="contract roles (default 4)")
    soak_parser.add_argument("--report", metavar="PATH",
                             help="write the JSON invariant report to PATH")
    soak_parser.add_argument("--shards", type=int, default=0,
                             help="deploy N TN shards behind the service "
                             "URL (0 = single service, the default)")
    soak_parser.add_argument("--kill-every", type=int, default=0,
                             help="run a kill/restart drill every Nth "
                             "negotiation (requires --shards)")
    soak_parser.add_argument("--retract-every", type=int, default=0,
                             help="revoke the requester's credential "
                             "mid-negotiation every Nth negotiation and "
                             "assert the exchange fails (0 disables)")
    soak_parser.add_argument("--wal-dir", metavar="DIR",
                             help="directory for per-shard WAL files "
                             "(default: in-memory journals)")
    soak_parser.add_argument("--audit-log", metavar="PATH",
                             help="write a hash-chained audit log to PATH "
                             "and verify it as an invariant")
    soak_parser.add_argument("--asyncio", dest="asyncio_mode",
                             action="store_true",
                             help="run the asyncio-native soak: concurrent "
                             "task lanes, hedged starts, and health-aware "
                             "shard routing (see repro.hardening.aio_soak)")
    soak_parser.set_defaults(func=_cmd_soak)

    scenarios_parser = sub.add_parser(
        "scenarios",
        help="run the open-world scenario engine and experiments",
    )
    scenarios_parser.add_argument("--seed", type=int, default=42,
                                  help="scenario seed (default 42)")
    scenarios_parser.add_argument(
        "--preset", default="all",
        choices=("all", "open-world", "matrix", "scarcity",
                 "cheater-isolation"),
        help="which workload(s) to run (default: all)")
    scenarios_parser.add_argument("--agents", type=int, default=12,
                                  help="open-world population size "
                                  "(default 12)")
    scenarios_parser.add_argument("--cheaters", type=int, default=1,
                                  help="cheating providers in the "
                                  "open-world population (default 1)")
    scenarios_parser.add_argument("--seats", type=int, default=3,
                                  help="VO seats filled through TN "
                                  "(default 3)")
    scenarios_parser.add_argument("--rounds", type=int, default=None,
                                  help="open-world rounds (default 24, "
                                  "12 with --quick)")
    scenarios_parser.add_argument("--shards", type=int, default=0,
                                  help="TN shards behind the service URL "
                                  "(0 = single service, the default)")
    scenarios_parser.add_argument("--quick", action="store_true",
                                  help="smaller rounds for CI smoke runs")
    scenarios_parser.add_argument("--report", metavar="PATH",
                                  help="write the combined JSON report "
                                  "to PATH")
    scenarios_parser.set_defaults(func=_cmd_scenarios)

    audit_parser = sub.add_parser(
        "audit", help="verify a hash-chained audit log"
    )
    audit_parser.add_argument("path", help="audit log file to verify")
    audit_parser.add_argument("--json", action="store_true",
                              help="print the verification report as JSON")
    audit_parser.set_defaults(func=_cmd_audit)

    aio_parser = sub.add_parser(
        "aio", help="compare asyncio vs thread-pool session capacity"
    )
    aio_parser.add_argument("--sessions", type=int, default=64,
                            help="concurrent sessions to open (default 64)")
    aio_parser.add_argument("--workers", type=int, default=8,
                            help="thread-pool width (default 8)")
    aio_parser.set_defaults(func=_cmd_aio)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
