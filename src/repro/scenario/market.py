"""The resource market the scenario engine drives every round.

Agents trade units of a generic resource: *providers* post capacity,
*seekers* post demand, and every matched pair haggles over the price
with strategy-specific opening margins and concession rates — the
Greedy/Fair/Patient/Adaptive/Broker strategy set of the agent-market
experiments this engine reproduces.  A deal transfers money from the
seeker to the provider; honest delivery additionally hands the seeker
the units and realizes its valuation as consumption surplus.

Cheaters close deals like a Fair trader and then defect on delivery:
they keep the payment and deliver nothing.  The victim observes the
defection and every trader (plus any extra observer ledgers, e.g. the
VO initiator's) hears about it through gossip — decentralized
reputation built on :class:`~repro.vo.reputation.ReputationSystem`,
one ledger per observer.  Once a counterpart's score drops below the
isolation threshold in a trader's own ledger, that trader refuses to
deal with it: detection needs no central authority, only local
observation plus gossip.

Everything is pure and seeded: the same ``rng`` and trader state always
produce the same round outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.errors import VOError
from repro.vo.reputation import ReputationEvent, ReputationSystem

__all__ = [
    "AgentStrategy",
    "MarketConfig",
    "Trader",
    "Deal",
    "Defection",
    "HaggleOutcome",
    "RoundOutcome",
    "make_trader",
    "haggle",
    "run_market_round",
    "record_defection",
]


class AgentStrategy(Enum):
    """Market-haggling strategy of one agent.

    (Distinct from the *trust-negotiation* strategy enum
    :class:`repro.negotiation.strategies.Strategy`, which governs
    credential disclosure, not prices.)
    """

    GREEDY = "greedy"
    FAIR = "fair"
    PATIENT = "patient"
    ADAPTIVE = "adaptive"
    BROKER = "broker"
    #: Haggles like FAIR (to close deals) but defects on delivery.
    CHEATER = "cheater"

    @classmethod
    def parse(cls, text: str) -> "AgentStrategy":
        try:
            return cls(text.strip().lower())
        except ValueError as exc:
            names = ", ".join(s.value for s in cls)
            raise VOError(
                f"unknown agent strategy {text!r}; choose from {names}"
            ) from exc


#: (opening margin over reservation, per-step concession as a fraction
#: of the remaining bid/ask gap, idle steps before conceding).
_PARAMS: dict[AgentStrategy, tuple[float, float, int]] = {
    AgentStrategy.GREEDY: (0.90, 0.03, 0),
    AgentStrategy.FAIR: (0.25, 0.30, 0),
    AgentStrategy.PATIENT: (0.60, 0.10, 4),
    AgentStrategy.ADAPTIVE: (0.20, 0.20, 0),
    AgentStrategy.BROKER: (0.15, 0.25, 0),
    AgentStrategy.CHEATER: (0.25, 0.30, 0),
}


@dataclass(frozen=True, kw_only=True)
class MarketConfig:
    """Knobs of the resource market.  Everything derives from the
    engine seed; the config itself holds no randomness."""

    #: Reference unit price all reservations derive from.
    base_price: float = 10.0
    #: Seeker valuation = ``base_price * (1 + valuation_margin)``.
    valuation_margin: float = 0.4
    #: Provider cost = ``base_price * (1 - cost_margin)``.
    cost_margin: float = 0.2
    #: Cost inflation per unit of excess demand/supply ratio, capped at
    #: +50% — scarcity (and rush hour) raises the provider floor.
    scarcity_pressure: float = 0.5
    #: Units each provider can deliver per round.
    capacity_per_provider: int = 3
    #: Units each seeker wants per round (before the rush multiplier).
    demand_per_seeker: int = 2
    #: Demand multiplier during a rush-hour round.
    rush_multiplier: int = 3
    #: Haggling steps before a pair gives up.
    haggle_steps: int = 8
    #: Residual bid/ask gap (as a fraction of ``base_price``) close
    #: enough to split the difference and close.
    accept_window: float = 0.05
    #: Per-round reservation jitter (fraction, seeded).
    price_jitter: float = 0.1
    initial_wealth: float = 100.0
    #: Probability a CHEATER defects on a closed deal's delivery.
    cheat_probability: float = 1.0
    #: A trader refuses counterparts scoring below this in its ledger.
    isolation_threshold: float = 0.3
    #: Reputation scale of the victim's CONTRACT_VIOLATION record.
    defection_scale: float = 1.0
    #: Scale of the gossiped record every other observer applies.
    gossip_scale: float = 0.5
    #: Scale of the SUCCESSFUL_NEGOTIATION record both parties of an
    #: honestly-settled deal apply to each other.
    reward_scale: float = 1.0

    def seeker_valuation(self) -> float:
        return self.base_price * (1.0 + self.valuation_margin)

    def provider_cost(self, scarcity: float = 1.0) -> float:
        return self.base_price * (1.0 - self.cost_margin) * scarcity

    def scarcity_factor(self, demand: int, supply: int) -> float:
        ratio = demand / max(1, supply)
        return 1.0 + min(0.5, self.scarcity_pressure * max(0.0, ratio - 1.0))


@dataclass
class Trader:
    """One market participant: strategy, wealth, and its own
    decentralized reputation ledger over everyone else."""

    name: str
    strategy: AgentStrategy
    provider: bool
    wealth: float
    #: This trader's private view of everyone else's reputation.
    ledger: ReputationSystem = field(default_factory=ReputationSystem)
    #: ADAPTIVE's running market-price estimate (others ignore it).
    price_estimate: float = 0.0
    resources: float = 0.0
    deals_closed: int = 0
    deals_failed: int = 0
    defections_committed: int = 0
    defections_suffered: int = 0

    @property
    def cheater(self) -> bool:
        return self.strategy is AgentStrategy.CHEATER

    def trusts(self, other: "Trader | str", threshold: float) -> bool:
        name = other if isinstance(other, str) else other.name
        return self.ledger.score(name) >= threshold


def make_trader(
    name: str,
    strategy: AgentStrategy,
    *,
    provider: bool,
    config: Optional[MarketConfig] = None,
) -> Trader:
    """A fresh trader; ADAPTIVE starts with a deliberately wrong price
    estimate (high as provider, low as seeker) so convergence toward
    the market price is observable."""
    config = config or MarketConfig()
    estimate = config.base_price
    if strategy is AgentStrategy.ADAPTIVE:
        estimate = config.base_price * (1.6 if provider else 0.4)
    return Trader(
        name=name,
        strategy=strategy,
        provider=provider,
        wealth=config.initial_wealth,
        price_estimate=estimate,
    )


@dataclass(frozen=True)
class HaggleOutcome:
    closed: bool
    price: Optional[float]
    steps: int
    final_ask: float
    final_bid: float


@dataclass(frozen=True)
class Deal:
    provider: str
    seeker: str
    units: int
    price: float
    defected: bool


@dataclass(frozen=True)
class Defection:
    offender: str
    victim: str
    amount: float


@dataclass
class RoundOutcome:
    """Everything one market round produced, for the report and obs."""

    deals: list[Deal] = field(default_factory=list)
    defections: list[Defection] = field(default_factory=list)
    failed: int = 0
    demand_units: int = 0
    supply_units: int = 0
    unserved_units: int = 0
    #: Matches refused because one side's ledger isolated the other.
    isolation_refusals: int = 0
    value_created: float = 0.0

    @property
    def mean_price(self) -> Optional[float]:
        if not self.deals:
            return None
        return sum(deal.price for deal in self.deals) / len(self.deals)

    @property
    def served_units(self) -> int:
        return sum(deal.units for deal in self.deals if not deal.defected)


def opening_ask(trader: Trader, cost: float) -> float:
    """The price a provider advertises before haggling (the seekers'
    deterministic ranking key)."""
    if trader.strategy is AgentStrategy.ADAPTIVE:
        return max(cost, trader.price_estimate)
    margin, _, _ = _PARAMS[trader.strategy]
    return cost * (1.0 + margin)


def haggle(
    provider: Trader,
    seeker: Trader,
    *,
    cost: float,
    valuation: float,
    config: MarketConfig,
) -> HaggleOutcome:
    """One bounded haggling session; updates ADAPTIVE estimates.

    The ask converges down (never below ``cost``), the bid converges up
    (never above ``valuation``); the deal closes when they cross or the
    residual gap fits the accept window.  GREEDY barely concedes,
    PATIENT sits out its first steps, ADAPTIVE opens at its learned
    estimate — which is what makes Fair/Adaptive pairs close while
    Greedy/Patient pairs deadlock.
    """
    p_margin, p_concede, p_patience = _PARAMS[provider.strategy]
    s_margin, s_concede, s_patience = _PARAMS[seeker.strategy]
    if provider.strategy is AgentStrategy.ADAPTIVE:
        ask = max(cost, provider.price_estimate)
    else:
        ask = cost * (1.0 + p_margin)
    if seeker.strategy is AgentStrategy.ADAPTIVE:
        bid = min(valuation, seeker.price_estimate)
    else:
        bid = valuation * (1.0 - s_margin)
    window = config.accept_window * config.base_price

    closed, price, steps = False, None, 0
    for step in range(config.haggle_steps):
        gap = ask - bid
        if gap <= window:
            closed, price, steps = True, (ask + bid) / 2.0, step
            break
        if step >= p_patience:
            ask = max(cost, ask - p_concede * gap)
        if step >= s_patience:
            bid = min(valuation, bid + s_concede * (ask - bid))
        steps = step + 1
    if not closed and ask - bid <= window:
        closed, price = True, (ask + bid) / 2.0

    # Adaptive learning: closed deals anchor the estimate on the
    # price; failed ones pull it toward the counterpart's last word.
    if provider.strategy is AgentStrategy.ADAPTIVE:
        target = price if closed else bid
        provider.price_estimate += 0.3 * (target - provider.price_estimate)
    if seeker.strategy is AgentStrategy.ADAPTIVE:
        target = price if closed else ask
        seeker.price_estimate += 0.3 * (target - seeker.price_estimate)
    return HaggleOutcome(
        closed=closed, price=price, steps=steps,
        final_ask=ask, final_bid=bid,
    )


def record_defection(
    traders: Iterable[Trader],
    offender: str,
    victim: str,
    config: MarketConfig,
    *,
    detail: str = "",
    extra_observers: Iterable[ReputationSystem] = (),
) -> None:
    """Propagate one observed defection through every ledger.

    The victim records a full-scale ``CONTRACT_VIOLATION``; every other
    trader (except the offender, who does not indict itself) and every
    extra observer (e.g. the VO initiator) applies the gossiped record
    at ``gossip_scale``.  Deltas are strictly negative, which is what
    the monotone-down invariant checks.
    """
    for trader in traders:
        if trader.name == offender:
            continue
        scale = (
            config.defection_scale if trader.name == victim
            else config.defection_scale * config.gossip_scale
        )
        trader.ledger.record(
            offender, ReputationEvent.CONTRACT_VIOLATION,
            detail=detail, scale=scale,
        )
    for ledger in extra_observers:
        ledger.record(
            offender, ReputationEvent.CONTRACT_VIOLATION,
            detail=detail, scale=config.defection_scale * config.gossip_scale,
        )


def run_market_round(
    traders: list[Trader],
    *,
    rng: random.Random,
    config: MarketConfig,
    rush: bool = False,
    extra_observers: Iterable[ReputationSystem] = (),
) -> RoundOutcome:
    """Clear one market round: match, haggle, settle, gossip."""
    outcome = RoundOutcome()
    providers = [t for t in traders if t.provider]
    seekers = [t for t in traders if not t.provider]
    if not providers or not seekers:
        return outcome

    per_seeker = config.demand_per_seeker * (
        config.rush_multiplier if rush else 1
    )
    capacity = {p.name: config.capacity_per_provider for p in providers}
    outcome.demand_units = per_seeker * len(seekers)
    outcome.supply_units = config.capacity_per_provider * len(providers)
    scarcity = config.scarcity_factor(
        outcome.demand_units, outcome.supply_units
    )
    valuation_base = config.seeker_valuation()
    cost_base = config.provider_cost(scarcity)

    order = sorted(seekers, key=lambda t: t.name)
    rng.shuffle(order)
    for seeker in order:
        remaining = per_seeker
        jitter = 1.0 + rng.uniform(-config.price_jitter, config.price_jitter)
        valuation = valuation_base * jitter
        # Best-reputation-first, then cheapest advertised ask, then name.
        ranked = sorted(
            providers,
            key=lambda p: (
                -seeker.ledger.score(p.name),
                opening_ask(p, cost_base),
                p.name,
            ),
        )
        for provider in ranked:
            if remaining <= 0:
                break
            if capacity[provider.name] <= 0:
                continue
            if not seeker.trusts(provider, config.isolation_threshold):
                outcome.isolation_refusals += 1
                continue
            if not provider.trusts(seeker, config.isolation_threshold):
                outcome.isolation_refusals += 1
                continue
            cost = cost_base * (
                1.0 + rng.uniform(-config.price_jitter, config.price_jitter)
            )
            haggled = haggle(
                provider, seeker,
                cost=cost, valuation=valuation, config=config,
            )
            if not haggled.closed:
                provider.deals_failed += 1
                seeker.deals_failed += 1
                outcome.failed += 1
                continue
            units = min(remaining, capacity[provider.name])
            assert haggled.price is not None
            total = haggled.price * units
            defected = (
                provider.cheater
                and rng.random() < config.cheat_probability
            )
            seeker.wealth -= total
            provider.wealth += total
            provider.deals_closed += 1
            seeker.deals_closed += 1
            capacity[provider.name] -= units
            remaining -= units
            outcome.deals.append(Deal(
                provider=provider.name, seeker=seeker.name,
                units=units, price=haggled.price, defected=defected,
            ))
            if defected:
                provider.defections_committed += 1
                seeker.defections_suffered += 1
                outcome.defections.append(Defection(
                    offender=provider.name, victim=seeker.name,
                    amount=total,
                ))
                record_defection(
                    traders, provider.name, seeker.name, config,
                    detail=f"kept {total:.2f} without delivering "
                           f"{units} units",
                    extra_observers=extra_observers,
                )
            else:
                seeker.resources += units
                realized = valuation * units
                seeker.wealth += realized
                outcome.value_created += realized
                seeker.ledger.record(
                    provider.name,
                    ReputationEvent.SUCCESSFUL_NEGOTIATION,
                    scale=config.reward_scale,
                )
                provider.ledger.record(
                    seeker.name,
                    ReputationEvent.SUCCESSFUL_NEGOTIATION,
                    scale=config.reward_scale,
                )
        outcome.unserved_units += remaining
    return outcome
