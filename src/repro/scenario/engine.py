"""The open-world VO scenario engine.

:func:`run_scenario` runs a large agent population through a full VO
lifecycle on top of the real service stack: every admission to a VO
seat is a genuine trust negotiation driven through ``TNClient →
ResilientTransport → SimTransport → TNWebService`` (or a
:class:`~repro.cluster.ShardedTNService` when ``cluster_shards > 0``),
with the protocol guard and admission controller active — the engine
never bypasses the service path.

Each round:

1. **Market** — providers and seekers haggle per their strategies
   (:mod:`repro.scenario.market`); rush-hour rounds multiply demand
   open-loop.  Cheaters defect on delivery; victims and gossip update
   every decentralized reputation ledger, including the initiator's.
2. **Expulsion** — seated members whose reputation (in the initiator's
   ledger) fell below the isolation threshold are expelled, and their
   seat is re-covered through a fresh trust negotiation.
3. **Churn** — every ``churn_every`` rounds a seeded member departs;
   the vacancy is TN-gated the same way.  Expelled cheaters attempt
   one Byzantine re-admission with a stolen profile (wrong key), which
   the service must reject.

After the last round the VO dissolves: seats are released, simulated
time advances past the session TTL, and the reaper closes every
abandoned session.  The invariant checker then reuses the soak's
service-level checks (:func:`repro.hardening.soak.check_service_invariants`)
and adds the scenario-level promises: isolated cheaters stop winning
admissions, reputation is monotone-down on observed defection and
never recovers past the threshold, dissolution releases all sessions,
every admission went through a successful TN, and the market's money
ledger balances.

Everything is seeded: the same :class:`ScenarioConfig` always produces
the same :class:`ScenarioReport` (byte-identical JSON).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.errors import ReproError
from repro.hardening.config import HardeningConfig
from repro.hardening.soak import InvariantViolation, check_service_invariants
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    gauge as obs_gauge,
    span as obs_span,
)
from repro.scenario.market import (
    AgentStrategy,
    MarketConfig,
    run_market_round,
)
from repro.scenario.population import Population, seat_name
from repro.trust import TrustEvent
from repro.vo.reputation import (
    INITIAL_SCORE,
    ReputationEvent,
    ReputationSystem,
)

__all__ = ["ScenarioConfig", "ScenarioReport", "RoundState", "run_scenario"]

#: Negotiation timestamp (credential validity reference), like the
#: other fixtures.
_AT = datetime(2010, 3, 1)


@dataclass(frozen=True, kw_only=True)
class ScenarioConfig:
    """Knobs of one open-world scenario run.  Everything derives from
    ``seed``; the same config always produces the same report."""

    seed: int = 42
    rounds: int = 24
    agents: int = 12
    #: Leading agents that cheat on delivery (always providers).
    cheaters: int = 1
    #: VO seats; the initial formation fills them all through TN.
    seats: int = 3
    market: MarketConfig = field(default_factory=MarketConfig)
    #: First round (inclusive) of the open-loop demand spike, or None.
    rush_start: Optional[int] = None
    #: First round after the spike (exclusive end), or None.
    rush_end: Optional[int] = None
    #: Every Nth round a seeded member departs (0 disables churn).
    churn_every: int = 6
    #: Candidates tried per vacancy before the seat stays open a round.
    candidates_per_vacancy: int = 3
    #: TN shards behind the service URL (0 = single service).
    cluster_shards: int = 0
    #: Cluster-level shed cap on aggregate in-flight sessions
    #: (requires ``cluster_shards``; None disables).
    cluster_max_in_flight: Optional[int] = None
    hardening: HardeningConfig = field(default_factory=HardeningConfig)
    #: Client-side deadline budget per call (simulated ms).
    deadline_ms: float = 60_000.0
    #: Reputation decay half-life in rounds (None disables decay).
    #: With decay on, scores drift toward ``decay_target`` every round:
    #: isolation can be earned back after quiet rounds — and re-lost.
    decay_half_life: Optional[float] = None
    #: Score every ledger decays toward (newcomer-neutral by default).
    decay_target: float = INITIAL_SCORE
    #: Every Nth round the authority revokes a seated cheater's seat
    #: credential and retracts it through the trust bus — the
    #: ``revoked_credential`` cheater move (0 disables it).
    revoke_cheater_every: int = 0

    def __post_init__(self) -> None:
        if self.agents < self.seats + 2:
            raise ValueError(
                f"need agents >= seats + 2 ({self.agents} agents, "
                f"{self.seats} seats)"
            )
        if self.rounds < 1:
            raise ValueError(f"need >= 1 round, got {self.rounds}")
        if self.decay_half_life is not None and self.decay_half_life <= 0:
            raise ValueError(
                f"decay half-life must be positive, got {self.decay_half_life}"
            )
        if not 0.0 <= self.decay_target <= 1.0:
            raise ValueError(
                f"decay target must be in [0, 1], got {self.decay_target}"
            )

    def is_rush(self, round_index: int) -> bool:
        if self.rush_start is None:
            return False
        end = self.rush_end if self.rush_end is not None else self.rounds
        return self.rush_start <= round_index < end


@dataclass(frozen=True)
class RoundState:
    """Per-round market + membership state (also published as obs
    gauges under ``scenario.*``)."""

    round: int
    rush: bool
    deals: int
    failed: int
    defections: int
    mean_price: Optional[float]
    demand_units: int
    supply_units: int
    unserved_units: int
    isolation_refusals: int
    admissions: int
    departures: int
    expulsions: int

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "rush": self.rush,
            "deals": self.deals,
            "failed": self.failed,
            "defections": self.defections,
            "meanPrice": (
                round(self.mean_price, 4)
                if self.mean_price is not None else None
            ),
            "demandUnits": self.demand_units,
            "supplyUnits": self.supply_units,
            "unservedUnits": self.unserved_units,
            "isolationRefusals": self.isolation_refusals,
            "admissions": self.admissions,
            "departures": self.departures,
            "expulsions": self.expulsions,
        }


@dataclass
class CheaterRecord:
    """One cheater's arc: when it was detected, and how its admission
    wins collapse afterwards."""

    name: str
    detection_round: Optional[int] = None
    wins_before_detection: int = 0
    wins_after_detection: int = 0
    deals_closed: int = 0
    defections: int = 0
    expelled_round: Optional[int] = None
    final_reputation: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "detectionRound": self.detection_round,
            "winsBeforeDetection": self.wins_before_detection,
            "winsAfterDetection": self.wins_after_detection,
            "dealsClosed": self.deals_closed,
            "defections": self.defections,
            "expelledRound": self.expelled_round,
            "finalReputation": round(self.final_reputation, 4),
        }


@dataclass
class ScenarioReport:
    """Counters and verdicts of one scenario run; ``ok`` is the
    verdict."""

    seed: int
    rounds: int
    agents: int
    cheaters: int
    seats: int
    deals_closed: int = 0
    deals_failed: int = 0
    defections: int = 0
    unserved_units: int = 0
    isolation_refusals: int = 0
    value_created: float = 0.0
    tn_attempts: int = 0
    tn_successes: int = 0
    client_errors: dict[str, int] = field(default_factory=dict)
    admissions_total: int = 0
    departures: int = 0
    expulsions: int = 0
    replacements: int = 0
    byzantine_attempts: int = 0
    byzantine_successes: int = 0
    #: Mid-run credential retractions (the revoked_credential move).
    credential_retractions: int = 0
    #: Reputation-decay retraction events (score crossed below the
    #: isolation threshold by decay alone).
    decay_retractions: int = 0
    reaped: int = 0
    internal_errors: int = 0
    guard_validated: int = 0
    guard_rejected: int = 0
    admission_offered: int = 0
    admission_admitted: int = 0
    admission_shed: int = 0
    admission_expired: int = 0
    cluster_sheds: int = 0
    admission_wins: dict[str, int] = field(default_factory=dict)
    cheater_records: list[CheaterRecord] = field(default_factory=list)
    round_states: list[RoundState] = field(default_factory=list)
    final_wealth: dict[str, float] = field(default_factory=dict)
    initiator_view: dict[str, float] = field(default_factory=dict)
    elapsed_sim_ms: float = 0.0
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "rounds": self.rounds,
            "agents": self.agents,
            "cheaters": self.cheaters,
            "seats": self.seats,
            "market": {
                "dealsClosed": self.deals_closed,
                "dealsFailed": self.deals_failed,
                "defections": self.defections,
                "unservedUnits": self.unserved_units,
                "isolationRefusals": self.isolation_refusals,
                "valueCreated": round(self.value_created, 4),
            },
            "tn": {
                "attempts": self.tn_attempts,
                "successes": self.tn_successes,
                "clientErrors": dict(self.client_errors),
            },
            "membership": {
                "admissions": self.admissions_total,
                "departures": self.departures,
                "expulsions": self.expulsions,
                "replacements": self.replacements,
                "byzantineAttempts": self.byzantine_attempts,
                "byzantineSuccesses": self.byzantine_successes,
                "winsByAgent": dict(sorted(self.admission_wins.items())),
            },
            "trust": {
                "credentialRetractions": self.credential_retractions,
                "decayRetractions": self.decay_retractions,
            },
            "service": {
                "reaped": self.reaped,
                "internalErrors": self.internal_errors,
                "guardValidated": self.guard_validated,
                "guardRejected": self.guard_rejected,
                "admissionOffered": self.admission_offered,
                "admissionAdmitted": self.admission_admitted,
                "admissionShed": self.admission_shed,
                "admissionExpired": self.admission_expired,
                "clusterSheds": self.cluster_sheds,
            },
            "cheaterRecords": [r.to_dict() for r in self.cheater_records],
            "roundStates": [s.to_dict() for s in self.round_states],
            "finalWealth": {
                name: round(value, 4)
                for name, value in sorted(self.final_wealth.items())
            },
            "initiatorView": {
                name: round(value, 4)
                for name, value in sorted(self.initiator_view.items())
            },
            "elapsedSimMs": round(self.elapsed_sim_ms, 3),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        detected = sum(
            1 for record in self.cheater_records
            if record.detection_round is not None
        )
        return (
            f"{verdict}: {self.agents} agents, {self.rounds} rounds — "
            f"{self.deals_closed} deals, {self.defections} defections, "
            f"{detected}/{len(self.cheater_records)} cheaters isolated, "
            f"{self.admissions_total} TN-gated admissions "
            f"({self.departures} departures, {self.expulsions} "
            f"expulsions); {len(self.violations)} invariant violations"
        )


def run_scenario(config: Optional[ScenarioConfig] = None) -> ScenarioReport:
    """Run the open-world scenario and return its invariant report."""
    # Imported here for the same reason as in the soak: the service
    # layers import repro.hardening.config at module load, so pulling
    # them at this module's top level would close an import cycle via
    # repro.scenario's package __init__.
    from repro.services.resilience import ResilientTransport, RetryPolicy
    from repro.services.tn_client import TNClient
    from repro.services.tn_service import TNWebService
    from repro.services.transport import LatencyModel, SimTransport
    from repro.storage.document_store import XMLDocumentStore

    config = config or ScenarioConfig()
    rng = random.Random(config.seed)
    report = ScenarioReport(
        seed=config.seed, rounds=config.rounds, agents=config.agents,
        cheaters=config.cheaters, seats=config.seats,
    )
    population = Population.build(
        agents=config.agents, cheaters=config.cheaters,
        seats=config.seats, market=config.market,
    )
    traders = population.traders
    initial_wealth_total = sum(t.wealth for t in traders)
    initiator_ledger = ReputationSystem()
    cheater_records = {
        trader.name: CheaterRecord(name=trader.name)
        for trader in population.cheaters()
    }
    report.cheater_records = [
        cheater_records[t.name] for t in population.cheaters()
    ]

    # The same compressed latency model as the soak: the engine
    # measures lifecycle invariants over many rounds, not Fig. 9
    # absolute times.
    transport = SimTransport(model=LatencyModel(
        network_rtt_ms=1.0, soap_marshal_ms=0.5, service_dispatch_ms=0.5,
        db_connect_ms=2.0, db_read_ms=0.2, db_write_ms=0.3,
        crypto_sign_ms=0.5, crypto_verify_ms=0.2,
        ui_interaction_ms=4.0, mail_delivery_ms=3.0,
    ))
    cluster = None
    if config.cluster_shards > 0:
        from repro.cluster import ShardedTNService

        service = cluster = ShardedTNService(
            population.initiator_agent,
            transport,
            url="urn:vo:scenario-tn",
            shards=config.cluster_shards,
            hardening=config.hardening,
            max_in_flight=config.cluster_max_in_flight,
        )
    else:
        service = TNWebService(
            population.initiator_agent,
            transport,
            XMLDocumentStore("scenario-tn"),
            "urn:vo:scenario-tn",
            hardening=config.hardening,
        )
    resilient = ResilientTransport(
        inner=transport,
        retry=RetryPolicy(jitter_seed=config.seed),
        deadline_ms=config.deadline_ms,
    )
    clock = transport.base_clock
    started_ms = clock.elapsed_ms

    threshold = config.market.isolation_threshold
    seats = [seat_name(index) for index in range(config.seats)]
    members: dict[str, Optional[str]] = {seat: None for seat in seats}
    wins_by_round: list[tuple[int, str]] = []
    impostor_tried: set[str] = set()
    #: Round each cheater last defected in — the earn-back invariant
    #: requires at least one decay half-life of quiet after it.
    defection_rounds: dict[str, list[int]] = {}
    #: Members whose seat credential was retracted, with the round —
    #: they must never win an admission afterwards.
    retracted_members: dict[str, int] = {}

    def record_client_error(exc: ReproError) -> None:
        code = getattr(exc, "error_code", None)
        key = code.value if code else type(exc).__name__
        report.client_errors[key] = report.client_errors.get(key, 0) + 1

    def negotiate_seat(agent, seat: str) -> bool:
        """One real trust negotiation through the full service path."""
        client = TNClient(
            transport=resilient, service_url=service.url, agent=agent,
        )
        report.tn_attempts += 1
        try:
            result = client.negotiate(seat, at=_AT)
        except ReproError as exc:
            record_client_error(exc)
            return False
        if result.success:
            report.tn_successes += 1
            return True
        return False

    def attempt_admission(name: str, seat: str, round_index: int) -> bool:
        if not negotiate_seat(population.tn_agent(name), seat):
            return False
        members[seat] = name
        report.admissions_total += 1
        report.admission_wins[name] = report.admission_wins.get(name, 0) + 1
        wins_by_round.append((round_index, name))
        record = cheater_records.get(name)
        if record is not None:
            if record.detection_round is None:
                record.wins_before_detection += 1
            else:
                record.wins_after_detection += 1
        initiator_ledger.record(
            name, ReputationEvent.SUCCESSFUL_NEGOTIATION,
            detail=f"admitted to {seat}",
        )
        return True

    def fill_seat(
        seat: str, round_index: int, exclude: frozenset[str] = frozenset()
    ) -> bool:
        """TN-gated replacement: best-reputation candidates first, the
        reputation gate enforced from the initiator's own ledger."""
        seated = {name for name in members.values() if name}
        candidates = [
            trader for trader in traders
            if trader.name not in seated
            and trader.name not in exclude
            and initiator_ledger.score(trader.name) >= threshold
        ]
        candidates.sort(
            key=lambda t: (
                -initiator_ledger.score(t.name), -t.wealth, t.name,
            )
        )
        for trader in candidates[:config.candidates_per_vacancy]:
            if attempt_admission(trader.name, seat, round_index):
                return True
        return False

    # -- identification + formation: fill every seat through TN ---------------
    # Cheaters apply first (their credentials are genuine — cheating
    # happens on delivery, below the TN layer), so each gets a seat to
    # lose: the win-rate collapse is observable.
    initial_queue = (
        [t.name for t in population.cheaters()]
        + [t.name for t in population.honest()]
    )
    queue_index = 0
    for seat in seats:
        while queue_index < len(initial_queue):
            name = initial_queue[queue_index]
            queue_index += 1
            if attempt_admission(name, seat, round_index=-1):
                break

    # -- the rounds ------------------------------------------------------------
    for round_index in range(config.rounds):
        rush = config.is_rush(round_index)
        admissions_before = report.admissions_total
        departures_before = report.departures
        expulsions_before = report.expulsions
        with obs_span(
            "scenario.round", clock=clock, round=round_index, rush=rush,
        ):
            outcome = run_market_round(
                traders, rng=rng, config=config.market, rush=rush,
                extra_observers=(initiator_ledger,),
            )
            report.deals_closed += len(outcome.deals)
            report.deals_failed += outcome.failed
            report.defections += len(outcome.defections)
            report.unserved_units += outcome.unserved_units
            report.isolation_refusals += outcome.isolation_refusals
            report.value_created += outcome.value_created
            for deal in outcome.deals:
                record = cheater_records.get(deal.provider)
                if record is not None:
                    record.deals_closed += 1
                    if deal.defected:
                        record.defections += 1
                        defection_rounds.setdefault(
                            deal.provider, []
                        ).append(round_index)

            # Decay: every ledger drifts toward the target; a member
            # whose score crosses below the threshold by decay alone is
            # retracted through the trust bus.
            if config.decay_half_life is not None:
                before_scores = {
                    t.name: initiator_ledger.score(t.name) for t in traders
                }
                initiator_ledger.decay_all(
                    half_life=config.decay_half_life,
                    target=config.decay_target,
                )
                for trader in traders:
                    trader.ledger.decay_all(
                        half_life=config.decay_half_life,
                        target=config.decay_target,
                    )
                for name, before in before_scores.items():
                    after = initiator_ledger.score(name)
                    if before >= threshold > after:
                        population.bus.retract(TrustEvent.reputation_decayed(
                            name, score=after, threshold=threshold,
                        ))
                        report.decay_retractions += 1
                        obs_count("scenario.decay_retractions")

            # The revoked_credential cheater move: the authority
            # revokes a seated cheater's seat credential; the retraction
            # propagates through the bus (registry + caches + epoch),
            # the member is unseated, and every later admission attempt
            # with that credential must fail at the TN layer.
            if (
                config.revoke_cheater_every > 0
                and (round_index + 1) % config.revoke_cheater_every == 0
            ):
                seated_cheaters = sorted(
                    name for name in members.values()
                    if name and name in cheater_records
                    and name not in retracted_members
                )
                if seated_cheaters:
                    name = seated_cheaters[0]
                    population.bus.revoke(
                        population.authority,
                        population.member_credential(name),
                        detail=f"revoked_credential move, round {round_index}",
                    )
                    retracted_members[name] = round_index
                    report.credential_retractions += 1
                    obs_count("scenario.credential_retractions")
                    record = cheater_records.get(name)
                    if record is not None and record.detection_round is None:
                        record.detection_round = round_index
                    for seat, seated in members.items():
                        if seated == name:
                            members[seat] = None
                            report.expulsions += 1
                            if (
                                record is not None
                                and record.expelled_round is None
                            ):
                                record.expelled_round = round_index

            # Detection: the first round the initiator's own view of a
            # cheater crosses below the isolation threshold.
            for record in report.cheater_records:
                if (
                    record.detection_round is None
                    and initiator_ledger.score(record.name) < threshold
                ):
                    record.detection_round = round_index

            # Expulsion: seated members the initiator no longer trusts
            # lose their seat; the vacancy is re-covered through TN.
            for seat in seats:
                name = members[seat]
                if name is None or initiator_ledger.score(name) >= threshold:
                    continue
                members[seat] = None
                report.expulsions += 1
                record = cheater_records.get(name)
                if record is not None and record.expelled_round is None:
                    record.expelled_round = round_index
                # An expelled cheater tries once to sneak back in with a
                # stolen honest profile and the wrong key.
                if name in cheater_records and name not in impostor_tried:
                    impostor_tried.add(name)
                    honest_names = sorted(
                        (t.name for t in population.honest()),
                        key=lambda n: (-initiator_ledger.score(n), n),
                    )
                    impostor = population.impostor_of(honest_names[0])
                    report.byzantine_attempts += 1
                    if negotiate_seat(impostor, seat):
                        report.byzantine_successes += 1
                        members[seat] = None  # never seat an impostor
                if fill_seat(
                    seat, round_index, exclude=frozenset({name})
                ):
                    report.replacements += 1

            # Churn: a seeded member departs; TN-gated replacement.
            if (
                config.churn_every > 0
                and (round_index + 1) % config.churn_every == 0
            ):
                seated = sorted(
                    seat for seat, name in members.items() if name
                )
                if seated:
                    seat = seated[rng.randrange(len(seated))]
                    departing = members[seat]
                    members[seat] = None
                    report.departures += 1
                    if fill_seat(
                        seat, round_index,
                        exclude=frozenset({departing} if departing else ()),
                    ):
                        report.replacements += 1

            # Vacancies left by failed replacements retry next round.
            for seat in seats:
                if members[seat] is None:
                    fill_seat(seat, round_index)

        report.round_states.append(RoundState(
            round=round_index,
            rush=rush,
            deals=len(outcome.deals),
            failed=outcome.failed,
            defections=len(outcome.defections),
            mean_price=outcome.mean_price,
            demand_units=outcome.demand_units,
            supply_units=outcome.supply_units,
            unserved_units=outcome.unserved_units,
            isolation_refusals=outcome.isolation_refusals,
            admissions=report.admissions_total - admissions_before,
            departures=report.departures - departures_before,
            expulsions=report.expulsions - expulsions_before,
        ))
        if obs_enabled():
            obs_count("scenario.market.deals", len(outcome.deals))
            obs_count(
                "scenario.market.defections", len(outcome.defections)
            )
            if outcome.mean_price is not None:
                obs_gauge("scenario.market.mean_price", outcome.mean_price)
            obs_gauge("scenario.market.unserved", outcome.unserved_units)
            obs_gauge(
                "scenario.membership.seated",
                sum(1 for name in members.values() if name),
            )

    # -- dissolution: release every seat and reap every session ---------------
    for seat in seats:
        members[seat] = None
    clock.advance(config.hardening.session_ttl_ms + 1.0)
    report.reaped = service.reap_expired()
    report.elapsed_sim_ms = clock.elapsed_ms - started_ms
    report.internal_errors = service.internal_errors
    if service.guard is not None:
        report.guard_validated = service.guard.stats.validated
        report.guard_rejected = service.guard.stats.rejected
    if service.admission is not None:
        stats = service.admission.stats
        report.admission_offered = stats.offered
        report.admission_admitted = stats.admitted
        report.admission_shed = stats.shed
        report.admission_expired = stats.expired
    if cluster is not None:
        report.cluster_sheds = cluster.cluster_sheds
    report.final_wealth = {t.name: t.wealth for t in traders}
    report.initiator_view = {
        t.name: initiator_ledger.score(t.name) for t in traders
    }
    for record in report.cheater_records:
        record.final_reputation = initiator_ledger.score(record.name)

    # -- invariants ------------------------------------------------------------
    def violate(invariant: str, detail: str) -> None:
        report.violations.append(InvariantViolation(invariant, detail))

    # Service-level checks shared with the chaos soak: session
    # terminality, admission reconciliation, exception hygiene (and
    # terminal durability in cluster mode).
    check_service_invariants(service, violate, cluster=cluster)

    # Dissolution releases all sessions: after the final reap, no
    # service holds a live (non-terminal) session.
    if cluster is not None:
        in_flight = sum(
            node.service.sessions_in_flight
            for node in cluster.live_nodes() if node.service is not None
        )
    else:
        in_flight = service.sessions_in_flight
    if in_flight:
        violate(
            "dissolution-release",
            f"{in_flight} sessions still in flight after dissolution "
            "and TTL reaping",
        )

    # A member whose seat credential was retracted never wins an
    # admission afterwards — the revocation must be honoured at the TN
    # layer, not just in the initiator's ledger.
    for name, revoked_round in retracted_members.items():
        late = [
            round_index for round_index, winner in wins_by_round
            if winner == name and round_index > revoked_round
        ]
        if late:
            violate(
                "retraction-honored",
                f"{name} won {len(late)} admissions after its seat "
                f"credential was retracted in round {revoked_round}",
            )

    # Isolated cheaters stop winning admissions.  Without decay,
    # isolation is sticky: once detected, a cheater never recovers and
    # never wins again.  With decay, trust can be *earned back* — but
    # only after at least one half-life of quiet: a win or an
    # above-threshold final score within a half-life of the cheater's
    # last observed defection means decay outran the evidence.
    half_life = config.decay_half_life
    for record in report.cheater_records:
        if record.detection_round is None:
            continue
        defected_in = defection_rounds.get(record.name, [])
        late_wins = [
            round_index for round_index, name in wins_by_round
            if name == record.name and round_index > record.detection_round
        ]
        # Detection via the revoked_credential move is a TN-layer fact,
        # not a reputation judgement: the member's score may never have
        # sunk, so the reputation-stickiness checks don't bind (the
        # retraction-honored invariant above covers its isolation).
        detected_by_retraction = (
            retracted_members.get(record.name) == record.detection_round
        )
        if half_life is None:
            if late_wins:
                violate(
                    "isolated-cheater-admission",
                    f"{record.name} won {len(late_wins)} admissions after "
                    f"detection in round {record.detection_round}",
                )
            if (
                record.final_reputation >= threshold
                and not detected_by_retraction
            ):
                violate(
                    "isolation-is-sticky",
                    f"{record.name} recovered to "
                    f"{record.final_reputation:.3f} >= threshold "
                    f"{threshold} after detection",
                )
            continue
        for round_index in late_wins:
            last_defection = max(
                (r for r in defected_in if r < round_index), default=None
            )
            if (
                last_defection is not None
                and round_index - last_defection < half_life
            ):
                violate(
                    "isolation-earn-back",
                    f"{record.name} won an admission in round "
                    f"{round_index}, only {round_index - last_defection} "
                    f"round(s) after defecting (half-life {half_life})",
                )
        if record.final_reputation >= threshold and defected_in:
            quiet = (config.rounds - 1) - defected_in[-1]
            if quiet < half_life:
                violate(
                    "isolation-earn-back",
                    f"{record.name} ended above threshold only {quiet} "
                    f"round(s) after its last defection "
                    f"(half-life {half_life})",
                )

    # Reputation is monotone-down on observed defection, in every
    # decentralized ledger and the initiator's.
    ledgers = [(t.name, t.ledger) for t in traders]
    ledgers.append(("ScenarioInitiator", initiator_ledger))
    for observer, ledger in ledgers:
        last_score: dict[str, float] = {}
        for rec in ledger.history():
            previous = last_score.get(rec.member)
            if rec.event is ReputationEvent.CONTRACT_VIOLATION:
                if rec.delta >= 0:
                    violate(
                        "reputation-monotone-down",
                        f"{observer} recorded a non-negative defection "
                        f"delta {rec.delta} for {rec.member}",
                    )
                if previous is not None and rec.score_after > previous:
                    violate(
                        "reputation-monotone-down",
                        f"{observer}'s view of {rec.member} rose on a "
                        f"defection ({previous:.3f} -> "
                        f"{rec.score_after:.3f})",
                    )
            last_score[rec.member] = rec.score_after

    # Every admission was TN-gated (and guarded): no seat changed
    # hands without a successful negotiation through the service.
    if report.admissions_total > report.tn_successes:
        violate(
            "tn-gated-admission",
            f"{report.admissions_total} admissions but only "
            f"{report.tn_successes} successful negotiations",
        )
    if service.guard is not None and report.tn_attempts:
        # Every negotiation is 3 guarded operations (start, policy,
        # credential); successes account for at least that many.
        if report.guard_validated < 3 * report.tn_successes:
            violate(
                "tn-gated-admission",
                f"guard validated {report.guard_validated} messages for "
                f"{report.tn_successes} successful negotiations "
                "(expected >= 3 per negotiation)",
            )

    # The market's money ledger balances: wealth is conserved up to
    # the consumption surplus deals realized.
    expected = initial_wealth_total + report.value_created
    actual = sum(t.wealth for t in traders)
    if abs(actual - expected) > 1e-6 * max(1.0, abs(expected)):
        violate(
            "market-ledger-balance",
            f"final wealth {actual:.6f} != initial "
            f"{initial_wealth_total:.6f} + value created "
            f"{report.value_created:.6f}",
        )

    if report.byzantine_successes:
        violate(
            "impostor-rejection",
            f"{report.byzantine_successes} Byzantine impostor "
            "negotiations succeeded",
        )
    if not report.deals_closed:
        violate("liveness", "no market deal closed during the scenario")
    if not report.admissions_total:
        violate("liveness", "no TN-gated admission succeeded")

    if cluster is not None:
        cluster.close()
    else:
        service.close()
    obs_count("scenario.runs")
    return report
