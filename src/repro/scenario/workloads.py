"""Synthetic workload generators for benchmarks and stress tests.

Deterministic (seeded) builders for the structures whose scaling the
ablation benches measure: policy *chains* (negotiation depth), *bushy*
policy sets (alternatives per resource → tree branching), credential
portfolios, and ontologies with controlled vocabulary overlap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime

from repro.credentials.authority import CredentialAuthority
from repro.credentials.profile import XProfile
from repro.credentials.revocation import RevocationRegistry
from repro.credentials.sensitivity import Sensitivity
from repro.credentials.validation import CredentialValidator
from repro.crypto.keys import KeyPair, Keyring
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.strategies import Strategy
from repro.ontology.graph import Ontology
from repro.policy.policybase import PolicyBase
from repro.services.transport import LatencyModel, SimTransport
from repro.services.vo_toolkit import (
    HostEdition,
    InitiatorEdition,
    MemberEdition,
)
from repro.trust import TrustBus
from repro.vo.contract import Contract
from repro.vo.initiator import VOInitiator
from repro.vo.member import VOMember
from repro.vo.registry import ServiceDescription
from repro.vo.roles import Role

__all__ = [
    "NegotiationFixture",
    "FormationFixture",
    "CapacityFixture",
    "capacity_workload",
    "chain_workload",
    "bushy_workload",
    "formation_workload",
    "make_portfolio",
    "random_ontology",
    "overlapping_ontologies",
]

_ISSUE = datetime(2009, 10, 26)


@dataclass
class NegotiationFixture:
    """Two ready-to-negotiate agents plus the requested resource."""

    requester: TrustXAgent
    controller: TrustXAgent
    resource: str
    authority: CredentialAuthority
    revocations: RevocationRegistry

    def negotiation_time(self) -> datetime:
        return datetime(2010, 3, 1)


def _make_party(
    name: str,
    authority: CredentialAuthority,
    revocations: RevocationRegistry,
    cred_types: list[str],
    policies_dsl: str,
    strategy: Strategy = Strategy.STANDARD,
) -> TrustXAgent:
    keypair = KeyPair.generate(512)
    profile = XProfile.of(
        name,
        [
            authority.issue(
                cred_type,
                name,
                keypair.fingerprint,
                {"holder": name, "level": index},
                _ISSUE,
                days=3650,
                sensitivity=Sensitivity.LOW,
            )
            for index, cred_type in enumerate(cred_types)
        ],
    )
    keyring = Keyring()
    keyring.add(authority.name, authority.public_key)
    return TrustXAgent(
        name=name,
        profile=profile,
        policies=PolicyBase.from_dsl(name, policies_dsl),
        keypair=keypair,
        validator=CredentialValidator(keyring, revocations),
        strategy=strategy,
    )


def chain_workload(
    depth: int,
    authority: CredentialAuthority | None = None,
    strategy: Strategy = Strategy.STANDARD,
) -> NegotiationFixture:
    """A negotiation whose tree is a chain of ``depth`` policy levels.

    The controller protects the resource with a policy requiring the
    requester's credential ``R0``; ``R0`` requires the controller's
    ``C0``; ``C0`` requires ``R1``; ... the final credential is freely
    deliverable.  Depth therefore equals the number of alternating
    policy exchanges before a trust sequence exists.
    """
    if depth < 1:
        raise ValueError(f"chain depth must be >= 1, got {depth}")
    authority = authority or CredentialAuthority.create("ChainCA", key_bits=512)
    revocations = RevocationRegistry()
    TrustBus(registry=revocations).publish_crl(authority.crl)

    requester_types = [f"R{level}" for level in range((depth + 1) // 2)]
    controller_types = [f"C{level}" for level in range(depth // 2)]

    # Build the alternating requirement chain.
    chain = ["RES"]
    for level in range(depth):
        side = "R" if level % 2 == 0 else "C"
        chain.append(f"{side}{level // 2}")

    requester_rules = []
    controller_rules = []
    for position in range(len(chain) - 1):
        rule = f"{chain[position]} <- {chain[position + 1]}"
        if position % 2 == 0:
            controller_rules.append(rule)
        else:
            requester_rules.append(rule)
    # The deepest credential is deliverable.
    last_owner_rules = (
        requester_rules if depth % 2 == 1 else controller_rules
    )
    last_owner_rules.append(f"{chain[-1]} <- DELIV")

    requester = _make_party(
        "chain-requester", authority, revocations, requester_types,
        "\n".join(requester_rules), strategy,
    )
    controller = _make_party(
        "chain-controller", authority, revocations, controller_types,
        "\n".join(controller_rules), strategy,
    )
    return NegotiationFixture(
        requester, controller, "RES", authority, revocations
    )


def bushy_workload(
    alternatives: int,
    satisfiable_index: int | None = None,
    authority: CredentialAuthority | None = None,
) -> NegotiationFixture:
    """A negotiation with ``alternatives`` alternative policies for the
    resource, of which only one is satisfiable.

    ``satisfiable_index`` selects which alternative the requester can
    satisfy (defaults to the last, the worst case for the greedy
    first-alternative preference).
    """
    if alternatives < 1:
        raise ValueError(f"need >= 1 alternatives, got {alternatives}")
    if satisfiable_index is None:
        satisfiable_index = alternatives - 1
    if not 0 <= satisfiable_index < alternatives:
        raise ValueError(
            f"satisfiable_index {satisfiable_index} out of range"
        )
    authority = authority or CredentialAuthority.create("BushyCA", key_bits=512)
    revocations = RevocationRegistry()
    TrustBus(registry=revocations).publish_crl(authority.crl)

    controller_rules = [
        f"RES <- Alt{index}" for index in range(alternatives)
    ]
    held_type = f"Alt{satisfiable_index}"
    # The satisfiable alternative also carries an XPath condition over
    # the credential body (the holder attribute `_make_party` always
    # sets), so bushy runs exercise condition evaluation — and with it
    # the shared XPath AST cache — on every compliance check.
    controller_rules[satisfiable_index] = (
        f"RES <- {held_type}(xpath('/credential/content/holder'))"
    )
    requester = _make_party(
        "bushy-requester", authority, revocations, [held_type],
        f"{held_type} <- DELIV",
    )
    controller = _make_party(
        "bushy-controller", authority, revocations, [],
        "\n".join(controller_rules),
    )
    return NegotiationFixture(
        requester, controller, "RES", authority, revocations
    )


@dataclass
class CapacityFixture:
    """One controller and many independent requesters for session-
    capacity benchmarks: every requester runs the same two-round
    negotiation against the controller's TN service, so per-session
    cost is uniform and concurrent-session scheduling is the only
    variable."""

    controller: TrustXAgent
    requesters: list[TrustXAgent]
    resource: str
    authority: CredentialAuthority
    revocations: RevocationRegistry

    def negotiation_time(self) -> datetime:
        return datetime(2010, 3, 1)


def capacity_workload(requesters: int) -> CapacityFixture:
    """``requesters`` independent parties negotiating one resource.

    The controller protects ``RES`` behind the requester's
    ``MemberQual`` credential; each requester protects its
    ``MemberQual`` behind the controller's freely-deliverable
    ``ControllerAccreditation`` — the same two-round shape as a real
    formation join, repeated across distinct requesters so a service
    can hold many *distinct* sessions open at once.
    """
    if requesters < 1:
        raise ValueError(f"need >= 1 requesters, got {requesters}")
    authority = CredentialAuthority.create("CapacityCA", key_bits=512)
    revocations = RevocationRegistry()
    TrustBus(registry=revocations).publish_crl(authority.crl)
    controller = _make_party(
        "capacity-controller", authority, revocations,
        ["ControllerAccreditation"],
        "RES <- MemberQual\nControllerAccreditation <- DELIV",
    )
    parties = [
        _make_party(
            f"capacity-requester-{index:03d}", authority, revocations,
            ["MemberQual"],
            "MemberQual <- ControllerAccreditation",
        )
        for index in range(requesters)
    ]
    return CapacityFixture(
        controller, parties, "RES", authority, revocations
    )


@dataclass
class FormationFixture:
    """An N-role VO on a fresh simulated SOA, ready for formation.

    The caller drives the toolkit itself (so serial and parallel runs
    can start from identical fresh fixtures)::

        fixture = formation_workload(8)
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        edition.enable_trust_negotiation()
        outcome = edition.execute_formation(
            fixture.plans(), at=fixture.contract.created_at, parallel=True
        )
    """

    transport: SimTransport
    host: HostEdition
    initiator: VOInitiator
    initiator_edition: InitiatorEdition
    member_apps: dict[str, MemberEdition]  # role name -> member app
    contract: Contract
    authority: CredentialAuthority
    revocations: RevocationRegistry

    def plans(self) -> list[tuple[MemberEdition, str]]:
        """One (member app, role) plan per contract role, in order."""
        return [
            (self.member_apps[role.name], role.name)
            for role in self.contract.roles
        ]


def formation_workload(
    roles: int,
    latency: LatencyModel | None = None,
    with_negotiation_depth: bool = True,
) -> FormationFixture:
    """A VO of ``roles`` independent roles, one candidate each.

    Every role ``Role-i`` requires the candidate's ``MemberQual-i``
    credential; with ``with_negotiation_depth`` (the default) the
    candidate protects it behind the Initiator's freely-deliverable
    ``InitiatorAccreditation``, so each join runs a real two-round
    trust negotiation rather than a bare delivery.  All joins are
    mutually independent — the workload the parallel formation
    scheduler is designed for.
    """
    if roles < 1:
        raise ValueError(f"need >= 1 roles, got {roles}")
    authority = CredentialAuthority.create("FormationCA", key_bits=512)
    revocations = RevocationRegistry()
    TrustBus(registry=revocations).publish_crl(authority.crl)
    transport = SimTransport(model=latency or LatencyModel())

    initiator_agent = _make_party(
        "FormationInitiator", authority, revocations,
        ["InitiatorAccreditation"],
        "InitiatorAccreditation <- DELIV",
    )
    initiator = VOInitiator(
        name="FormationInitiator", agent=initiator_agent
    )

    contract_roles = []
    member_apps: dict[str, MemberEdition] = {}
    host = HostEdition(transport)
    for index in range(roles):
        role_name = f"Role-{index:02d}"
        qualification = f"MemberQual-{index:02d}"
        contract_roles.append(
            Role(
                name=role_name,
                description=f"Synthetic formation role {index}",
                requirements=(qualification,),
            )
        )
        member_name = f"member-{index:02d}"
        member_policy = (
            f"{qualification} <- InitiatorAccreditation"
            if with_negotiation_depth
            else f"{qualification} <- DELIV"
        )
        agent = _make_party(
            member_name, authority, revocations, [qualification],
            member_policy,
        )
        member = VOMember(
            name=member_name,
            agent=agent,
            services=[
                ServiceDescription.of(
                    member_name, f"service-{index:02d}",
                    roles=[role_name],
                    capabilities={"slot": str(index)},
                    quality=0.8,
                )
            ],
        )
        app = MemberEdition(member=member, transport=transport)
        app.register()
        member_apps[role_name] = app
        # Members must also trust the Initiator's key directly, so the
        # membership tokens it self-signs verify.
        agent.validator.keyring.add(
            initiator.name, initiator_agent.keypair.public
        )

    contract = Contract(
        vo_name=f"FormationVO-{roles}",
        business_goal="Throughput benchmark formation workload",
        roles=tuple(contract_roles),
        created_at=datetime(2010, 3, 1, 12, 0, 0),
    )
    initiator_edition = InitiatorEdition(initiator, transport, host)
    return FormationFixture(
        transport=transport,
        host=host,
        initiator=initiator,
        initiator_edition=initiator_edition,
        member_apps=member_apps,
        contract=contract,
        authority=authority,
        revocations=revocations,
    )


def make_portfolio(
    owner: str,
    size: int,
    authority: CredentialAuthority,
    seed: int = 7,
) -> tuple[XProfile, KeyPair]:
    """A profile of ``size`` credentials with mixed sensitivities."""
    rng = random.Random(seed)
    keypair = KeyPair.generate(512)
    profile = XProfile(owner)
    levels = list(Sensitivity)
    for index in range(size):
        profile.add(
            authority.issue(
                f"Cred{index}",
                owner,
                keypair.fingerprint,
                {"index": index, "score": rng.randint(0, 100)},
                _ISSUE,
                days=3650,
                sensitivity=rng.choice(levels),
            )
        )
    return profile, keypair


def random_ontology(
    name: str, concepts: int, seed: int = 11, is_a_probability: float = 0.4
) -> Ontology:
    """A random ontology of ``concepts`` concepts with is_a edges.

    Each concept binds one credential type and one attribute drawn from
    a compound-word vocabulary so similarity scores are non-trivial.
    """
    rng = random.Random(seed)
    words = [
        "quality", "service", "storage", "design", "license", "privacy",
        "member", "balance", "grid", "portal", "aircraft", "optimization",
        "record", "seal", "history", "capacity",
    ]
    onto = Ontology(name)
    names = []
    for index in range(concepts):
        concept_name = (
            f"{rng.choice(words).title()}{rng.choice(words).title()}{index}"
        )
        onto.add_concept(
            concept_name,
            bindings=[f"{concept_name}Cred.{rng.choice(words)}"],
            attributes=[rng.choice(words)],
        )
        names.append(concept_name)
    for index in range(1, concepts):
        if rng.random() < is_a_probability:
            onto.relate(names[index], names[rng.randrange(index)])
    return onto


def overlapping_ontologies(
    concepts: int, overlap: float, seed: int = 13
) -> tuple[Ontology, Ontology]:
    """Two ontologies sharing ``overlap`` of their concept vocabulary.

    Used to exercise cross-ontology matching: shared concepts differ
    only in naming convention (camelCase vs snake_case), so a token-
    based matcher should align them with high confidence.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    base = random_ontology("left", concepts, seed=seed)
    right = Ontology("right")
    shared = int(concepts * overlap)
    for index, concept in enumerate(sorted(base, key=lambda c: c.name)):
        if index < shared:
            snake = "_".join(
                piece.lower() for piece in concept.feature_tokens()
            )
            right.add_concept(
                snake or f"shared_{index}",
                bindings=[binding.qualified() for binding in concept.bindings],
                attributes=list(concept.attributes),
            )
        else:
            right.add_concept(
                f"unrelated_{index}",
                bindings=[f"Unrelated{index}Cred"],
                attributes=[f"field{index}"],
            )
    return base, right
