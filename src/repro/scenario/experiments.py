"""Exemplar scenario experiments with asserted qualitative findings.

Three runnable experiments reproduce the agent-market findings the
engine is built around:

- :func:`two_agent_matrix` — every provider×seeker strategy pair
  haggles repeatedly: Fair/Adaptive pairs close deals, Greedy/Patient
  pairs deadlock, and Adaptive's learned price estimate converges
  (steps-to-close decline).
- :func:`scarcity_market` — a 5-agent scarce market with a rush-hour
  demand spike: the Fair provider out-earns the other providers, the
  Adaptive seeker out-trades the Greedy one, and the rush raises
  prices while lowering the served fraction of demand.
- :func:`cheater_isolation` — a full open-world scenario (real TN
  admissions) tuned so the cheater keeps finding victims until
  decentralized reputation isolates it: detected within
  ``detection_rounds``, expelled, and its admission win-rate collapses
  to zero afterwards.

Each experiment is seeded and returns a report with a ``findings``
dict of booleans — the qualitative claims — that the test suite (and
``ok``) assert.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.scenario.engine import ScenarioConfig, ScenarioReport, run_scenario
from repro.scenario.market import (
    AgentStrategy,
    MarketConfig,
    haggle,
    make_trader,
    run_market_round,
)

__all__ = [
    "MatrixConfig",
    "MatrixReport",
    "two_agent_matrix",
    "ScarcityConfig",
    "ScarcityReport",
    "scarcity_market",
    "IsolationConfig",
    "IsolationReport",
    "cheater_isolation",
]

#: The honest strategy set the matrix crosses.
_MATRIX_STRATEGIES = (
    AgentStrategy.GREEDY,
    AgentStrategy.FAIR,
    AgentStrategy.PATIENT,
    AgentStrategy.ADAPTIVE,
    AgentStrategy.BROKER,
)


# -- two-agent strategy matrix -------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class MatrixConfig:
    """Knobs of the two-agent strategy matrix."""

    seed: int = 42
    #: Haggling encounters per strategy pair (ADAPTIVE carries its
    #: estimate across them, so convergence is observable).
    rounds: int = 40
    #: Provider reservation (cost) and seeker reservation (valuation).
    base_cost: float = 8.0
    base_valuation: float = 14.0
    #: Per-encounter reservation jitter (fraction, seeded).
    jitter: float = 0.1
    market: MarketConfig = field(default_factory=MarketConfig)
    #: Close rate at or above which a pair "closes deals".
    close_rate: float = 0.6
    #: Close rate at or below which a pair "deadlocks".
    deadlock_rate: float = 0.1
    #: Steps-to-close window compared for Adaptive convergence.
    window: int = 5


@dataclass
class CellStats:
    """One provider×seeker cell of the matrix."""

    provider: str
    seeker: str
    encounters: int = 0
    closed: int = 0
    total_price: float = 0.0
    steps: list[int] = field(default_factory=list)

    @property
    def close_rate(self) -> float:
        return self.closed / self.encounters if self.encounters else 0.0

    @property
    def mean_price(self) -> Optional[float]:
        return self.total_price / self.closed if self.closed else None

    def mean_steps(self, window: slice = slice(None)) -> Optional[float]:
        steps = self.steps[window]
        return sum(steps) / len(steps) if steps else None

    def to_dict(self) -> dict:
        return {
            "provider": self.provider,
            "seeker": self.seeker,
            "encounters": self.encounters,
            "closed": self.closed,
            "closeRate": round(self.close_rate, 4),
            "meanPrice": (
                round(self.mean_price, 4)
                if self.mean_price is not None else None
            ),
            "meanSteps": (
                round(self.mean_steps(), 4)
                if self.mean_steps() is not None else None
            ),
        }


@dataclass
class MatrixReport:
    seed: int
    rounds: int
    cells: dict[str, CellStats] = field(default_factory=dict)
    findings: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.findings.values())

    def cell(self, provider: AgentStrategy, seeker: AgentStrategy) -> CellStats:
        return self.cells[f"{provider.value}:{seeker.value}"]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "rounds": self.rounds,
            "cells": {
                key: cell.to_dict()
                for key, cell in sorted(self.cells.items())
            },
            "findings": dict(sorted(self.findings.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def two_agent_matrix(config: Optional[MatrixConfig] = None) -> MatrixReport:
    """Cross every provider strategy with every seeker strategy."""
    config = config or MatrixConfig()
    report = MatrixReport(seed=config.seed, rounds=config.rounds)
    for provider_strategy in _MATRIX_STRATEGIES:
        for seeker_strategy in _MATRIX_STRATEGIES:
            key = f"{provider_strategy.value}:{seeker_strategy.value}"
            rng = random.Random(f"{config.seed}:{key}")
            provider = make_trader(
                "P", provider_strategy, provider=True, config=config.market,
            )
            seeker = make_trader(
                "S", seeker_strategy, provider=False, config=config.market,
            )
            cell = CellStats(
                provider=provider_strategy.value,
                seeker=seeker_strategy.value,
            )
            for _ in range(config.rounds):
                cost = config.base_cost * (
                    1.0 + rng.uniform(-config.jitter, config.jitter)
                )
                valuation = config.base_valuation * (
                    1.0 + rng.uniform(-config.jitter, config.jitter)
                )
                outcome = haggle(
                    provider, seeker,
                    cost=cost, valuation=valuation, config=config.market,
                )
                cell.encounters += 1
                if outcome.closed:
                    cell.closed += 1
                    assert outcome.price is not None
                    cell.total_price += outcome.price
                    cell.steps.append(outcome.steps)
            report.cells[key] = cell

    def closes(p: AgentStrategy, s: AgentStrategy) -> bool:
        return report.cell(p, s).close_rate >= config.close_rate

    def deadlocks(p: AgentStrategy, s: AgentStrategy) -> bool:
        return report.cell(p, s).close_rate <= config.deadlock_rate

    adaptive = report.cell(AgentStrategy.ADAPTIVE, AgentStrategy.ADAPTIVE)
    early = adaptive.mean_steps(slice(None, config.window))
    late = adaptive.mean_steps(slice(-config.window, None))
    report.findings = {
        "fair_fair_closes": closes(AgentStrategy.FAIR, AgentStrategy.FAIR),
        "fair_adaptive_closes": closes(
            AgentStrategy.FAIR, AgentStrategy.ADAPTIVE
        ),
        "adaptive_adaptive_closes": closes(
            AgentStrategy.ADAPTIVE, AgentStrategy.ADAPTIVE
        ),
        "greedy_patient_deadlocks": deadlocks(
            AgentStrategy.GREEDY, AgentStrategy.PATIENT
        ),
        "greedy_greedy_deadlocks": deadlocks(
            AgentStrategy.GREEDY, AgentStrategy.GREEDY
        ),
        "adaptive_converges": (
            early is not None and late is not None and late < early
        ),
    }
    return report


# -- 5-agent scarcity market ---------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class ScarcityConfig:
    """Knobs of the 5-agent scarcity market."""

    seed: int = 42
    rounds: int = 100
    #: Rush-hour window [start, end) of open-loop demand spiking.
    rush_start: int = 60
    rush_end: int = 70
    #: Scarce by construction: 2 seekers × 4 > 3 providers × 2.
    market: MarketConfig = field(default_factory=lambda: MarketConfig(
        capacity_per_provider=2, demand_per_seeker=4,
    ))


@dataclass
class ScarcityReport:
    seed: int
    rounds: int
    wealth: dict[str, float] = field(default_factory=dict)
    resources: dict[str, float] = field(default_factory=dict)
    deals_closed: dict[str, int] = field(default_factory=dict)
    mean_price_normal: Optional[float] = None
    mean_price_rush: Optional[float] = None
    service_ratio_normal: float = 0.0
    service_ratio_rush: float = 0.0
    findings: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.findings.values())

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "rounds": self.rounds,
            "wealth": {
                name: round(value, 4)
                for name, value in sorted(self.wealth.items())
            },
            "resources": {
                name: round(value, 4)
                for name, value in sorted(self.resources.items())
            },
            "dealsClosed": dict(sorted(self.deals_closed.items())),
            "meanPriceNormal": (
                round(self.mean_price_normal, 4)
                if self.mean_price_normal is not None else None
            ),
            "meanPriceRush": (
                round(self.mean_price_rush, 4)
                if self.mean_price_rush is not None else None
            ),
            "serviceRatioNormal": round(self.service_ratio_normal, 4),
            "serviceRatioRush": round(self.service_ratio_rush, 4),
            "findings": dict(sorted(self.findings.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def scarcity_market(config: Optional[ScarcityConfig] = None) -> ScarcityReport:
    """Run the 5-agent scarcity market with a rush-hour window."""
    config = config or ScarcityConfig()
    rng = random.Random(config.seed)
    market = config.market
    traders = [
        make_trader("greedy-provider", AgentStrategy.GREEDY,
                    provider=True, config=market),
        make_trader("fair-provider", AgentStrategy.FAIR,
                    provider=True, config=market),
        make_trader("patient-provider", AgentStrategy.PATIENT,
                    provider=True, config=market),
        make_trader("adaptive-seeker", AgentStrategy.ADAPTIVE,
                    provider=False, config=market),
        make_trader("greedy-seeker", AgentStrategy.GREEDY,
                    provider=False, config=market),
    ]
    report = ScarcityReport(seed=config.seed, rounds=config.rounds)
    prices: dict[bool, list[float]] = {False: [], True: []}
    served: dict[bool, int] = {False: 0, True: 0}
    demanded: dict[bool, int] = {False: 0, True: 0}
    for round_index in range(config.rounds):
        rush = config.rush_start <= round_index < config.rush_end
        outcome = run_market_round(
            traders, rng=rng, config=market, rush=rush,
        )
        prices[rush].extend(deal.price for deal in outcome.deals)
        served[rush] += outcome.served_units
        demanded[rush] += outcome.demand_units
    report.wealth = {t.name: t.wealth for t in traders}
    report.resources = {t.name: t.resources for t in traders}
    report.deals_closed = {t.name: t.deals_closed for t in traders}
    if prices[False]:
        report.mean_price_normal = sum(prices[False]) / len(prices[False])
    if prices[True]:
        report.mean_price_rush = sum(prices[True]) / len(prices[True])
    report.service_ratio_normal = (
        served[False] / demanded[False] if demanded[False] else 0.0
    )
    report.service_ratio_rush = (
        served[True] / demanded[True] if demanded[True] else 0.0
    )
    providers = {t.name: t for t in traders if t.provider}
    report.findings = {
        "fair_provider_out_earns": (
            report.wealth["fair-provider"]
            == max(report.wealth[name] for name in providers)
        ),
        "adaptive_seeker_out_trades_greedy": (
            report.resources["adaptive-seeker"]
            > report.resources["greedy-seeker"]
        ),
        "rush_raises_prices": (
            report.mean_price_rush is not None
            and report.mean_price_normal is not None
            and report.mean_price_rush > report.mean_price_normal
        ),
        "rush_lowers_service_ratio": (
            report.service_ratio_rush < report.service_ratio_normal
        ),
    }
    return report


# -- cheater isolation on the real TN path -------------------------------------


@dataclass(frozen=True, kw_only=True)
class IsolationConfig:
    """Knobs of the cheater-isolation scenario.

    The market is scarce (demand outstrips honest supply, so the
    cheater keeps finding victims) and gossip is strong enough that a
    couple of observed defections push every ledger — including the
    initiator's — below the isolation threshold.
    """

    seed: int = 42
    rounds: int = 20
    agents: int = 8
    cheaters: int = 1
    seats: int = 2
    churn_every: int = 3
    #: The finding bound: every cheater detected within this many
    #: rounds ("isolated within ~15 rounds").
    detection_rounds: int = 15
    cluster_shards: int = 0
    market: MarketConfig = field(default_factory=lambda: MarketConfig(
        capacity_per_provider=2, demand_per_seeker=4, gossip_scale=0.75,
    ))


@dataclass
class IsolationReport:
    seed: int
    detection_rounds: int
    scenario: ScenarioReport = field(default=None)  # type: ignore[assignment]
    findings: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.scenario.ok and all(self.findings.values())

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "detectionRounds": self.detection_rounds,
            "findings": dict(sorted(self.findings.items())),
            "scenario": self.scenario.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def cheater_isolation(
    config: Optional[IsolationConfig] = None,
) -> IsolationReport:
    """Run the isolation scenario and evaluate its findings."""
    config = config or IsolationConfig()
    scenario = run_scenario(ScenarioConfig(
        seed=config.seed,
        rounds=config.rounds,
        agents=config.agents,
        cheaters=config.cheaters,
        seats=config.seats,
        churn_every=config.churn_every,
        cluster_shards=config.cluster_shards,
        market=config.market,
    ))
    records = scenario.cheater_records
    report = IsolationReport(
        seed=config.seed,
        detection_rounds=config.detection_rounds,
        scenario=scenario,
    )
    report.findings = {
        "all_cheaters_detected": all(
            record.detection_round is not None
            and record.detection_round <= config.detection_rounds
            for record in records
        ),
        "all_cheaters_expelled": all(
            record.expelled_round is not None for record in records
        ),
        # The acceptance claim: the cheater won admissions before
        # detection (formation seated it) and never again after.
        "win_rate_collapses": all(
            record.wins_before_detection > 0
            and record.wins_after_detection == 0
            for record in records
        ),
        "isolation_sticks": all(
            record.final_reputation
            < config.market.isolation_threshold
            for record in records
        ),
    }
    return report
