"""Ready-made scenarios and synthetic workloads.

- :mod:`aircraft` — the Aircraft Optimization VO of paper Section 3
  (five parties, their credentials, policies, and the Fig. 1 workflow),
  used by the examples and by the Fig. 9 benchmark;
- :mod:`workloads` — synthetic generators (policy chains, credential
  portfolios, ontologies) for the scaling and ablation benchmarks;
- :mod:`market`, :mod:`population`, :mod:`engine` — the open-world
  scenario engine: strategy-driven agent markets, TN-gated membership
  churn, and cheater isolation by decentralized reputation;
- :mod:`experiments` — exemplar experiments with asserted qualitative
  findings (strategy matrix, scarcity market, cheater isolation);
- :mod:`runner` — the general :class:`WorkloadRunner` all long-running
  workloads (including the chaos soak) are presets of.
"""

from repro.scenario.aircraft import AircraftScenario, build_aircraft_scenario
from repro.scenario.engine import (
    RoundState,
    ScenarioConfig,
    ScenarioReport,
    run_scenario,
)
from repro.scenario.experiments import (
    IsolationConfig,
    IsolationReport,
    MatrixConfig,
    MatrixReport,
    ScarcityConfig,
    ScarcityReport,
    cheater_isolation,
    scarcity_market,
    two_agent_matrix,
)
from repro.scenario.market import (
    AgentStrategy,
    MarketConfig,
    Trader,
    run_market_round,
)
from repro.scenario.population import Population, seat_name
from repro.scenario.runner import WorkloadPreset, WorkloadRunner

__all__ = [
    "AircraftScenario",
    "build_aircraft_scenario",
    "AgentStrategy",
    "MarketConfig",
    "Trader",
    "run_market_round",
    "Population",
    "seat_name",
    "ScenarioConfig",
    "ScenarioReport",
    "RoundState",
    "run_scenario",
    "MatrixConfig",
    "MatrixReport",
    "two_agent_matrix",
    "ScarcityConfig",
    "ScarcityReport",
    "scarcity_market",
    "IsolationConfig",
    "IsolationReport",
    "cheater_isolation",
    "WorkloadPreset",
    "WorkloadRunner",
]
