"""Ready-made scenarios and synthetic workloads.

- :mod:`aircraft` — the Aircraft Optimization VO of paper Section 3
  (five parties, their credentials, policies, and the Fig. 1 workflow),
  used by the examples and by the Fig. 9 benchmark;
- :mod:`workloads` — synthetic generators (policy chains, credential
  portfolios, ontologies) for the scaling and ablation benchmarks.
"""

from repro.scenario.aircraft import AircraftScenario, build_aircraft_scenario

__all__ = ["AircraftScenario", "build_aircraft_scenario"]
