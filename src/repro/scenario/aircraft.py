"""The Aircraft Optimization VO (paper Section 3, Fig. 1).

An aircraft company — prime contractor for a low-emission civil
aircraft — initiates a VO of smaller companies:

- **AircraftCo** — the prime contractor and VO Initiator;
- **AerospaceCo** — provides the Design Partner Web Portal;
- **OptimCo** — the scientific/engineering consultancy with the Design
  Optimization Partner Service;
- **HPCServiceCo** — the High Performance Computing Partner Service;
- **StorageCo** — the Storage Partner Service.

:func:`build_aircraft_scenario` assembles everything the lifecycle
needs: credential authorities and issued credentials, per-party
disclosure policies (including the exact policies of the paper's
examples), the shared aerospace ontology, the service registry entries,
the collaboration contract, and the simulated SOA (host, initiator
edition, member editions, TN Web service).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.credentials.authority import CredentialAuthority
from repro.credentials.profile import XProfile
from repro.credentials.revocation import RevocationRegistry
from repro.credentials.selective import SelectiveCredential
from repro.credentials.sensitivity import Sensitivity
from repro.credentials.validation import CredentialValidator
from repro.crypto.keys import KeyPair, Keyring
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.strategies import Strategy
from repro.ontology.builtin import aerospace_reference_ontology
from repro.ontology.mapping import ConceptMapper
from repro.policy.policybase import PolicyBase
from repro.services.transport import LatencyModel, SimTransport
from repro.services.vo_toolkit import HostEdition, InitiatorEdition, MemberEdition
from repro.trust import TrustBus
from repro.vo.contract import Contract
from repro.vo.initiator import VOInitiator
from repro.vo.member import VOMember
from repro.vo.registry import ServiceDescription
from repro.vo.roles import Role

__all__ = ["AircraftScenario", "build_aircraft_scenario", "CONTRACT_DATE"]

#: When credentials were issued and the contract signed.
CONTRACT_DATE = datetime(2010, 3, 1, 12, 0, 0)
_ISSUE_DATE = datetime(2009, 10, 26, 21, 32, 52)  # Fig. 6's notBefore

ROLE_DESIGN_PORTAL = "DesignWebPortal"
ROLE_OPTIMIZATION = "DesignOptimization"
ROLE_HPC = "HPCService"
ROLE_STORAGE = "StorageService"


@dataclass
class AircraftScenario:
    """Everything the Aircraft Optimization VO lifecycle needs."""

    transport: SimTransport
    host: HostEdition
    initiator: VOInitiator
    initiator_edition: InitiatorEdition
    members: dict[str, VOMember]
    member_apps: dict[str, MemberEdition]
    authorities: dict[str, CredentialAuthority]
    revocations: RevocationRegistry
    contract: Contract
    keyring_template: Keyring = field(repr=False, default=None)
    #: The retraction bus over ``revocations`` — how scenario tests and
    #: applications publish CRLs and revoke credentials mid-lifecycle.
    bus: TrustBus = field(repr=False, default=None)

    def __post_init__(self) -> None:
        if self.bus is None:
            self.bus = TrustBus(registry=self.revocations)

    @property
    def clock(self):
        return self.transport.clock

    def member(self, name: str) -> VOMember:
        return self.members[name]

    def app(self, name: str) -> MemberEdition:
        return self.member_apps[name]

    def authority(self, name: str) -> CredentialAuthority:
        return self.authorities[name]


def _keyring(authorities: dict[str, CredentialAuthority]) -> Keyring:
    ring = Keyring()
    for authority in authorities.values():
        ring.add(authority.name, authority.public_key)
    return ring


def _agent(
    name: str,
    profile: XProfile,
    policies_dsl: str,
    authorities: dict[str, CredentialAuthority],
    revocations: RevocationRegistry,
    strategy: Strategy = Strategy.STANDARD,
) -> TrustXAgent:
    return TrustXAgent(
        name=name,
        profile=profile,
        policies=PolicyBase.from_dsl(name, policies_dsl),
        keypair=KeyPair.generate(512),
        validator=CredentialValidator(_keyring(authorities), revocations),
        strategy=strategy,
        mapper=ConceptMapper(aerospace_reference_ontology()),
    )


def build_contract() -> Contract:
    """The Aircraft Optimization collaboration contract.

    Role requirements quote the paper where it gives them: the Design
    Web Portal "should prove that the design processes ... are
    compliant with the UNI EN ISO 9000 regulations" via the policy
    ``VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}``.
    """
    return Contract(
        vo_name="AircraftOptimizationVO",
        business_goal=(
            "Optimize a civil-aircraft wing design for low emissions and "
            "efficient fuel consumption"
        ),
        roles=(
            Role(
                name=ROLE_DESIGN_PORTAL,
                description="Engineering web portal hosting the product "
                "design database",
                requirements=(
                    "WebDesignerQuality, {UNI EN ISO 9000}",
                ),
            ),
            Role(
                name=ROLE_OPTIMIZATION,
                description="Advanced aerospace design-optimization service",
                requirements=(
                    "OptimizationCapability(domain='aerospace')",
                ),
            ),
            Role(
                name=ROLE_HPC,
                description="High Performance Computing service for "
                "numerical flow simulations",
                requirements=(
                    "HPC QoS Certificate(qosLevel='gold')",
                    "HPC QoS Certificate(gflops>=100)",
                ),
                min_reputation=0.3,
            ),
            Role(
                name=ROLE_STORAGE,
                description="Storage service for industrial engineering "
                "analysis data",
                requirements=(
                    "Storage QoS Certificate(capacityTB>=20)",
                ),
            ),
        ),
        collaboration_rules=(
            "Design data may only be shared with VO members",
            "Numerical results must be stored at the Storage Partner",
            "Members must keep quality certifications valid for the VO "
            "duration",
        ),
        created_at=CONTRACT_DATE,
    )


def build_aircraft_scenario(
    latency: Optional[LatencyModel] = None,
    key_bits: int = 512,
) -> AircraftScenario:
    """Assemble the full scenario on a fresh simulated SOA."""
    transport = SimTransport(model=latency or LatencyModel())
    revocations = RevocationRegistry()

    authorities = {
        name: CredentialAuthority.create(name, key_bits=key_bits)
        for name in (
            "INFN",
            "AmericanAircraftAssociation",
            "BBB",
            "PrivacyBoard",
            "GridCA",
            "VOHistoryCA",
        )
    }
    bus = TrustBus(registry=revocations)
    for authority in authorities.values():
        bus.publish_crl(authority.crl)
    infn = authorities["INFN"]
    aaa = authorities["AmericanAircraftAssociation"]
    bbb = authorities["BBB"]
    privacy = authorities["PrivacyBoard"]
    grid = authorities["GridCA"]
    history = authorities["VOHistoryCA"]

    # ------------------------------------------------------------- parties --
    def issue(ca, cred_type, subject, key, attrs, sensitivity=Sensitivity.LOW):
        return ca.issue(
            cred_type, subject, key, attrs, _ISSUE_DATE, days=730,
            sensitivity=sensitivity,
        )

    # AircraftCo: the prime contractor / VO Initiator.
    aircraft_key = KeyPair.generate(key_bits)
    aircraft_creds = [
        issue(aaa, "AAA Member", "AircraftCo", aircraft_key.fingerprint,
              {"association": "American Aircraft Association",
               "memberSince": 1998}),
        issue(bbb, "BalanceSheet", "AircraftCo", aircraft_key.fingerprint,
              {"Issuer": "BBB", "fiscalYear": 2009}),
        issue(aaa, "PrimeContractorLicense", "AircraftCo",
              aircraft_key.fingerprint, {"sector": "civil aviation"},
              Sensitivity.MEDIUM),
    ]
    aircraft_profile = XProfile.of("AircraftCo", aircraft_creds)
    aircraft_agent = TrustXAgent(
        name="AircraftCo",
        profile=aircraft_profile,
        # The Initiator freely answers the mutual checks of the paper's
        # formation example: the AAA accreditation and balance sheet.
        policies=PolicyBase.from_dsl("AircraftCo", """
AAA Member <- DELIV
BalanceSheet <- DELIV
PrimeContractorLicense <- AAA Member
"""),
        keypair=aircraft_key,
        validator=CredentialValidator(_keyring(authorities), revocations),
        mapper=ConceptMapper(aerospace_reference_ontology()),
    )
    initiator = VOInitiator(name="AircraftCo", agent=aircraft_agent)

    # AerospaceCo: Design Partner Web Portal.
    aero_key = KeyPair.generate(key_bits)
    aero_creds = [
        issue(infn, "ISO 9000 Certified", "AerospaceCo", aero_key.fingerprint,
              {"QualityRegulation": "UNI EN ISO 9000"}, Sensitivity.MEDIUM),
        issue(infn, "ISO 002 Certification", "AerospaceCo",
              aero_key.fingerprint, {"scope": "design processes"},
              Sensitivity.MEDIUM),
        issue(aaa, "AAA Member", "AerospaceCo", aero_key.fingerprint,
              {"association": "American Aircraft Association",
               "memberSince": 2003}),
        issue(privacy, "PrivacySealCertificate", "AerospaceCo",
              aero_key.fingerprint, {"regulation": "EU-DPD"}),
    ]
    aero_agent = TrustXAgent(
        name="AerospaceCo",
        profile=XProfile.of("AerospaceCo", aero_creds),
        # Paper examples: the quality certificate is released against
        # the AAA accreditation or a recent balance sheet; the ISO 002
        # certification (operation phase) against a privacy proof.
        policies=PolicyBase.from_dsl("AerospaceCo", """
ISO 9000 Certified <- AAA Member
ISO 9000 Certified <- BalanceSheet
ISO 002 Certification <- PrivacySealCertificate
PrivacySealCertificate <- DELIV
AAA Member <- DELIV
"""),
        keypair=aero_key,
        validator=CredentialValidator(_keyring(authorities), revocations),
        mapper=ConceptMapper(aerospace_reference_ontology()),
    )
    aerospace = VOMember(
        name="AerospaceCo",
        agent=aero_agent,
        services=[
            ServiceDescription.of(
                "AerospaceCo", "DesignPartnerWebPortal",
                roles=[ROLE_DESIGN_PORTAL],
                capabilities={"designDatabase": "industry-standard",
                              "interface": "web-portal"},
                quality=0.9,
            )
        ],
    )

    # OptimCo: Design Optimization Partner Service.
    optim_key = KeyPair.generate(key_bits)
    optim_creds = [
        issue(infn, "OptimizationCapability", "OptimCo",
              optim_key.fingerprint,
              {"domain": "aerospace", "method": "adjoint-gradient"},
              Sensitivity.MEDIUM),
        issue(aaa, "AAA Member", "OptimCo", optim_key.fingerprint,
              {"association": "American Aircraft Association",
               "memberSince": 2005}),
        issue(privacy, "PrivacySealCertificate", "OptimCo",
              optim_key.fingerprint, {"regulation": "EU-DPD"}),
    ]
    optim_agent = TrustXAgent(
        name="OptimCo",
        profile=XProfile.of("OptimCo", optim_creds),
        policies=PolicyBase.from_dsl("OptimCo", """
OptimizationCapability <- AAA Member
PrivacySealCertificate <- PrivacySealCertificate
AAA Member <- DELIV
"""),
        keypair=optim_key,
        validator=CredentialValidator(_keyring(authorities), revocations),
        mapper=ConceptMapper(aerospace_reference_ontology()),
    )
    optim = VOMember(
        name="OptimCo",
        agent=optim_agent,
        services=[
            ServiceDescription.of(
                "OptimCo", "DesignOptimizationService",
                roles=[ROLE_OPTIMIZATION],
                capabilities={"optimization": "aerospace",
                              "control": "design-optimization-control-file"},
                quality=0.85,
            )
        ],
    )

    # HPCServiceCo: numerical simulation provider.
    hpc_key = KeyPair.generate(key_bits)
    hpc_creds = [
        issue(grid, "HPC QoS Certificate", "HPCServiceCo",
              hpc_key.fingerprint, {"qosLevel": "gold", "gflops": 120}),
        issue(history, "VO Participation Ticket", "HPCServiceCo",
              hpc_key.fingerprint,
              {"voName": "TurbineDesignVO", "outcome": "fulfilled"}),
    ]
    hpc_agent = TrustXAgent(
        name="HPCServiceCo",
        profile=XProfile.of("HPCServiceCo", hpc_creds),
        policies=PolicyBase.from_dsl("HPCServiceCo", """
HPC QoS Certificate <- DELIV
VO Participation Ticket <- DELIV
"""),
        keypair=hpc_key,
        validator=CredentialValidator(_keyring(authorities), revocations),
        mapper=ConceptMapper(aerospace_reference_ontology()),
    )
    hpc = VOMember(
        name="HPCServiceCo",
        agent=hpc_agent,
        services=[
            ServiceDescription.of(
                "HPCServiceCo", "HPCPartnerService",
                roles=[ROLE_HPC],
                capabilities={"simulation": "flow-solution",
                              "qos": "gold"},
                quality=0.8,
            )
        ],
    )

    # StorageCo: engineering-data storage provider.
    storage_key = KeyPair.generate(key_bits)
    storage_creds = [
        issue(grid, "Storage QoS Certificate", "StorageCo",
              storage_key.fingerprint,
              {"qosLevel": "silver", "capacityTB": 50}),
    ]
    storage_agent = TrustXAgent(
        name="StorageCo",
        profile=XProfile.of("StorageCo", storage_creds),
        policies=PolicyBase.from_dsl("StorageCo", """
Storage QoS Certificate <- DELIV
"""),
        keypair=storage_key,
        validator=CredentialValidator(_keyring(authorities), revocations),
        mapper=ConceptMapper(aerospace_reference_ontology()),
    )
    storage = VOMember(
        name="StorageCo",
        agent=storage_agent,
        services=[
            ServiceDescription.of(
                "StorageCo", "StoragePartnerService",
                roles=[ROLE_STORAGE],
                capabilities={"storage": "engineering-analysis-data",
                              "capacityTB": "50"},
                quality=0.75,
            )
        ],
    )

    members = {
        member.name: member for member in (aerospace, optim, hpc, storage)
    }
    # Everyone (members and the Initiator itself, when receiving back
    # tickets it minted) trusts the Initiator's key directly, so
    # self-issued VO Descriptors and VO Participation Tickets verify
    # (paper §8 extension and §5.1 tickets).
    for agent in [aircraft_agent] + [m.agent for m in members.values()]:
        agent.validator.keyring.add("AircraftCo", aircraft_key.public)

    # ---------------------------------------------------------------- SOA --
    host = HostEdition(transport)
    member_apps = {
        name: MemberEdition(member=member, transport=transport)
        for name, member in members.items()
    }
    for app in member_apps.values():
        app.register()
    initiator_edition = InitiatorEdition(initiator, transport, host)

    return AircraftScenario(
        transport=transport,
        host=host,
        initiator=initiator,
        initiator_edition=initiator_edition,
        members=members,
        member_apps=member_apps,
        authorities=authorities,
        revocations=revocations,
        contract=build_contract(),
        keyring_template=_keyring(authorities),
        bus=bus,
    )


def build_fig1_workflow(vo) -> "OperationWorkflow":
    """The operation-phase workflow of paper Fig. 1.

    The engineer selects and optimizes a wing design; the optimization
    partner fetches the design-control file from the portal (after
    re-verifying its certification — the TN of Fig. 1's dashed arrow
    3a); the HPC service computes flow solutions whose results land at
    the storage partner; "Steps 5 and 6 are executed repeatedly until
    the target result is achieved".
    """
    from repro.vo.workflow import OperationWorkflow, WorkflowStep

    steps = (
        WorkflowStep(
            name="select-wing-design",
            source_role="Initiator",
            target_role=ROLE_DESIGN_PORTAL,
            operation="select wing design from the product database",
        ),
        WorkflowStep(
            name="activate-optimization",
            source_role="Initiator",
            target_role=ROLE_OPTIMIZATION,
            operation="activate the design-optimization service",
        ),
        WorkflowStep(
            name="fetch-control-file",
            source_role=ROLE_OPTIMIZATION,
            target_role=ROLE_DESIGN_PORTAL,
            operation="access the design-optimization control file",
            protected_resource="ISO 002 Certification",
        ),
        WorkflowStep(
            name="compute-flow-solution",
            source_role=ROLE_OPTIMIZATION,
            target_role=ROLE_HPC,
            operation="compute wing profile and flow solution",
            iterative=True,
        ),
        WorkflowStep(
            name="store-lift-drag-values",
            source_role=ROLE_HPC,
            target_role=ROLE_STORAGE,
            operation="store new wing lift and drag values",
            iterative=True,
        ),
        WorkflowStep(
            name="compute-revised-design",
            source_role=ROLE_OPTIMIZATION,
            target_role=ROLE_DESIGN_PORTAL,
            operation="compute the revised design",
        ),
    )
    return OperationWorkflow(vo=vo, steps=steps)


def enable_selective_disclosure(scenario: AircraftScenario) -> None:
    """Attach selective-disclosure forms to every member credential so
    the suspicious strategies can run (paper Section 6.3 extension)."""
    agents = [scenario.initiator.agent] + [
        member.agent for member in scenario.members.values()
    ]
    for agent in agents:
        for credential in agent.profile:
            authority = scenario.authorities[credential.issuer]
            agent.add_selective(
                SelectiveCredential.issue_from(
                    credential, authority.keypair.private
                )
            )
