"""One front door for every long-running workload.

:class:`WorkloadRunner` generalizes what used to be the chaos soak's
private driver: each workload is a :class:`WorkloadPreset` — a name, a
kw-only config dataclass, and a run function returning a report with
``ok``/``to_dict``/``to_json``.  The chaos soak itself is now just the
``"soak"`` preset; the open-world scenario engine and the exemplar
experiments register alongside it.

Dispatch is by preset name (config built from keyword overrides) or by
config instance (matched on its exact type)::

    runner = WorkloadRunner()
    report = runner.run("soak", seed=7, negotiations=500)
    report = runner.run(ScenarioConfig(seed=42, rounds=24, agents=12))

Calling :func:`repro.hardening.soak.run_soak` directly still works but
emits a :class:`DeprecationWarning` pointing here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import VOError
from repro.hardening.soak import SoakConfig, _run_soak_impl
from repro.scenario.engine import ScenarioConfig, run_scenario
from repro.scenario.experiments import (
    IsolationConfig,
    MatrixConfig,
    ScarcityConfig,
    cheater_isolation,
    scarcity_market,
    two_agent_matrix,
)

__all__ = ["WorkloadPreset", "WorkloadRunner"]


@dataclass(frozen=True)
class WorkloadPreset:
    """One runnable workload: its name, config type, and driver."""

    name: str
    config_type: type
    description: str
    run: Callable[[Any], Any]


def _default_presets() -> tuple[WorkloadPreset, ...]:
    return (
        WorkloadPreset(
            name="soak",
            config_type=SoakConfig,
            description=(
                "Chaos soak: thousands of negotiations under mixed "
                "network/adversarial faults with invariant checking"
            ),
            run=_run_soak_impl,
        ),
        WorkloadPreset(
            name="scenario",
            config_type=ScenarioConfig,
            description=(
                "Open-world VO lifecycle: agent market, TN-gated "
                "churn, cheater detection and isolation"
            ),
            run=run_scenario,
        ),
        WorkloadPreset(
            name="two-agent-matrix",
            config_type=MatrixConfig,
            description=(
                "Strategy x strategy haggling matrix "
                "(Fair/Adaptive close, Greedy/Patient deadlock)"
            ),
            run=two_agent_matrix,
        ),
        WorkloadPreset(
            name="scarcity",
            config_type=ScarcityConfig,
            description=(
                "5-agent scarce market with a rush-hour demand spike"
            ),
            run=scarcity_market,
        ),
        WorkloadPreset(
            name="cheater-isolation",
            config_type=IsolationConfig,
            description=(
                "Cheater detected and isolated by decentralized "
                "reputation on the real TN admission path"
            ),
            run=cheater_isolation,
        ),
    )


class WorkloadRunner:
    """Registry + dispatcher over :class:`WorkloadPreset` workloads."""

    def __init__(
        self, presets: Optional[tuple[WorkloadPreset, ...]] = None
    ) -> None:
        self._presets: dict[str, WorkloadPreset] = {}
        for preset in (presets if presets is not None
                       else _default_presets()):
            self.register(preset)

    def register(self, preset: WorkloadPreset) -> None:
        if preset.name in self._presets:
            raise VOError(f"duplicate workload preset {preset.name!r}")
        self._presets[preset.name] = preset

    def names(self) -> list[str]:
        return sorted(self._presets)

    def preset(self, name: str) -> WorkloadPreset:
        try:
            return self._presets[name]
        except KeyError:
            known = ", ".join(self.names())
            raise VOError(
                f"unknown workload {name!r}; choose from {known}"
            ) from None

    def config(self, name: str, **overrides: Any) -> Any:
        """Build the preset's config with keyword overrides applied."""
        preset = self.preset(name)
        try:
            return preset.config_type(**overrides)
        except TypeError as exc:
            raise VOError(
                f"bad overrides for workload {name!r} "
                f"({preset.config_type.__name__}): {exc}"
            ) from exc

    def run(self, workload: Any, /, **overrides: Any) -> Any:
        """Run a workload by preset name or by config instance.

        A name builds the preset's config from ``overrides``; a config
        instance dispatches on its exact type (no overrides — the
        config already says everything).
        """
        if isinstance(workload, str):
            return self.preset(workload).run(
                self.config(workload, **overrides)
            )
        if overrides:
            raise VOError(
                "overrides only apply when running a workload by "
                "name; pass a fully-built config instead"
            )
        for preset in self._presets.values():
            if type(workload) is preset.config_type:
                return preset.run(workload)
        known = ", ".join(
            preset.config_type.__name__
            for preset in self._presets.values()
        )
        raise VOError(
            f"no workload preset accepts a "
            f"{type(workload).__name__}; known configs: {known}"
        )
