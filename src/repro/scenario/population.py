"""Agent populations for the open-world scenario engine.

A :class:`Population` pairs every market :class:`~repro.scenario.market.Trader`
with a *lazily built* Trust-X identity: a ``MemberQual`` credential
issued by the population's authority, protected behind the scenario
initiator's freely-deliverable ``InitiatorAccreditation`` — the same
two-round negotiation shape as a real formation join.  Identities are
built on first admission attempt (key generation is the only expensive
step), so a 100-agent population only pays for the agents that
actually reach the TN service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.credentials.authority import CredentialAuthority
from repro.credentials.credential import Credential
from repro.credentials.revocation import RevocationRegistry
from repro.crypto.keys import KeyPair
from repro.negotiation.agent import TrustXAgent
from repro.trust import TrustBus
from repro.scenario.market import (
    AgentStrategy,
    MarketConfig,
    Trader,
    make_trader,
)
from repro.scenario.workloads import _make_party

__all__ = ["Population", "seat_name", "DEFAULT_STRATEGY_MIX"]

#: Honest strategies cycled over the non-cheater population.
DEFAULT_STRATEGY_MIX: tuple[AgentStrategy, ...] = (
    AgentStrategy.FAIR,
    AgentStrategy.ADAPTIVE,
    AgentStrategy.GREEDY,
    AgentStrategy.PATIENT,
    AgentStrategy.BROKER,
)

#: Credential/policy vocabulary of the scenario TN identities.
MEMBER_CREDENTIAL = "MemberQual"
INITIATOR_CREDENTIAL = "InitiatorAccreditation"


def seat_name(index: int) -> str:
    """VO seat resource names: ``Seat-00``, ``Seat-01``, ..."""
    return f"Seat-{index:02d}"


@dataclass
class Population:
    """Traders plus the credential infrastructure behind them."""

    traders: list[Trader]
    seats: int
    authority: CredentialAuthority
    revocations: RevocationRegistry
    #: The retraction bus over ``revocations`` — the one path through
    #: which scenario-level revocations and decay events propagate.
    bus: TrustBus
    initiator_agent: TrustXAgent
    _tn_agents: dict[str, TrustXAgent] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        *,
        agents: int,
        cheaters: int = 0,
        seats: int = 0,
        strategy_mix: tuple[AgentStrategy, ...] = DEFAULT_STRATEGY_MIX,
        market: Optional[MarketConfig] = None,
    ) -> "Population":
        """A population of ``agents`` traders, the first ``cheaters`` of
        which cheat (as providers, so their defections are observable
        deliveries); the rest alternate provider/seeker roles and cycle
        through ``strategy_mix`` deterministically."""
        if agents < 2:
            raise ValueError(f"need >= 2 agents, got {agents}")
        if not 0 <= cheaters <= agents - 2:
            raise ValueError(
                f"cheaters must leave >= 2 honest agents "
                f"({cheaters} of {agents})"
            )
        market = market or MarketConfig()
        authority = CredentialAuthority.create("ScenarioCA", key_bits=512)
        bus = TrustBus()
        revocations = bus.registry
        bus.publish_crl(authority.crl)

        seat_rules = "\n".join(
            f"{seat_name(index)} <- {MEMBER_CREDENTIAL}"
            for index in range(max(1, seats))
        )
        initiator_agent = _make_party(
            "ScenarioInitiator", authority, revocations,
            [INITIATOR_CREDENTIAL],
            f"{seat_rules}\n{INITIATOR_CREDENTIAL} <- DELIV",
        )

        traders: list[Trader] = []
        honest_index = 0
        for index in range(agents):
            name = f"agent-{index:03d}"
            if index < cheaters:
                traders.append(make_trader(
                    name, AgentStrategy.CHEATER,
                    provider=True, config=market,
                ))
                continue
            strategy = strategy_mix[honest_index % len(strategy_mix)]
            provider = honest_index % 2 == 0
            honest_index += 1
            traders.append(make_trader(
                name, strategy, provider=provider, config=market,
            ))
        return cls(
            traders=traders,
            seats=seats,
            authority=authority,
            revocations=revocations,
            bus=bus,
            initiator_agent=initiator_agent,
        )

    # -- lookups -------------------------------------------------------------------

    def trader(self, name: str) -> Trader:
        for trader in self.traders:
            if trader.name == name:
                return trader
        raise KeyError(name)

    def providers(self) -> list[Trader]:
        return [t for t in self.traders if t.provider]

    def seekers(self) -> list[Trader]:
        return [t for t in self.traders if not t.provider]

    def cheaters(self) -> list[Trader]:
        return [t for t in self.traders if t.cheater]

    def honest(self) -> list[Trader]:
        return [t for t in self.traders if not t.cheater]

    # -- Trust-X identities --------------------------------------------------------

    def tn_agent(self, name: str) -> TrustXAgent:
        """The trader's Trust-X identity, built on first use."""
        agent = self._tn_agents.get(name)
        if agent is None:
            self.trader(name)  # KeyError on unknown traders
            agent = _make_party(
                name, self.authority, self.revocations,
                [MEMBER_CREDENTIAL],
                f"{MEMBER_CREDENTIAL} <- {INITIATOR_CREDENTIAL}",
            )
            self._tn_agents[name] = agent
        return agent

    def member_credential(self, name: str) -> Credential:
        """The trader's ``MemberQual`` seat credential (building the
        identity on first use) — the credential the authority revokes
        for the scenario's ``revoked_credential`` cheater move."""
        agent = self.tn_agent(name)
        for credential in agent.profile:
            if credential.cred_type == MEMBER_CREDENTIAL:
                return credential
        raise KeyError(f"{name!r} holds no {MEMBER_CREDENTIAL!r} credential")

    def impostor_of(self, victim: str) -> TrustXAgent:
        """A Byzantine impostor: the victim's name and stolen credential
        profile, signing with the wrong private key — every ownership
        proof it attempts must fail verification."""
        victim_agent = self.tn_agent(victim)
        return TrustXAgent(
            name=victim_agent.name,
            profile=victim_agent.profile,
            policies=victim_agent.policies,
            keypair=KeyPair.generate(512),
            validator=victim_agent.validator,
            strategy=victim_agent.strategy,
        )
