"""The eager-strategy baseline (Winsborough et al., paper ref. [21]).

The paper positions Trust-X against the earlier automated-trust-
negotiation literature; the canonical baseline there is the *eager
strategy* of Winsborough, Seamons & Jones ("Automated trust
negotiation", DISCEX 2000): parties never exchange policies — instead,
each round a party discloses **every** local credential whose own
release policy is already satisfied by what the counterpart has
disclosed so far, until the target resource unlocks or a round passes
with no new disclosures.

The eager strategy is simple and complete (it succeeds whenever a
trust sequence exists over the same policies) but maximally leaky: it
discloses credentials that are irrelevant to the request.  The
``benchmarks/test_bench_eager_baseline.py`` bench quantifies exactly
that gap against the Trust-X engine.
"""

from __future__ import annotations

from datetime import datetime
from typing import Optional

from repro.credentials.credential import Credential
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.engine import DEFAULT_NEGOTIATION_TIME
from repro.negotiation.outcomes import (
    FailureReason,
    NegotiationResult,
    TranscriptEvent,
)

__all__ = ["eager_negotiate"]


def _policy_unlocked(
    agent: TrustXAgent, resource: str, received: list[Credential]
) -> bool:
    """Is ``agent``'s release policy for ``resource`` satisfied by the
    credentials received so far?"""
    if agent.releases_freely(resource):
        return True
    for policy in agent.policies.policies_for(resource):
        if policy.is_delivery:
            return True
        satisfied = all(
            any(agent.term_accepts(term, cred) for cred in received)
            for term in policy.terms
        )
        if satisfied and policy.group_conditions:
            satisfied = all(
                cond.evaluate(received) for cond in policy.group_conditions
            )
        if satisfied:
            return True
    return False


def eager_negotiate(
    requester: TrustXAgent,
    controller: TrustXAgent,
    resource: str,
    at: Optional[datetime] = None,
    max_rounds: int = 32,
) -> NegotiationResult:
    """Run the eager baseline between two Trust-X agents.

    Disclosed credentials are verified exactly as in the Trust-X
    exchange phase (signature, validity, revocation, ownership); a
    rejected credential fails the negotiation.
    """
    at = at or DEFAULT_NEGOTIATION_TIME
    transcript: list[TranscriptEvent] = []
    received_by: dict[str, list[Credential]] = {
        requester.name: [],
        controller.name: [],
    }
    disclosed_ids: dict[str, list[str]] = {
        requester.name: [],
        controller.name: [],
    }
    messages = 1  # the opening request
    transcript.append(
        TranscriptEvent("policy", requester.name, "request", resource)
    )

    def finish(
        success: bool,
        reason: Optional[FailureReason] = None,
        detail: str = "",
    ) -> NegotiationResult:
        return NegotiationResult(
            resource=resource,
            requester=requester.name,
            controller=controller.name,
            success=success,
            failure_reason=reason,
            failure_detail=detail,
            transcript=tuple(transcript),
            policy_messages=0,
            exchange_messages=messages,
            disclosed_by_requester=tuple(disclosed_ids[requester.name]),
            disclosed_by_controller=tuple(disclosed_ids[controller.name]),
        )

    # Requester moves first (it must establish trust to unlock the
    # resource); parties then alternate.
    parties = [(requester, controller), (controller, requester)]
    for round_index in range(max_rounds):
        # Grant as soon as the resource is unlocked — before leaking
        # anything further.
        if _policy_unlocked(
            controller, resource, received_by[controller.name]
        ):
            messages += 1  # the grant
            transcript.append(
                TranscriptEvent("exchange", controller.name, "grant", resource)
            )
            return finish(True)
        discloser, receiver = parties[round_index % 2]
        progress = False
        batch: list[Credential] = []
        for credential in discloser.profile:
            if credential.cred_id in disclosed_ids[discloser.name]:
                continue
            if _policy_unlocked(
                discloser,
                credential.cred_type,
                received_by[discloser.name],
            ):
                batch.append(credential)
        if batch:
            messages += 1  # one message carries the round's batch
            for credential in batch:
                nonce = receiver.validator.issue_challenge()
                disclosure = discloser.make_disclosure(
                    -1, credential, None, nonce
                )
                accepted, reason, effective = receiver.verify_disclosure(
                    disclosure, None, at, nonce
                )
                transcript.append(TranscriptEvent(
                    "exchange",
                    discloser.name,
                    "disclose" if accepted else "disclose-rejected",
                    f"{credential.cred_type} ({reason})",
                ))
                if not accepted:
                    return finish(
                        False,
                        FailureReason.CREDENTIAL_REJECTED,
                        f"{credential.cred_type!r}: {reason}",
                    )
                disclosed_ids[discloser.name].append(credential.cred_id)
                received_by[receiver.name].append(effective)
                progress = True
        # After every exchange, check whether the resource unlocked.
        if _policy_unlocked(
            controller, resource, received_by[controller.name]
        ):
            messages += 1  # the grant
            transcript.append(
                TranscriptEvent("exchange", controller.name, "grant", resource)
            )
            return finish(True)
        if not progress and round_index > 0:
            return finish(
                False,
                FailureReason.NO_TRUST_SEQUENCE,
                "no party could disclose anything new",
            )
    return finish(
        False,
        FailureReason.BUDGET_EXHAUSTED,
        f"no agreement within {max_rounds} rounds",
    )
