"""The per-party Trust-X agent.

An agent bundles everything one negotiation party owns privately: its
X-Profile, its disclosure-policy base, its key pair, its credential
validator (trusted keyring + revocation registry), its ontology-backed
concept mapper, and its negotiation strategy.  The engine never touches
a party's private state directly — it calls the decision methods here,
which is what keeps requester and controller symmetric ("acceptance in
TN is mutual", paper Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.credentials.credential import Credential
from repro.credentials.profile import XProfile
from repro.credentials.selective import SelectiveCredential
from repro.credentials.validation import (
    CredentialValidator,
    OwnershipProof,
    batch_prewarm_signatures,
)
from repro.crypto.keys import KeyPair
from repro.errors import NegotiationError, StrategyError
from repro.negotiation.messages import Disclosure
from repro.negotiation.strategies import Strategy
from repro.ontology.mapping import ConceptMapper
from repro.policy.compliance import ComplianceChecker
from repro.policy.conditions import (
    AnyAttributeCondition,
    AttributeCondition,
    XPathCondition,
)
from repro.policy.policybase import PolicyBase
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import Term, TermKind

__all__ = ["TrustXAgent"]


@dataclass
class TrustXAgent:
    """One party of a trust negotiation."""

    name: str
    profile: XProfile
    policies: PolicyBase
    keypair: KeyPair
    validator: CredentialValidator
    strategy: Strategy = Strategy.STANDARD
    mapper: Optional[ConceptMapper] = None
    #: Selective-disclosure forms of the party's credentials, keyed by
    #: credential id; required by the suspicious strategies.
    selective: dict[str, SelectiveCredential] = field(default_factory=dict)

    def __post_init__(self) -> None:
        resolver = self.mapper.resolver() if self.mapper is not None else None
        self.compliance = ComplianceChecker(concept_resolver=resolver)
        # abstract_policy memo: keyed by id(policy) with the policy kept
        # in the value so the id cannot be recycled while the entry
        # lives.  Policies are frozen, and the rewrite depends only on
        # the policy and the (append-only) ontology, so entries never go
        # stale within an agent's lifetime.
        self._abstract_memo: dict[int, tuple[DisclosurePolicy,
                                             DisclosurePolicy]] = {}

    # -- profile-side decisions ------------------------------------------------

    def candidates_for(self, term: Term) -> list[Credential]:
        """Local credentials able to satisfy ``term``, preferred first.

        A credential term whose type has no direct match falls back to
        ontology resolution: "the local trust negotiation agent ...
        maps the request into [the] local credential that is associated
        with the concept expressed by the counterpart policy"
        (Section 5.1).
        """
        direct = self.compliance.candidates(term, self.profile)
        if direct or self.mapper is None or term.kind is not TermKind.CREDENTIAL:
            return direct
        mapped = self.mapper.candidates(term.name, self.profile)
        return [cred for cred in mapped if term.conditions_hold(cred)]

    def policies_protecting(self, resource: str) -> list[DisclosurePolicy]:
        """Alternative local policies protecting ``resource``."""
        policies = self.policies.policies_for(resource)
        if self.strategy.hides_policies:
            policies = [self.abstract_policy(policy) for policy in policies]
        return policies

    def releases_freely(self, resource: str) -> bool:
        """True when ``resource`` needs no counter-requirements."""
        return (
            self.policies.is_freely_deliverable(resource)
            or self.policies.is_unprotected(resource)
        )

    # -- policy abstraction (strong suspicious, §4.3.1) -------------------------

    def abstract_policy(self, policy: DisclosurePolicy) -> DisclosurePolicy:
        """Rewrite credential terms as concept terms via the ontology.

        "The disclosure policies can be abstracted by executing a
        substitution operation of sensitive credentials names into the
        associated concepts names, which are more generic and disclose
        less information."  Terms without a covering concept are sent
        unchanged.
        """
        if self.mapper is None or policy.is_delivery:
            return policy
        memo = self._abstract_memo.get(id(policy))
        if memo is not None and memo[0] is policy:
            return memo[1]
        ontology = self.mapper.ontology
        rewritten = []
        for term in policy.terms:
            if term.kind is not TermKind.CREDENTIAL:
                rewritten.append(term)
                continue
            concept_name = None
            for concept in sorted(ontology, key=lambda c: c.name):
                if term.name in concept.credential_types():
                    concept_name = concept.name
                    break
            if concept_name is None:
                rewritten.append(term)
            else:
                rewritten.append(
                    Term(TermKind.CONCEPT, concept_name, term.conditions)
                )
        abstracted = DisclosurePolicy(
            policy.target,
            tuple(rewritten),
            transient=policy.transient,
            group_conditions=policy.group_conditions,
        )
        self._abstract_memo[id(policy)] = (policy, abstracted)
        return abstracted

    # -- disclosure construction -------------------------------------------------

    def _needed_attributes(
        self, term: Optional[Term], credential: Credential
    ) -> Optional[set[str]]:
        """Attributes a selective presentation must reveal for ``term``.

        Returns None when full disclosure is unavoidable (e.g. raw
        XPath conditions, whose attribute references are opaque).

        Beyond the attributes the term's conditions reference, a
        disclosure that relies on ontology bridging (the term names a
        concept, or a credential type different from ours) must also
        reveal the *binding* attributes — the receiver accepts the
        credential by checking that it implements the requested
        concept, which requires those attributes to be visible.
        """
        if term is None:
            return set()
        needed: set[str] = set()
        direct_type_match = (
            term.kind is TermKind.CREDENTIAL
            and term.name == credential.cred_type
        )
        if not direct_type_match:
            bridged = self._binding_attributes(term.name, credential)
            if bridged is None:
                return None  # cannot prove the bridge selectively
            needed |= bridged
        for condition in term.conditions:
            if isinstance(condition, AttributeCondition):
                needed.add(condition.attribute)
            elif isinstance(condition, AnyAttributeCondition):
                matching = [
                    attr.name
                    for attr in credential.attributes
                    if attr.xml_text == condition.value
                ]
                if not matching:
                    return None
                needed.add(matching[0])
            elif isinstance(condition, XPathCondition):
                return None
        return needed

    def _binding_attributes(
        self, requested: str, credential: Credential
    ) -> Optional[set[str]]:
        """Attributes the receiver needs to see to accept this
        credential as conveying ``requested`` (a concept name or a
        foreign credential type).  None when no binding explains the
        bridge (full disclosure is then the only option)."""
        if self.mapper is None:
            return None
        ontology = self.mapper.ontology
        relevant: list = []
        if requested in ontology:
            relevant.extend(ontology.conveying(requested))
        for concept in ontology:
            if requested in concept.credential_types():
                relevant.append(concept)
        attributes: set[str] = set()
        matched = False
        for concept in relevant:
            for binding in concept.bindings:
                if binding.cred_type != credential.cred_type:
                    continue
                matched = True
                if binding.attribute is not None:
                    attributes.add(binding.attribute)
        if not matched:
            return None
        return attributes

    def make_disclosure(
        self,
        node_id: int,
        credential: Credential,
        term: Optional[Term],
        nonce: Optional[str],
    ) -> Disclosure:
        """Build the Disclosure message for one trust-sequence step."""
        proof = (
            OwnershipProof.respond(nonce, self.keypair.private)
            if nonce is not None
            else None
        )
        if not self.strategy.minimal_disclosure:
            return Disclosure(
                sender=self.name,
                node_id=node_id,
                credential=credential,
                proof=proof,
            )
        selective = self.selective.get(credential.cred_id)
        self.strategy.require_partial_hiding_support(selective is not None)
        needed = self._needed_attributes(term, credential)
        if needed is None:
            names = selective.attribute_names()
        else:
            names = sorted(needed)
        return Disclosure(
            sender=self.name,
            node_id=node_id,
            presentation=selective.present(names),
            proof=proof,
        )

    # -- disclosure verification ----------------------------------------------------

    def term_accepts(self, term: Optional[Term], credential: Credential) -> bool:
        """Does ``credential`` satisfy the requirement I stated as ``term``?

        A concrete credential term accepts a matching type directly, or
        — when this party has an ontology — any credential that conveys
        a concept bound to the requested type (bridging naming gaps,
        Section 4.3).
        """
        if term is None:
            return True
        if term.kind is TermKind.VARIABLE:
            return term.conditions_hold(credential)
        if term.kind is TermKind.CREDENTIAL:
            if credential.cred_type == term.name:
                return term.conditions_hold(credential)
            return (
                self._concept_covers(term.name, credential)
                and term.conditions_hold(credential)
            )
        # Concept term
        return (
            self._concept_covers(term.name, credential)
            and term.conditions_hold(credential)
        )

    def _concept_covers(self, name: str, credential: Credential) -> bool:
        if self.mapper is None:
            return False
        ontology = self.mapper.ontology
        if name in ontology:
            return any(
                concept.implemented_by(credential)
                for concept in ontology.conveying(name)
            )
        # The name may itself be a credential type some concept binds;
        # accept when both the requested type and the received
        # credential implement a common concept.
        for concept in ontology:
            if name in concept.credential_types() and concept.implemented_by(
                credential
            ):
                return True
        return False

    def verify_disclosure(
        self,
        disclosure: Disclosure,
        term: Optional[Term],
        at: datetime,
        expected_nonce: Optional[str],
    ) -> tuple[bool, str, Optional[Credential]]:
        """Full verification of a received disclosure.

        Returns ``(accepted, reason, effective_credential)``; the
        reason explains a rejection and the effective credential is
        what the receiver learned (the full credential, or a shadow
        credential holding just the attributes a selective presentation
        revealed) — the material group conditions are evaluated over.
        Mirrors Section 4.2: signature, revocation, validity dates,
        ownership, then the policy conditions.
        """
        if disclosure.credential is not None:
            credential = disclosure.credential
            report = self.validator.validate(
                credential, at, disclosure.proof, expected_nonce
            )
            if not report.ok:
                return False, self._report_reason(report), None
            if not self.term_accepts(term, credential):
                return False, (
                    f"credential {credential.cred_type!r} does not satisfy "
                    f"the requested term"
                ), None
            return True, "ok", credential

        presentation = disclosure.presentation
        selective = presentation.credential
        if not self.validator.keyring.trusts(selective.issuer):
            return False, f"issuer {selective.issuer!r} is not trusted", None
        try:
            revealed = presentation.verify(
                self.validator.keyring.get(selective.issuer)
            )
        except Exception as exc:
            return False, f"presentation verification failed: {exc}", None
        if not selective.validity.contains(at):
            return False, "credential is outside its validity window", None
        if self.validator.revocations.is_revoked(
            selective.issuer, selective.serial
        ):
            return False, "credential was revoked", None
        if disclosure.proof is not None:
            nonce_fresh = (
                expected_nonce is None
                or disclosure.proof.nonce == expected_nonce
            )
            if not nonce_fresh or not disclosure.proof.check(
                selective.subject_key
            ):
                return False, "ownership proof failed", None
        shadow = Credential.build(
            cred_type=selective.cred_type,
            cred_id=selective.cred_id,
            issuer=selective.issuer,
            subject=selective.subject,
            subject_key=selective.subject_key,
            validity=selective.validity,
            attributes={
                name: value.value for name, value in revealed.items()
            },
            serial=selective.serial,
        )
        if not self.term_accepts(term, shadow):
            return False, (
                f"presentation of {selective.cred_type!r} does not satisfy "
                f"the requested term"
            ), None
        return True, "ok", shadow

    def ensure_disclosure_not_revoked(self, credential: Credential) -> None:
        """Re-check revocation for a credential this party already
        accepted in the current negotiation.

        Called by the negotiation core when the process-wide trust
        epoch (:func:`repro.trust.trust_epoch`) advanced since the
        disclosure was verified — a retraction somewhere may have
        invalidated what the signature cache no longer remembers.
        Raises :class:`~repro.errors.CredentialRevokedError` when the
        credential is now on its issuer's revocation list.
        """
        self.validator.revocations.ensure_not_revoked(
            credential.issuer, credential.serial
        )

    @staticmethod
    def _report_reason(report) -> str:
        if not report.signature_ok:
            return "signature check failed"
        if not report.within_validity:
            return "credential is outside its validity window"
        if not report.not_revoked:
            return "credential was revoked"
        return "ownership proof failed"

    # -- selective-disclosure management -------------------------------------------

    def add_selective(self, selective: SelectiveCredential) -> None:
        """Register the selective form of one of this party's credentials."""
        if selective.cred_id not in self.profile:
            raise NegotiationError(
                f"no credential {selective.cred_id!r} in {self.name!r}'s "
                "profile to attach a selective form to"
            )
        self.selective[selective.cred_id] = selective

    def prewarm_verification(self, credentials) -> int:
        """Batch-verify issuer signatures of an incoming disclosure run.

        Called by the negotiation core with the full credentials the
        counterpart is about to disclose: their issuer-signature checks
        run in one vectorized pass (:func:`repro.crypto.verify_b64_batch`)
        and the verdicts land in the CRL-invalidated signature cache, so
        the per-step :meth:`verify_disclosure` below hits instead of
        re-running RSA.  Validity, revocation, ownership, and policy
        checks are *not* prewarmed — they stay per-step.  Returns the
        number of fresh verdicts computed.
        """
        return batch_prewarm_signatures(self.validator, credentials)

    def ensure_strategy_supported(self) -> None:
        """Fail fast when a suspicious strategy lacks selective forms."""
        if not self.strategy.minimal_disclosure:
            return
        if not self.selective and len(self.profile) > 0:
            raise StrategyError(
                f"{self.name!r} selected {self.strategy.value!r} but holds "
                "no selective-disclosure credentials (X.509-style full-"
                "disclosure material cannot be partially hidden)"
            )
