"""Protocol messages exchanged during a Trust-X negotiation.

The vocabulary mirrors the interplay of Section 4.2: a resource
request, policy messages (sets of disclosure policies protecting
requested items), non-possession notices, sequence agreement, the
credential disclosures of the exchange phase with their
acknowledgements, and the final grant or failure.

Messages are plain frozen dataclasses; the service layer (see
:mod:`repro.services.soap`) wraps them in SOAP-ish envelopes when the
negotiation runs through the TN Web service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.credentials.credential import Credential
from repro.credentials.selective import Presentation
from repro.credentials.validation import OwnershipProof
from repro.errors import ErrorCode
from repro.policy.rules import DisclosurePolicy

__all__ = [
    "ResourceRequest",
    "PolicyMessage",
    "NotPossess",
    "SequenceProposal",
    "SequenceAccept",
    "Disclosure",
    "DisclosureAck",
    "ResourceGrant",
    "FailureNotice",
    "Message",
]


@dataclass(frozen=True)
class ResourceRequest:
    """Opens the negotiation: ``requester`` asks for ``resource``."""

    requester: str
    resource: str


@dataclass(frozen=True)
class PolicyMessage:
    """Disclosure policies protecting a requested node.

    ``node_id`` ties the policies to the negotiation-tree node they
    expand; ``policies`` are alternatives (a disjunction).
    """

    sender: str
    node_id: int
    policies: tuple[DisclosurePolicy, ...]


@dataclass(frozen=True)
class NotPossess:
    """The receiver does not possess a credential for the given node."""

    sender: str
    node_id: int


@dataclass(frozen=True)
class SequenceProposal:
    """End of the policy phase: a trust sequence was detected.

    Carries node ids in disclosure order; each party checks the
    sequence against its local tree view before accepting.
    """

    sender: str
    node_ids: tuple[int, ...]


@dataclass(frozen=True)
class SequenceAccept:
    sender: str


@dataclass(frozen=True)
class Disclosure:
    """One credential disclosure of the exchange phase.

    Either a full credential (trusting/standard strategies) or a
    selective presentation revealing only the needed attributes
    (suspicious strategies).  ``proof`` answers the receiver's
    ownership challenge.
    """

    sender: str
    node_id: int
    credential: Optional[Credential] = None
    presentation: Optional[Presentation] = None
    proof: Optional[OwnershipProof] = None

    def __post_init__(self) -> None:
        if (self.credential is None) == (self.presentation is None):
            raise ValueError(
                "a disclosure carries exactly one of credential/presentation"
            )

    @property
    def subject_key(self) -> str:
        if self.credential is not None:
            return self.credential.subject_key
        return self.presentation.credential.subject_key


@dataclass(frozen=True)
class DisclosureAck:
    """Acknowledgement with the next ownership challenge nonce."""

    sender: str
    node_id: int
    accepted: bool
    next_nonce: Optional[str] = None
    reason: Optional[str] = None


@dataclass(frozen=True)
class ResourceGrant:
    """Final message: the requested resource is released."""

    sender: str
    resource: str


@dataclass(frozen=True)
class FailureNotice:
    """Terminal failure message.

    ``reason`` stays the human-readable explanation; ``code`` is the
    machine-readable entry from the :class:`repro.errors.ErrorCode`
    taxonomy so peers can branch without parsing strings.
    """

    sender: str
    reason: str
    code: ErrorCode = ErrorCode.NEGOTIATION_FAILED


Message = Union[
    ResourceRequest,
    PolicyMessage,
    NotPossess,
    SequenceProposal,
    SequenceAccept,
    Disclosure,
    DisclosureAck,
    ResourceGrant,
    FailureNotice,
]
