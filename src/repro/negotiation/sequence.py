"""Trust sequences: the deliverable of the policy-evaluation phase.

"The goal is to determine a sequence of credentials, called trust
sequence, satisfying the disclosure policies of both parties"
(paper Section 4.2).  A sequence is extracted from a satisfiable view
of the negotiation tree: prerequisites first, the originally requested
resource last, with disclosure alternating between the two parties as
node ownership dictates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import NegotiationError
from repro.negotiation.tree import TreeNode, View

__all__ = ["SequenceStep", "TrustSequence"]


@dataclass(frozen=True)
class SequenceStep:
    """One disclosure of the exchange phase."""

    node: TreeNode
    discloser: str
    credential_id: Optional[str]  # None for the root resource grant

    @property
    def is_grant(self) -> bool:
        return self.node.is_root


@dataclass(frozen=True)
class TrustSequence:
    """An ordered disclosure plan extracted from a view."""

    steps: tuple[SequenceStep, ...]

    @classmethod
    def from_view(
        cls,
        view: View,
        credential_for: Callable[[TreeNode], Optional[str]],
    ) -> "TrustSequence":
        """Build the sequence; ``credential_for`` resolves the
        credential id the node's owner selected (None only for the
        root)."""
        steps = []
        for node in view.disclosure_order():
            credential_id = credential_for(node)
            if credential_id is None and not node.is_root:
                raise NegotiationError(
                    f"node {node.node_id} ({node.label!r}) reached the "
                    "exchange phase without a selected credential"
                )
            steps.append(
                SequenceStep(
                    node=node,
                    discloser=node.owner,
                    credential_id=credential_id,
                )
            )
        return cls(tuple(steps))

    def __len__(self) -> int:
        return len(self.steps)

    def disclosures_by(self, party: str) -> list[SequenceStep]:
        return [
            step
            for step in self.steps
            if step.discloser == party and not step.is_grant
        ]

    def batch_plan(
        self, skip: Callable[[SequenceStep], bool] = lambda step: False
    ) -> dict[str, list[tuple[int, SequenceStep]]]:
        """Group disclosure steps by discloser for batched verification.

        Returns ``{discloser: [(step index, step), ...]}`` preserving
        sequence order within each group, excluding grants and any step
        ``skip`` rejects (e.g. selective-disclosure steps whose
        verification is structural rather than a bare signature check).
        Each group is everything one *receiver* — the discloser's
        counterpart — will be asked to verify, so its issuer signatures
        can be checked in one vectorized pass up front.
        """
        groups: dict[str, list[tuple[int, SequenceStep]]] = {}
        for index, step in enumerate(self.steps):
            if step.is_grant or step.credential_id is None or skip(step):
                continue
            groups.setdefault(step.discloser, []).append((index, step))
        return groups

    def describe(self) -> str:
        """Human-readable plan, one line per step."""
        lines = []
        for index, step in enumerate(self.steps, start=1):
            if step.is_grant:
                lines.append(
                    f"{index}. {step.discloser} grants {step.node.label!r}"
                )
            else:
                lines.append(
                    f"{index}. {step.discloser} discloses "
                    f"{step.credential_id!r} for {step.node.label!r}"
                )
        return "\n".join(lines)
