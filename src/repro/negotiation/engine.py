"""The two-party negotiation driver.

Runs the Trust-X protocol of Section 4.2 between two
:class:`~repro.negotiation.agent.TrustXAgent` instances:

1. **Policy-evaluation phase** — a bilateral, ordered policy exchange.
   The engine grows the negotiation tree breadth-first: a node owned by
   party P is either *deliverable* (P can release it freely),
   *unsatisfiable* (P lacks a matching credential — P answers
   "does not possess"), or expanded with P's alternative policies,
   whose body terms become child nodes owned by the counterpart.
   Satisfiability is propagated and a view (trust sequence) selected.
2. **Credential-exchange phase** — disclosures follow the sequence
   order; each received credential is verified (signature, validity,
   revocation, ownership challenge, policy conditions) and
   acknowledged, and the originally requested resource is granted last.

Message accounting (reported in :class:`NegotiationResult`) follows the
strategies: a strong-suspicious party reveals policy alternatives one
message at a time; trusting parties skip the sequence-agreement
handshake and per-credential acknowledgements.

The engine is a *driver*, not a privileged observer: every decision
about private state (which credential satisfies a term, which policies
protect it, whether a disclosure verifies) is delegated to the owning
agent.  Centralizing the tree in the driver rather than mirroring it in
both agents is a simulation simplification with no behavioural effect
in a deterministic in-process run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.errors import StrategyError
from repro.negotiation.agent import TrustXAgent
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    event as obs_event,
    observe as obs_observe,
    span as obs_span,
)
from repro.negotiation.outcomes import (
    FailureReason,
    NegotiationResult,
    TranscriptEvent,
)
from repro.negotiation.sequence import TrustSequence
from repro.negotiation.tree import NegotiationTree, NodeStatus, TreeNode

__all__ = ["NegotiationEngine", "negotiate", "DEFAULT_NEGOTIATION_TIME"]

#: Deterministic default negotiation timestamp (paper-era).
DEFAULT_NEGOTIATION_TIME = datetime(2010, 3, 1, 12, 0, 0)


@dataclass
class NegotiationEngine:
    """Drives one negotiation between a requester and a controller."""

    requester: TrustXAgent
    controller: TrustXAgent
    max_depth: int = 16
    max_nodes: int = 512
    view_limit: int = 64
    #: How to pick among the potential trust sequences ("one or more
    #: potential trust sequences are determined", paper Section 4.2):
    #: ``"first"`` — the first alternative offered (fewest policy-phase
    #: surprises, the prototype's behaviour); ``"min_disclosure"`` —
    #: enumerate views (up to ``view_limit``) and pick the one
    #: disclosing the fewest credentials; ``"min_sensitivity"`` — pick
    #: the one with the lowest summed sensitivity, ties broken by
    #: disclosure count.
    view_selection: str = "first"

    # Internal bookkeeping rebuilt per run.
    _tree: NegotiationTree = field(init=False, repr=False)
    _edge_credentials: dict[int, str] = field(init=False, repr=False)
    _fallback_credentials: dict[int, str] = field(init=False, repr=False)
    _transcript: list[TranscriptEvent] = field(init=False, repr=False)

    def _agent(self, name: str) -> TrustXAgent:
        if name == self.requester.name:
            return self.requester
        if name == self.controller.name:
            return self.controller
        raise StrategyError(f"unknown party {name!r}")

    def _counterpart(self, agent: TrustXAgent) -> TrustXAgent:
        return (
            self.controller if agent is self.requester else self.requester
        )

    def _log(self, phase: str, actor: str, action: str, detail: str = "") -> None:
        self._transcript.append(TranscriptEvent(phase, actor, action, detail))

    # ------------------------------------------------------------------ run --

    def run(
        self, resource: str, at: Optional[datetime] = None
    ) -> NegotiationResult:
        """Negotiate the release of ``resource`` held by the controller."""
        if not obs_enabled():
            return self._run(resource, at)
        with obs_span(
            "tn.negotiation",
            resource=resource,
            requester=self.requester.name,
            controller=self.controller.name,
        ) as root:
            result = self._run(resource, at)
            root.set(
                success=result.success,
                policy_messages=result.policy_messages,
                exchange_messages=result.exchange_messages,
            )
        obs_count("negotiation.runs")
        obs_count(
            "negotiation.successes" if result.success
            else "negotiation.failures"
        )
        obs_observe("negotiation.policy_messages", result.policy_messages)
        obs_observe("negotiation.exchange_messages", result.exchange_messages)
        obs_observe("negotiation.disclosures", result.disclosures)
        if result.tree is not None:
            obs_observe("negotiation.tree_nodes", len(result.tree))
            obs_observe(
                "negotiation.tree_depth",
                max((node.depth for node in result.tree.nodes()), default=0),
            )
        if not result.success:
            obs_event(
                "negotiation.failure",
                resource=resource,
                reason=(
                    result.failure_reason.value
                    if result.failure_reason else ""
                ),
                detail=result.failure_detail,
            )
        return result

    def _run(
        self, resource: str, at: Optional[datetime]
    ) -> NegotiationResult:
        at = at or DEFAULT_NEGOTIATION_TIME
        self._tree = NegotiationTree(resource, self.controller.name)
        self._edge_credentials = {}
        self._fallback_credentials = {}
        self._transcript = []
        if self.requester.name == self.controller.name:
            return self._failure(
                resource, FailureReason.PROTOCOL,
                "requester and controller must be distinct parties", 0,
            )

        try:
            self.requester.ensure_strategy_supported()
            self.controller.ensure_strategy_supported()
        except StrategyError as exc:
            return self._failure(
                resource, FailureReason.STRATEGY_VIOLATION, str(exc), 0
            )

        policy_messages, budget_hit = self._policy_phase(resource)
        with obs_span("tn.tree_propagate") as propagate_span:
            satisfiable = self._tree.propagate()
            propagate_span.set(
                nodes=len(self._tree), satisfiable=satisfiable
            )
        if not satisfiable:
            reason = (
                FailureReason.BUDGET_EXHAUSTED
                if budget_hit
                else FailureReason.NO_TRUST_SEQUENCE
            )
            return self._failure(
                resource,
                reason,
                "no satisfiable view of the negotiation tree",
                policy_messages,
            )

        # Statuses are final once propagate() returns, so the per-node
        # fallback credential (first satisfiable edge carrying one) can
        # be computed once here instead of re-scanning satisfiable_edges
        # for every node of every view enumerated below.
        self._build_fallback_credentials()

        with obs_span(
            "tn.view_selection", mode=self.view_selection
        ) as view_span:
            view = self._select_view()
            self._view = view
            sequence = TrustSequence.from_view(
                view, lambda node: self._credential_in_view(view, node)
            )
            view_span.set(steps=len(sequence))
        self._log(
            "policy",
            self.controller.name,
            "trust-sequence",
            f"{len(sequence)} steps",
        )

        both_eager = (
            self.requester.strategy.eager_disclosure
            and self.controller.strategy.eager_disclosure
        )
        if not both_eager:
            # SequenceProposal + SequenceAccept handshake.
            policy_messages += 2
            self._log("policy", self.controller.name, "sequence-proposal")
            self._log("policy", self.requester.name, "sequence-accept")

        return self._exchange_phase(resource, sequence, at, policy_messages)

    # --------------------------------------------------- policy evaluation --

    def _policy_phase(self, resource: str) -> tuple[int, bool]:
        """Grow the tree; returns (policy message count, budget hit).

        Observability: the whole phase is one ``tn.policy_phase`` span;
        each breadth-first *round* (one tree depth level) nests a
        ``tn.tree_round`` span recording how far the tree grew.
        """
        messages = 1  # the opening ResourceRequest
        self._log(
            "policy", self.requester.name, "request", resource
        )
        budget_hit = False
        queue: deque[int] = deque([self._tree.root_id])
        round_span = None
        round_depth: Optional[int] = None
        with obs_span("tn.policy_phase", resource=resource) as phase_span:
            try:
                while queue:
                    node = self._tree.node(queue.popleft())
                    owner = self._agent(node.owner)
                    other = self._counterpart(owner)
                    if obs_enabled() and node.depth != round_depth:
                        if round_span is not None:
                            round_span.set(nodes=len(self._tree))
                            round_span.__exit__(None, None, None)
                        round_depth = node.depth
                        round_span = obs_span(
                            "tn.tree_round", depth=node.depth
                        )
                        round_span.__enter__()
                    if node.depth >= self.max_depth \
                            or len(self._tree) > self.max_nodes:
                        node.status = NodeStatus.UNSATISFIABLE
                        budget_hit = True
                        self._log(
                            "policy", owner.name, "budget-cutoff", node.label
                        )
                        continue
                    if node.is_root:
                        messages += self._expand_root(
                            node, owner, other, queue
                        )
                    else:
                        messages += self._expand_term(
                            node, owner, other, queue
                        )
            finally:
                if round_span is not None:
                    round_span.set(nodes=len(self._tree))
                    round_span.__exit__(None, None, None)
            phase_span.set(
                messages=messages, budget_hit=budget_hit,
                nodes=len(self._tree),
            )
        return messages, budget_hit

    def _expand_root(
        self,
        node: TreeNode,
        owner: TrustXAgent,
        other: TrustXAgent,
        queue: deque[int],
    ) -> int:
        if owner.releases_freely(node.label):
            node.status = NodeStatus.DELIVERABLE
            self._log("policy", owner.name, "deliverable", node.label)
            return 0
        policies = owner.policies_protecting(node.label)
        return self._attach_policies(node, owner, other, policies, queue)

    def _expand_term(
        self,
        node: TreeNode,
        owner: TrustXAgent,
        other: TrustXAgent,
        queue: deque[int],
    ) -> int:
        candidates = owner.candidates_for(node.term)
        if not candidates:
            node.status = NodeStatus.UNSATISFIABLE
            self._log("policy", owner.name, "not-possess", node.label)
            return 1  # the NotPossess notice
        # Prefer a candidate the owner can release freely.
        for credential in candidates:
            if owner.releases_freely(credential.cred_type):
                node.status = NodeStatus.DELIVERABLE
                node.credential_id = credential.cred_id
                self._log(
                    "policy", owner.name, "deliverable", credential.cred_type
                )
                return 0
        # Otherwise expand the policies of each distinct candidate type.
        messages = 0
        seen_types: set[str] = set()
        for credential in candidates:
            if credential.cred_type in seen_types:
                continue
            seen_types.add(credential.cred_type)
            policies = owner.policies_protecting(credential.cred_type)
            messages += self._attach_policies(
                node, owner, other, policies, queue, credential.cred_id
            )
        if not self._tree.edges_from(node.node_id):
            node.status = NodeStatus.UNSATISFIABLE
        return messages

    def _attach_policies(
        self,
        node: TreeNode,
        owner: TrustXAgent,
        other: TrustXAgent,
        policies,
        queue: deque[int],
        credential_id: Optional[str] = None,
    ) -> int:
        """Add one edge per alternative policy; returns message cost.

        A strong-suspicious owner sends alternatives one message at a
        time; everyone else bundles them in a single PolicyMessage.
        """
        expandable = [policy for policy in policies if not policy.is_delivery]
        if not expandable:
            return 0
        path = self._tree.path_labels(node.node_id)
        for policy in expandable:
            edge = self._tree.add_policy_edge(node.node_id, policy, other.name)
            if credential_id is not None:
                self._edge_credentials[edge.edge_id] = credential_id
            self._log(
                "policy", owner.name, "policy", policy.dsl()
            )
            for child_id in edge.children:
                child = self._tree.node(child_id)
                if f"{other.name}:{child.label}" in path:
                    # Cyclic requirement: requesting again what is
                    # already pending on this path cannot progress.
                    child.status = NodeStatus.UNSATISFIABLE
                    self._log(
                        "policy", other.name, "cycle-pruned", child.label
                    )
                else:
                    queue.append(child_id)
        if owner.strategy.hides_policies:
            return len(expandable)
        return 1

    def _build_fallback_credentials(self) -> None:
        """Precompute, for every node satisfied through an edge, the
        credential of its first satisfiable edge (insertion order —
        the same edge the old per-call scan would have found)."""
        self._fallback_credentials = {}
        if not self._edge_credentials:
            return
        for node in self._tree.nodes():
            if node.is_root or node.credential_id is not None:
                continue
            for edge in self._tree.satisfiable_edges(node.node_id):
                credential_id = self._edge_credentials.get(edge.edge_id)
                if credential_id is not None:
                    self._fallback_credentials[node.node_id] = credential_id
                    break

    def _credential_for(self, node: TreeNode) -> Optional[str]:
        if node.is_root:
            return node.credential_id  # usually None: grant, not disclosure
        if node.credential_id is not None:
            return node.credential_id
        # Satisfied through an edge: the credential tied to that edge.
        return self._fallback_credentials.get(node.node_id)

    def _credential_in_view(self, view, node: TreeNode) -> Optional[str]:
        """Like :meth:`_credential_for`, but honouring the view's own
        edge choices (different views may satisfy a node through
        different candidate credentials)."""
        if node.is_root:
            return node.credential_id
        if node.credential_id is not None:
            return node.credential_id
        edge_id = view.chosen_edges.get(node.node_id)
        if edge_id is not None:
            credential_id = self._edge_credentials.get(edge_id)
            if credential_id is not None:
                return credential_id
        return self._credential_for(node)

    def _view_cost(self, view) -> tuple[int, int]:
        """(disclosure count, summed sensitivity) of a view."""
        disclosures = 0
        sensitivity = 0
        for node in view.disclosure_order():
            if node.is_root:
                continue
            credential_id = self._credential_in_view(view, node)
            if credential_id is None:
                continue
            owner = self._agent(node.owner)
            credential = owner.profile.get(credential_id)
            disclosures += 1
            sensitivity += int(credential.sensitivity)
        return disclosures, sensitivity

    def _select_view(self):
        if self.view_selection == "first":
            return self._tree.first_view()
        if self.view_selection not in ("min_disclosure", "min_sensitivity"):
            raise StrategyError(
                f"unknown view selection {self.view_selection!r}"
            )
        best = None
        best_cost = None
        for view in self._tree.iter_views(limit=self.view_limit):
            disclosures, sensitivity = self._view_cost(view)
            cost = (
                (disclosures, sensitivity)
                if self.view_selection == "min_disclosure"
                else (sensitivity, disclosures)
            )
            if best_cost is None or cost < best_cost:
                best, best_cost = view, cost
        if best is None:  # pragma: no cover - propagate() guards this
            return self._tree.first_view()
        self._log(
            "policy", self.controller.name, "view-selected",
            f"{self.view_selection}: cost={best_cost}",
        )
        return best

    # -------------------------------------------------- credential exchange --

    def _exchange_phase(
        self,
        resource: str,
        sequence: TrustSequence,
        at: datetime,
        policy_messages: int,
    ) -> NegotiationResult:
        with obs_span(
            "tn.exchange_phase", steps=len(sequence)
        ) as exchange_span:
            return self._exchange_steps(
                resource, sequence, at, policy_messages, exchange_span
            )

    def _exchange_steps(
        self,
        resource: str,
        sequence: TrustSequence,
        at: datetime,
        policy_messages: int,
        exchange_span,
    ) -> NegotiationResult:
        exchange_messages = 0
        disclosed_requester: list[str] = []
        disclosed_controller: list[str] = []
        # Group-condition bookkeeping: which edge each disclosed node
        # belongs to, and what its receiver effectively learned.
        edge_of_child: dict[int, int] = {}
        for node_id, edge_id in self._view.chosen_edges.items():
            for child in self._tree.edge(edge_id).children:
                edge_of_child[child] = edge_id
        received_per_edge: dict[int, list] = {}
        for step in sequence.steps:
            if step.is_grant:
                exchange_messages += 1  # the ResourceGrant
                self._log(
                    "exchange", self.controller.name, "grant", resource
                )
                continue
            discloser = self._agent(step.discloser)
            receiver = self._counterpart(discloser)
            credential = discloser.profile.get(step.credential_id)
            nonce = receiver.validator.issue_challenge()
            try:
                disclosure = discloser.make_disclosure(
                    step.node.node_id, credential, step.node.term, nonce
                )
            except StrategyError as exc:
                return self._failure(
                    resource,
                    FailureReason.STRATEGY_VIOLATION,
                    str(exc),
                    policy_messages,
                    exchange_messages,
                )
            exchange_messages += 1
            with obs_span(
                "tn.verify", cred_type=credential.cred_type
            ) as verify_span:
                accepted, reason, effective = receiver.verify_disclosure(
                    disclosure, step.node.term, at, nonce
                )
                verify_span.set(accepted=accepted, reason=reason)
            if obs_enabled():
                obs_count("negotiation.disclosures_verified")
                obs_event(
                    "credential.disclosed",
                    sensitivity=int(credential.sensitivity),
                    discloser=discloser.name,
                    receiver=receiver.name,
                    cred_type=credential.cred_type,
                    accepted=accepted,
                    attributes={
                        attr.name: attr.value
                        for attr in credential.attributes
                    },
                )
            self._log(
                "exchange",
                discloser.name,
                "disclose" if accepted else "disclose-rejected",
                f"{credential.cred_type} ({reason})",
            )
            if not accepted:
                return self._failure(
                    resource,
                    FailureReason.CREDENTIAL_REJECTED,
                    f"{credential.cred_type!r}: {reason}",
                    policy_messages,
                    exchange_messages,
                    disclosed_requester,
                    disclosed_controller,
                )
            if not receiver.strategy.eager_disclosure:
                exchange_messages += 1  # the DisclosureAck
            if discloser is self.requester:
                disclosed_requester.append(credential.cred_id)
            else:
                disclosed_controller.append(credential.cred_id)
            # Group conditions: once every child of an edge has been
            # disclosed, the edge's policy owner checks the set-level
            # constraints over what was effectively learned.
            edge_id = edge_of_child.get(step.node.node_id)
            if edge_id is not None:
                received = received_per_edge.setdefault(edge_id, [])
                received.append(effective)
                edge = self._tree.edge(edge_id)
                if (
                    edge.policy.group_conditions
                    and len(received) == len(edge.children)
                ):
                    violated = [
                        cond.dsl()
                        for cond in edge.policy.group_conditions
                        if not cond.evaluate(received)
                    ]
                    if violated:
                        return self._failure(
                            resource,
                            FailureReason.CREDENTIAL_REJECTED,
                            "group condition(s) violated: "
                            + ", ".join(violated),
                            policy_messages,
                            exchange_messages,
                            disclosed_requester,
                            disclosed_controller,
                        )
        exchange_span.set(messages=exchange_messages)
        return NegotiationResult(
            resource=resource,
            requester=self.requester.name,
            controller=self.controller.name,
            success=True,
            tree=self._tree,
            sequence=tuple(step.node for step in sequence.steps),
            transcript=tuple(self._transcript),
            policy_messages=policy_messages,
            exchange_messages=exchange_messages,
            disclosed_by_requester=tuple(disclosed_requester),
            disclosed_by_controller=tuple(disclosed_controller),
        )

    # ------------------------------------------------------------- failures --

    def _failure(
        self,
        resource: str,
        reason: FailureReason,
        detail: str,
        policy_messages: int,
        exchange_messages: int = 0,
        disclosed_requester: Optional[list[str]] = None,
        disclosed_controller: Optional[list[str]] = None,
    ) -> NegotiationResult:
        self._log("exchange", self.controller.name, "failure", detail)
        return NegotiationResult(
            resource=resource,
            requester=self.requester.name,
            controller=self.controller.name,
            success=False,
            failure_reason=reason,
            failure_detail=detail,
            tree=getattr(self, "_tree", None),
            transcript=tuple(getattr(self, "_transcript", ())),
            policy_messages=policy_messages,
            exchange_messages=exchange_messages,
            disclosed_by_requester=tuple(disclosed_requester or ()),
            disclosed_by_controller=tuple(disclosed_controller or ()),
        )


def negotiate(
    requester: TrustXAgent,
    controller: TrustXAgent,
    resource: str,
    at: Optional[datetime] = None,
    **engine_options,
) -> NegotiationResult:
    """Convenience wrapper: build an engine and run one negotiation."""
    return NegotiationEngine(requester, controller, **engine_options).run(
        resource, at=at
    )
