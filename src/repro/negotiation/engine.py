"""The two-party negotiation driver (synchronous).

Runs the Trust-X protocol of Section 4.2 between two
:class:`~repro.negotiation.agent.TrustXAgent` instances:

1. **Policy-evaluation phase** — a bilateral, ordered policy exchange.
   The engine grows the negotiation tree breadth-first: a node owned by
   party P is either *deliverable* (P can release it freely),
   *unsatisfiable* (P lacks a matching credential — P answers
   "does not possess"), or expanded with P's alternative policies,
   whose body terms become child nodes owned by the counterpart.
   Satisfiability is propagated and a view (trust sequence) selected.
2. **Credential-exchange phase** — disclosures follow the sequence
   order; each received credential is verified (signature, validity,
   revocation, ownership challenge, policy conditions) and
   acknowledged, and the originally requested resource is granted last.

The protocol itself lives in the sans-IO
:class:`~repro.negotiation.core.NegotiationCore`; this engine is the
*synchronous driver*: it resolves each :class:`AgentOp` effect the core
yields against the two in-process agents and feeds the answer back.
The asyncio driver (:func:`repro.services.aio.anegotiate`) runs the
same core with cooperative yields between turns, so both produce
bit-identical results on the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.negotiation.agent import TrustXAgent
from repro.negotiation.core import (
    DEFAULT_NEGOTIATION_TIME,
    NegotiationCore,
    drive,
    record_outcome_obs,
)
from repro.obs import (
    enabled as obs_enabled,
    span as obs_span,
)
from repro.negotiation.outcomes import NegotiationResult, TranscriptEvent
from repro.negotiation.tree import NegotiationTree

__all__ = ["NegotiationEngine", "negotiate", "DEFAULT_NEGOTIATION_TIME"]


@dataclass
class NegotiationEngine:
    """Drives one negotiation between a requester and a controller."""

    requester: TrustXAgent
    controller: TrustXAgent
    max_depth: int = 16
    max_nodes: int = 512
    view_limit: int = 64
    #: How to pick among the potential trust sequences ("one or more
    #: potential trust sequences are determined", paper Section 4.2):
    #: ``"first"`` — the first alternative offered (fewest policy-phase
    #: surprises, the prototype's behaviour); ``"min_disclosure"`` —
    #: enumerate views (up to ``view_limit``) and pick the one
    #: disclosing the fewest credentials; ``"min_sensitivity"`` — pick
    #: the one with the lowest summed sensitivity, ties broken by
    #: disclosure count.
    view_selection: str = "first"
    #: Batch-verify the issuer signatures of the selected trust
    #: sequence before stepping the exchange (see
    #: :class:`~repro.negotiation.core.NegotiationCore`).  Results are
    #: identical either way; only the RSA wall-clock cost changes.
    batch_verify: bool = True

    # Last-run state, copied back from the core for introspection.
    _tree: NegotiationTree = field(init=False, repr=False)
    _transcript: list[TranscriptEvent] = field(init=False, repr=False)
    _edge_credentials: dict[int, str] = field(init=False, repr=False)

    def _core(self) -> NegotiationCore:
        return NegotiationCore(
            requester=self.requester.name,
            controller=self.controller.name,
            max_depth=self.max_depth,
            max_nodes=self.max_nodes,
            view_limit=self.view_limit,
            view_selection=self.view_selection,
            batch_verify=self.batch_verify,
        )

    def run(
        self, resource: str, at: Optional[datetime] = None
    ) -> NegotiationResult:
        """Negotiate the release of ``resource`` held by the controller."""
        if not obs_enabled():
            return self._run(resource, at)
        with obs_span(
            "tn.negotiation",
            resource=resource,
            requester=self.requester.name,
            controller=self.controller.name,
        ) as root:
            result = self._run(resource, at)
            root.set(
                success=result.success,
                policy_messages=result.policy_messages,
                exchange_messages=result.exchange_messages,
            )
        record_outcome_obs(resource, result)
        return result

    def _run(
        self, resource: str, at: Optional[datetime]
    ) -> NegotiationResult:
        core = self._core()
        agents = {
            self.requester.name: self.requester,
            self.controller.name: self.controller,
        }
        result = drive(core.run(resource, at), agents)
        self._tree = core.tree
        self._transcript = core.transcript
        self._edge_credentials = getattr(core, "_edge_credentials", {})
        return result


def negotiate(
    requester: TrustXAgent,
    controller: TrustXAgent,
    resource: str,
    at: Optional[datetime] = None,
    **engine_options,
) -> NegotiationResult:
    """Convenience wrapper: build an engine and run one negotiation."""
    return NegotiationEngine(requester, controller, **engine_options).run(
        resource, at=at
    )
