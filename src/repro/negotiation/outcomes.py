"""Negotiation results, transcripts, and the failure taxonomy."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.negotiation.tree import NegotiationTree, TreeNode

__all__ = [
    "FailureReason",
    "UNSATISFIABLE_REASONS",
    "TranscriptEvent",
    "NegotiationResult",
]


class FailureReason(Enum):
    #: The policy phase found no satisfiable view ("the counterpart
    #: then sends an alternative policy, if any, or halts the process").
    NO_TRUST_SEQUENCE = "no_trust_sequence"
    #: A disclosed credential failed verification — e.g. "a party uses
    #: a revoked certificate, the negotiation fails".
    CREDENTIAL_REJECTED = "credential_rejected"
    #: A credential *already accepted* this negotiation was retracted
    #: mid-flight (revocation, CRL publication) and the re-verification
    #: triggered by the trust-epoch advance caught it.  Transient, like
    #: CREDENTIAL_REJECTED: a later attempt without the revoked
    #: credential may still succeed.
    CREDENTIAL_REVOKED = "credential_revoked"
    #: A strategy constraint was violated (X.509 without partial hiding).
    STRATEGY_VIOLATION = "strategy_violation"
    #: The negotiation exceeded its depth/round budget.
    BUDGET_EXHAUSTED = "budget_exhausted"
    #: A party violated the protocol.
    PROTOCOL = "protocol"
    #: The counterpart could not be reached (timeouts, crash, open
    #: circuit) and retries were exhausted — the negotiation never got
    #: a definitive answer.
    UNREACHABLE = "unreachable"

    @property
    def is_unsatisfiable(self) -> bool:
        """Whether the policy phase proved no trust sequence can exist.

        Distinguishes *unsatisfiable* outcomes (retrying cannot help:
        the policies, budget, or strategy rule trust out) from
        *transient* ones (a rejected credential, a protocol slip, an
        unreachable peer — a later attempt may still succeed)."""
        return self in UNSATISFIABLE_REASONS


#: Reasons for which the policy phase determined that no trust
#: sequence can be established, no matter how often the negotiation
#: is retried.
UNSATISFIABLE_REASONS = frozenset({
    FailureReason.NO_TRUST_SEQUENCE,
    FailureReason.BUDGET_EXHAUSTED,
    FailureReason.STRATEGY_VIOLATION,
})


@dataclass(frozen=True)
class TranscriptEvent:
    """One step of the negotiation, for inspection and debugging."""

    phase: str  # "policy" | "exchange" | "setup"
    actor: str
    action: str
    detail: str = ""


@dataclass
class NegotiationResult:
    """Outcome of one trust negotiation."""

    resource: str
    requester: str
    controller: str
    success: bool
    failure_reason: Optional[FailureReason] = None
    failure_detail: str = ""
    tree: Optional[NegotiationTree] = None
    #: Nodes in the order their credentials were disclosed (the trust
    #: sequence actually executed); the root resource is last.
    sequence: tuple[TreeNode, ...] = ()
    transcript: tuple[TranscriptEvent, ...] = ()
    #: Message counts, split by phase — the cost measure trust
    #: negotiation papers report ("with a relatively small number of
    #: messages", Section 1).
    policy_messages: int = 0
    exchange_messages: int = 0
    #: Credentials disclosed by each side (ids), for privacy accounting.
    disclosed_by_requester: tuple[str, ...] = ()
    disclosed_by_controller: tuple[str, ...] = ()

    @property
    def total_messages(self) -> int:
        return self.policy_messages + self.exchange_messages

    @property
    def disclosures(self) -> int:
        return len(self.disclosed_by_requester) + len(self.disclosed_by_controller)

    def to_audit_record(self) -> dict:
        """A JSON-serializable audit record of the negotiation.

        The VO's monitoring requirement ("all the interactions must be
        monitored", Section 2) extends to negotiations; this record
        captures the outcome, the cost accounting, and the full
        transcript without any credential *contents*.
        """
        return {
            "resource": self.resource,
            "requester": self.requester,
            "controller": self.controller,
            "success": self.success,
            "failureReason": (
                self.failure_reason.value if self.failure_reason else None
            ),
            "failureDetail": self.failure_detail,
            "policyMessages": self.policy_messages,
            "exchangeMessages": self.exchange_messages,
            "disclosedByRequester": list(self.disclosed_by_requester),
            "disclosedByController": list(self.disclosed_by_controller),
            "transcript": [
                {
                    "phase": event.phase,
                    "actor": event.actor,
                    "action": event.action,
                    "detail": event.detail,
                }
                for event in self.transcript
            ],
        }

    def to_audit_json(self) -> str:
        import json

        return json.dumps(self.to_audit_record(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        if self.success:
            return (
                f"SUCCESS: {self.requester} obtained {self.resource!r} from "
                f"{self.controller} ({self.total_messages} messages, "
                f"{self.disclosures} disclosures)"
            )
        reason = self.failure_reason.value if self.failure_reason else "unknown"
        return (
            f"FAILURE({reason}): {self.requester} did not obtain "
            f"{self.resource!r} from {self.controller}"
            + (f" — {self.failure_detail}" if self.failure_detail else "")
        )
