"""The negotiation tree (paper Section 4.2, Fig. 2).

"A negotiation tree is a labeled tree rooted at the resource that
initially started the negotiation.  Each node corresponds to a term,
whereas edges correspond to policy rules ... A simple edge denotes a
policy having only one term on the left side component of the rule.
By contrast, a multiedge links several simple edges to represent policy
rules having more than one term ... Nodes belonging to a multiedge are
thus considered as a whole during the negotiation."

Alternative policies protecting the same node appear as sibling edges
(a disjunction); the terms of one policy body hang together under one
(multi)edge (a conjunction).  A *view* — "a possible trust sequence
that can lead to the negotiation success" — selects one satisfiable
edge for every expanded node it retains.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional

from repro.errors import NegotiationError
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    observe as obs_observe,
)
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import Term

__all__ = ["NodeStatus", "EdgeKind", "TreeNode", "PolicyEdge", "View", "NegotiationTree"]


class NodeStatus(Enum):
    #: Not yet evaluated / expanded.
    OPEN = "open"
    #: The owner can release this node's credential freely (delivery
    #: rule or unprotected credential) — a satisfiable leaf.
    DELIVERABLE = "deliverable"
    #: Satisfiable through at least one edge whose children are all
    #: satisfiable.
    SATISFIABLE = "satisfiable"
    #: Cannot be satisfied (credential not possessed, or every
    #: alternative failed).
    UNSATISFIABLE = "unsatisfiable"

    @property
    def is_satisfiable(self) -> bool:
        return self in (NodeStatus.DELIVERABLE, NodeStatus.SATISFIABLE)


class EdgeKind(Enum):
    SIMPLE = "simple"
    MULTI = "multi"


@dataclass
class TreeNode:
    """One term (or the root resource) of the negotiation tree."""

    node_id: int
    owner: str  # the party who must provide/disclose this node
    label: str  # resource name or term name (display / dedup key)
    term: Optional[Term]  # None for the root resource node
    depth: int
    status: NodeStatus = NodeStatus.OPEN
    #: Credential the owner selected to satisfy this node (id only;
    #: contents stay with the owner until the exchange phase).
    credential_id: Optional[str] = None

    @property
    def is_root(self) -> bool:
        return self.term is None


@dataclass(frozen=True)
class PolicyEdge:
    """One policy rule linking a node to the body terms' nodes."""

    edge_id: int
    parent: int
    children: tuple[int, ...]
    policy: DisclosurePolicy

    @property
    def kind(self) -> EdgeKind:
        return EdgeKind.SIMPLE if len(self.children) == 1 else EdgeKind.MULTI


@dataclass(frozen=True)
class View:
    """A choice of one edge per retained node — one potential trust
    sequence."""

    tree: "NegotiationTree"
    chosen_edges: dict[int, int]  # node_id -> edge_id

    def nodes(self) -> list[TreeNode]:
        """Every node the view retains, root first (pre-order)."""
        ordered: list[TreeNode] = []
        stack = [self.tree.root_id]
        while stack:
            node_id = stack.pop()
            node = self.tree.node(node_id)
            ordered.append(node)
            edge_id = self.chosen_edges.get(node_id)
            if edge_id is not None:
                edge = self.tree.edge(edge_id)
                stack.extend(reversed(edge.children))
        return ordered

    def disclosure_order(self) -> list[TreeNode]:
        """Nodes in the order credentials must be disclosed.

        Post-order: a node's prerequisites (its chosen edge's children)
        are disclosed before the node itself; the root resource comes
        last.
        """
        ordered: list[TreeNode] = []

        def visit(node_id: int) -> None:
            edge_id = self.chosen_edges.get(node_id)
            if edge_id is not None:
                for child in self.tree.edge(edge_id).children:
                    visit(child)
            ordered.append(self.tree.node(node_id))

        visit(self.tree.root_id)
        return ordered


class NegotiationTree:
    """Mutable negotiation tree built during the policy phase."""

    def __init__(self, resource: str, controller: str) -> None:
        self._ids = itertools.count(0)
        self._edge_ids = itertools.count(0)
        self._nodes: dict[int, TreeNode] = {}
        self._edges: dict[int, PolicyEdge] = {}
        self._edges_by_parent: dict[int, list[int]] = {}
        self._parent_of: dict[int, int] = {}
        self.root_id = self._add_node(
            owner=controller, label=resource, term=None, depth=0
        )

    # -- construction -----------------------------------------------------------

    def _add_node(
        self, owner: str, label: str, term: Optional[Term], depth: int
    ) -> int:
        node_id = next(self._ids)
        self._nodes[node_id] = TreeNode(
            node_id=node_id, owner=owner, label=label, term=term, depth=depth
        )
        return node_id

    def add_policy_edge(
        self, parent_id: int, policy: DisclosurePolicy, child_owner: str
    ) -> PolicyEdge:
        """Expand ``parent_id`` with one alternative policy rule.

        Creates one child node per body term, owned by ``child_owner``
        (the counterpart of the parent's owner), linked together as a
        multiedge when the rule has several terms.
        """
        parent = self.node(parent_id)
        children = tuple(
            self._add_node(
                owner=child_owner,
                label=term.name,
                term=term,
                depth=parent.depth + 1,
            )
            for term in policy.terms
        )
        if not children:
            raise NegotiationError(
                f"policy {policy.policy_id} has no terms to expand "
                f"(delivery rules mark nodes DELIVERABLE instead)"
            )
        edge_id = next(self._edge_ids)
        edge = PolicyEdge(edge_id, parent_id, children, policy)
        self._edges[edge_id] = edge
        self._edges_by_parent.setdefault(parent_id, []).append(edge_id)
        for child in children:
            self._parent_of[child] = parent_id
        return edge

    # -- access -------------------------------------------------------------------

    def node(self, node_id: int) -> TreeNode:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise NegotiationError(f"unknown tree node {node_id}") from exc

    def edge(self, edge_id: int) -> PolicyEdge:
        try:
            return self._edges[edge_id]
        except KeyError as exc:
            raise NegotiationError(f"unknown tree edge {edge_id}") from exc

    @property
    def root(self) -> TreeNode:
        return self.node(self.root_id)

    def edges_from(self, node_id: int) -> list[PolicyEdge]:
        return [
            self._edges[edge_id]
            for edge_id in self._edges_by_parent.get(node_id, [])
        ]

    def nodes(self) -> list[TreeNode]:
        return list(self._nodes.values())

    def edges(self) -> list[PolicyEdge]:
        return list(self._edges.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def path_labels(self, node_id: int) -> set[str]:
        """Labels of (owner, term-name) pairs from the root to ``node_id``.

        Used for cycle detection: re-requesting a term already on the
        path would loop forever.
        """
        labels: set[str] = set()
        target = self.node(node_id)
        # The child -> parent map is maintained incrementally by
        # add_policy_edge, so the walk is O(depth) rather than O(edges).
        current: Optional[int] = target.node_id
        while current is not None:
            node = self.node(current)
            labels.add(f"{node.owner}:{node.label}")
            current = self._parent_of.get(current)
        return labels

    # -- satisfiability propagation -------------------------------------------------

    def propagate(self) -> bool:
        """Recompute SATISFIABLE statuses bottom-up.

        A node is satisfiable when it is DELIVERABLE, or when at least
        one outgoing edge has *all* children satisfiable ("nodes
        belonging to a multiedge are considered as a whole").  Returns
        True when the root is satisfiable.
        """
        changed = True
        passes = 0
        while changed:
            changed = False
            passes += 1
            for node in self._nodes.values():
                if node.status in (NodeStatus.DELIVERABLE, NodeStatus.UNSATISFIABLE):
                    continue
                for edge in self.edges_from(node.node_id):
                    children = [self.node(child) for child in edge.children]
                    if all(child.status.is_satisfiable for child in children):
                        if node.status is not NodeStatus.SATISFIABLE:
                            node.status = NodeStatus.SATISFIABLE
                            changed = True
                        break
        if obs_enabled():
            obs_observe("tree.propagate_passes", passes)
            obs_observe("tree.nodes", len(self._nodes))
        return self.root.status.is_satisfiable

    def satisfiable_edges(self, node_id: int) -> list[PolicyEdge]:
        return [
            edge
            for edge in self.edges_from(node_id)
            if all(
                self.node(child).status.is_satisfiable
                for child in edge.children
            )
        ]

    # -- views -------------------------------------------------------------------

    def first_view(self) -> Optional[View]:
        """The deterministic first satisfiable view, if any.

        Greedy: at each satisfiable (non-deliverable) node pick the
        first satisfiable edge in insertion order — i.e. the first
        alternative the counterpart offered.
        """
        if not self.root.status.is_satisfiable:
            return None
        chosen: dict[int, int] = {}
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            node = self.node(node_id)
            if node.status is NodeStatus.DELIVERABLE:
                continue
            edges = self.satisfiable_edges(node_id)
            if not edges:
                return None  # pragma: no cover - propagate() guards this
            chosen[node_id] = edges[0].edge_id
            stack.extend(edges[0].children)
        return View(self, chosen)

    def iter_views(self, limit: int = 64) -> Iterator[View]:
        """Enumerate satisfiable views, up to ``limit``.

        The number of views is the product of satisfiable alternatives
        over expanded nodes, so enumeration is capped.
        """
        if not self.root.status.is_satisfiable:
            return
        emitted = 0
        # Statuses do not change during enumeration, so each node's
        # satisfiable-edge list is computed once per pass instead of
        # once per partial view that revisits the node.
        satisfiable_memo: dict[int, list[PolicyEdge]] = {}

        def edges_of(node_id: int) -> list[PolicyEdge]:
            edges = satisfiable_memo.get(node_id)
            if edges is None:
                edges = self.satisfiable_edges(node_id)
                satisfiable_memo[node_id] = edges
            return edges

        def expand(
            node_ids: tuple[int, ...], chosen: dict[int, int]
        ) -> Iterator[dict[int, int]]:
            if not node_ids:
                yield dict(chosen)
                return
            head, rest = node_ids[0], node_ids[1:]
            node = self.node(head)
            if node.status is NodeStatus.DELIVERABLE:
                yield from expand(rest, chosen)
                return
            for edge in edges_of(head):
                chosen[head] = edge.edge_id
                yield from expand(rest + edge.children, chosen)
                del chosen[head]

        for mapping in expand((self.root_id,), {}):
            if obs_enabled():
                obs_count("tree.views_enumerated")
            yield View(self, mapping)
            emitted += 1
            if emitted >= limit:
                return
