"""The sans-IO core of the Trust-X negotiation protocol.

:class:`NegotiationCore` is a pure state machine: it owns the
negotiation tree, the transcript, and the message accounting, but it
never holds an agent reference, never performs crypto, and never
blocks.  Every decision that requires a party's private state (which
credentials satisfy a term, which policies protect a resource, whether
a disclosure verifies) is *requested* from the driver as an
:class:`AgentOp` effect: :meth:`NegotiationCore.run` is a generator
that yields effects and receives their results via ``send()``, finally
returning the :class:`~repro.negotiation.outcomes.NegotiationResult`.

One core backs every driver:

- the synchronous :class:`~repro.negotiation.engine.NegotiationEngine`
  (:func:`drive` — fulfil each effect inline);
- the asyncio driver (:func:`repro.services.aio.anegotiate` — fulfil
  each effect, then cooperatively yield to the event loop so thousands
  of negotiations interleave turn-wise on one thread).

Protocol errors raised while fulfilling an effect are delivered back
with ``generator.throw()`` so the core can convert the
:class:`~repro.errors.StrategyError` cases into failure results at
exactly the points the protocol defines, and so any other exception
unwinds the core's open observability spans before propagating.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Generator, Optional

from repro.errors import CredentialRevokedError, StrategyError
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    event as obs_event,
    observe as obs_observe,
    span as obs_span,
)
from repro.negotiation.outcomes import (
    FailureReason,
    NegotiationResult,
    TranscriptEvent,
)
from repro.negotiation.sequence import TrustSequence
from repro.negotiation.tree import NegotiationTree, NodeStatus, TreeNode
from repro.trust import trust_epoch

__all__ = [
    "AgentOp",
    "NegotiationCore",
    "DEFAULT_NEGOTIATION_TIME",
    "perform_agent_op",
    "drive",
    "record_outcome_obs",
    "OP_ENSURE_STRATEGY",
    "OP_STRATEGY",
    "OP_RELEASES_FREELY",
    "OP_POLICIES_PROTECTING",
    "OP_CANDIDATES_FOR",
    "OP_PROFILE_GET",
    "OP_ISSUE_CHALLENGE",
    "OP_MAKE_DISCLOSURE",
    "OP_VERIFY_DISCLOSURE",
    "OP_PREWARM_VERIFICATION",
    "OP_ENSURE_NOT_REVOKED",
]

#: Deterministic default negotiation timestamp (paper-era).
DEFAULT_NEGOTIATION_TIME = datetime(2010, 3, 1, 12, 0, 0)

# The effect vocabulary.  Every op except the three resolved against
# agent sub-objects maps 1:1 onto a TrustXAgent method of the same name.
OP_ENSURE_STRATEGY = "ensure_strategy_supported"
OP_STRATEGY = "strategy"
OP_RELEASES_FREELY = "releases_freely"
OP_POLICIES_PROTECTING = "policies_protecting"
OP_CANDIDATES_FOR = "candidates_for"
OP_PROFILE_GET = "profile_get"
OP_ISSUE_CHALLENGE = "issue_challenge"
OP_MAKE_DISCLOSURE = "make_disclosure"
OP_VERIFY_DISCLOSURE = "verify_disclosure"
OP_PREWARM_VERIFICATION = "prewarm_verification"
OP_ENSURE_NOT_REVOKED = "ensure_disclosure_not_revoked"


@dataclass(frozen=True)
class AgentOp:
    """One effect the core asks its driver to fulfil.

    ``party`` names the agent that must act; ``op`` is one of the
    ``OP_*`` constants; ``args`` are the call arguments.  The driver
    answers with the operation's return value (``generator.send``) or
    delivers the exception it raised (``generator.throw``).
    """

    party: str
    op: str
    args: tuple = ()


def perform_agent_op(agents: dict, op: AgentOp) -> Any:
    """Fulfil one :class:`AgentOp` against in-process agents.

    Shared by the sync and asyncio drivers so the effect vocabulary is
    interpreted identically everywhere.
    """
    agent = agents.get(op.party)
    if agent is None:
        raise StrategyError(f"unknown party {op.party!r}")
    if op.op == OP_STRATEGY:
        return agent.strategy
    if op.op == OP_PROFILE_GET:
        return agent.profile.get(op.args[0])
    if op.op == OP_ISSUE_CHALLENGE:
        return agent.validator.issue_challenge()
    return getattr(agent, op.op)(*op.args)


def drive(
    gen: Generator[AgentOp, Any, NegotiationResult], agents: dict
) -> NegotiationResult:
    """Run a core generator to completion, fulfilling effects inline."""
    reply: Any = None
    exc: Optional[BaseException] = None
    while True:
        try:
            effect = gen.throw(exc) if exc is not None else gen.send(reply)
        except StopIteration as stop:
            return stop.value
        reply, exc = None, None
        try:
            reply = perform_agent_op(agents, effect)
        except Exception as error:
            exc = error


def record_outcome_obs(resource: str, result: NegotiationResult) -> None:
    """Record the per-negotiation counters every driver shares."""
    obs_count("negotiation.runs")
    obs_count(
        "negotiation.successes" if result.success
        else "negotiation.failures"
    )
    obs_observe("negotiation.policy_messages", result.policy_messages)
    obs_observe("negotiation.exchange_messages", result.exchange_messages)
    obs_observe("negotiation.disclosures", result.disclosures)
    if result.tree is not None:
        obs_observe("negotiation.tree_nodes", len(result.tree))
        obs_observe(
            "negotiation.tree_depth",
            max((node.depth for node in result.tree.nodes()), default=0),
        )
    if not result.success:
        obs_event(
            "negotiation.failure",
            resource=resource,
            reason=(
                result.failure_reason.value
                if result.failure_reason else ""
            ),
            detail=result.failure_detail,
        )


@dataclass
class NegotiationCore:
    """The protocol state machine for one negotiation.

    Parties are identified by *name* only; the driver resolves names to
    agents when fulfilling effects.  Per-run state (tree, transcript,
    selected view) is rebuilt by :meth:`run` and stays readable
    afterwards for introspection.
    """

    requester: str
    controller: str
    max_depth: int = 16
    max_nodes: int = 512
    view_limit: int = 64
    view_selection: str = "first"
    #: Batch-verify the issuer signatures of a trust sequence's full
    #: credentials in one vectorized pass (warming
    #: :data:`repro.perf.SIGNATURE_CACHE`) before stepping the
    #: exchange.  Results are bit-identical with the per-step path;
    #: only the wall-clock cost of the RSA checks changes.
    batch_verify: bool = True

    # Per-run state, rebuilt by run().
    tree: NegotiationTree = field(init=False, repr=False, default=None)
    transcript: list = field(init=False, repr=False, default_factory=list)

    def _counterpart(self, party: str) -> str:
        return self.controller if party == self.requester else self.requester

    def _log(self, phase: str, actor: str, action: str, detail: str = "") -> None:
        self.transcript.append(TranscriptEvent(phase, actor, action, detail))

    # ------------------------------------------------------------------ run --

    def run(
        self, resource: str, at: Optional[datetime] = None
    ) -> Generator[AgentOp, Any, NegotiationResult]:
        """Negotiate the release of ``resource`` held by the controller.

        A generator: yields :class:`AgentOp` effects, returns the
        :class:`NegotiationResult` via ``StopIteration.value``.
        """
        at = at or DEFAULT_NEGOTIATION_TIME
        self.tree = NegotiationTree(resource, self.controller)
        self._edge_credentials: dict[int, str] = {}
        self._fallback_credentials: dict[int, str] = {}
        self.transcript = []
        self._strategies: dict[str, Any] = {}
        if self.requester == self.controller:
            return self._failure(
                resource, FailureReason.PROTOCOL,
                "requester and controller must be distinct parties", 0,
            )

        try:
            yield AgentOp(self.requester, OP_ENSURE_STRATEGY)
            yield AgentOp(self.controller, OP_ENSURE_STRATEGY)
        except StrategyError as exc:
            return self._failure(
                resource, FailureReason.STRATEGY_VIOLATION, str(exc), 0
            )
        # Strategies are fixed for the duration of one negotiation;
        # fetching them once up front keeps the core's later reads
        # consistent even if a driver swaps agent strategies between
        # interleaved runs (the asyncio service clones instead, but the
        # core should not depend on that).
        self._strategies[self.requester] = (
            yield AgentOp(self.requester, OP_STRATEGY)
        )
        self._strategies[self.controller] = (
            yield AgentOp(self.controller, OP_STRATEGY)
        )

        policy_messages, budget_hit = yield from self._policy_phase(resource)
        with obs_span("tn.tree_propagate") as propagate_span:
            satisfiable = self.tree.propagate()
            propagate_span.set(
                nodes=len(self.tree), satisfiable=satisfiable
            )
        if not satisfiable:
            reason = (
                FailureReason.BUDGET_EXHAUSTED
                if budget_hit
                else FailureReason.NO_TRUST_SEQUENCE
            )
            return self._failure(
                resource,
                reason,
                "no satisfiable view of the negotiation tree",
                policy_messages,
            )

        # Statuses are final once propagate() returns, so the per-node
        # fallback credential (first satisfiable edge carrying one) can
        # be computed once here instead of re-scanning satisfiable_edges
        # for every node of every view enumerated below.
        self._build_fallback_credentials()

        with obs_span(
            "tn.view_selection", mode=self.view_selection
        ) as view_span:
            view = yield from self._select_view()
            self._view = view
            sequence = TrustSequence.from_view(
                view, lambda node: self._credential_in_view(view, node)
            )
            view_span.set(steps=len(sequence))
        self._log(
            "policy",
            self.controller,
            "trust-sequence",
            f"{len(sequence)} steps",
        )

        both_eager = (
            self._strategies[self.requester].eager_disclosure
            and self._strategies[self.controller].eager_disclosure
        )
        if not both_eager:
            # SequenceProposal + SequenceAccept handshake.
            policy_messages += 2
            self._log("policy", self.controller, "sequence-proposal")
            self._log("policy", self.requester, "sequence-accept")

        return (yield from self._exchange_phase(
            resource, sequence, at, policy_messages
        ))

    # --------------------------------------------------- policy evaluation --

    def _policy_phase(self, resource: str):
        """Grow the tree; returns (policy message count, budget hit).

        Observability: the whole phase is one ``tn.policy_phase`` span;
        each breadth-first *round* (one tree depth level) nests a
        ``tn.tree_round`` span recording how far the tree grew.
        """
        messages = 1  # the opening ResourceRequest
        self._log(
            "policy", self.requester, "request", resource
        )
        budget_hit = False
        queue: deque[int] = deque([self.tree.root_id])
        round_span = None
        round_depth: Optional[int] = None
        with obs_span("tn.policy_phase", resource=resource) as phase_span:
            try:
                while queue:
                    node = self.tree.node(queue.popleft())
                    owner = node.owner
                    other = self._counterpart(owner)
                    if obs_enabled() and node.depth != round_depth:
                        if round_span is not None:
                            round_span.set(nodes=len(self.tree))
                            round_span.__exit__(None, None, None)
                        round_depth = node.depth
                        round_span = obs_span(
                            "tn.tree_round", depth=node.depth
                        )
                        round_span.__enter__()
                    if node.depth >= self.max_depth \
                            or len(self.tree) > self.max_nodes:
                        node.status = NodeStatus.UNSATISFIABLE
                        budget_hit = True
                        self._log(
                            "policy", owner, "budget-cutoff", node.label
                        )
                        continue
                    if node.is_root:
                        messages += yield from self._expand_root(
                            node, owner, other, queue
                        )
                    else:
                        messages += yield from self._expand_term(
                            node, owner, other, queue
                        )
            finally:
                if round_span is not None:
                    round_span.set(nodes=len(self.tree))
                    round_span.__exit__(None, None, None)
            phase_span.set(
                messages=messages, budget_hit=budget_hit,
                nodes=len(self.tree),
            )
        return messages, budget_hit

    def _expand_root(
        self,
        node: TreeNode,
        owner: str,
        other: str,
        queue: deque[int],
    ):
        if (yield AgentOp(owner, OP_RELEASES_FREELY, (node.label,))):
            node.status = NodeStatus.DELIVERABLE
            self._log("policy", owner, "deliverable", node.label)
            return 0
        policies = yield AgentOp(
            owner, OP_POLICIES_PROTECTING, (node.label,)
        )
        return self._attach_policies(node, owner, other, policies, queue)

    def _expand_term(
        self,
        node: TreeNode,
        owner: str,
        other: str,
        queue: deque[int],
    ):
        candidates = yield AgentOp(owner, OP_CANDIDATES_FOR, (node.term,))
        if not candidates:
            node.status = NodeStatus.UNSATISFIABLE
            self._log("policy", owner, "not-possess", node.label)
            return 1  # the NotPossess notice
        # Prefer a candidate the owner can release freely.
        for credential in candidates:
            if (yield AgentOp(
                owner, OP_RELEASES_FREELY, (credential.cred_type,)
            )):
                node.status = NodeStatus.DELIVERABLE
                node.credential_id = credential.cred_id
                self._log(
                    "policy", owner, "deliverable", credential.cred_type
                )
                return 0
        # Otherwise expand the policies of each distinct candidate type.
        messages = 0
        seen_types: set[str] = set()
        for credential in candidates:
            if credential.cred_type in seen_types:
                continue
            seen_types.add(credential.cred_type)
            policies = yield AgentOp(
                owner, OP_POLICIES_PROTECTING, (credential.cred_type,)
            )
            messages += self._attach_policies(
                node, owner, other, policies, queue, credential.cred_id
            )
        if not self.tree.edges_from(node.node_id):
            node.status = NodeStatus.UNSATISFIABLE
        return messages

    def _attach_policies(
        self,
        node: TreeNode,
        owner: str,
        other: str,
        policies,
        queue: deque[int],
        credential_id: Optional[str] = None,
    ) -> int:
        """Add one edge per alternative policy; returns message cost.

        A strong-suspicious owner sends alternatives one message at a
        time; everyone else bundles them in a single PolicyMessage.
        """
        expandable = [policy for policy in policies if not policy.is_delivery]
        if not expandable:
            return 0
        path = self.tree.path_labels(node.node_id)
        for policy in expandable:
            edge = self.tree.add_policy_edge(node.node_id, policy, other)
            if credential_id is not None:
                self._edge_credentials[edge.edge_id] = credential_id
            self._log(
                "policy", owner, "policy", policy.dsl()
            )
            for child_id in edge.children:
                child = self.tree.node(child_id)
                if f"{other}:{child.label}" in path:
                    # Cyclic requirement: requesting again what is
                    # already pending on this path cannot progress.
                    child.status = NodeStatus.UNSATISFIABLE
                    self._log(
                        "policy", other, "cycle-pruned", child.label
                    )
                else:
                    queue.append(child_id)
        if self._strategies[owner].hides_policies:
            return len(expandable)
        return 1

    def _build_fallback_credentials(self) -> None:
        """Precompute, for every node satisfied through an edge, the
        credential of its first satisfiable edge (insertion order —
        the same edge the old per-call scan would have found)."""
        self._fallback_credentials = {}
        if not self._edge_credentials:
            return
        for node in self.tree.nodes():
            if node.is_root or node.credential_id is not None:
                continue
            for edge in self.tree.satisfiable_edges(node.node_id):
                credential_id = self._edge_credentials.get(edge.edge_id)
                if credential_id is not None:
                    self._fallback_credentials[node.node_id] = credential_id
                    break

    def _credential_for(self, node: TreeNode) -> Optional[str]:
        if node.is_root:
            return node.credential_id  # usually None: grant, not disclosure
        if node.credential_id is not None:
            return node.credential_id
        # Satisfied through an edge: the credential tied to that edge.
        return self._fallback_credentials.get(node.node_id)

    def _credential_in_view(self, view, node: TreeNode) -> Optional[str]:
        """Like :meth:`_credential_for`, but honouring the view's own
        edge choices (different views may satisfy a node through
        different candidate credentials)."""
        if node.is_root:
            return node.credential_id
        if node.credential_id is not None:
            return node.credential_id
        edge_id = view.chosen_edges.get(node.node_id)
        if edge_id is not None:
            credential_id = self._edge_credentials.get(edge_id)
            if credential_id is not None:
                return credential_id
        return self._credential_for(node)

    def _view_cost(self, view):
        """(disclosure count, summed sensitivity) of a view."""
        disclosures = 0
        sensitivity = 0
        for node in view.disclosure_order():
            if node.is_root:
                continue
            credential_id = self._credential_in_view(view, node)
            if credential_id is None:
                continue
            credential = yield AgentOp(
                node.owner, OP_PROFILE_GET, (credential_id,)
            )
            disclosures += 1
            sensitivity += int(credential.sensitivity)
        return disclosures, sensitivity

    def _select_view(self):
        if self.view_selection == "first":
            return self.tree.first_view()
        if self.view_selection not in ("min_disclosure", "min_sensitivity"):
            raise StrategyError(
                f"unknown view selection {self.view_selection!r}"
            )
        best = None
        best_cost = None
        for view in self.tree.iter_views(limit=self.view_limit):
            disclosures, sensitivity = yield from self._view_cost(view)
            cost = (
                (disclosures, sensitivity)
                if self.view_selection == "min_disclosure"
                else (sensitivity, disclosures)
            )
            if best_cost is None or cost < best_cost:
                best, best_cost = view, cost
        if best is None:  # pragma: no cover - propagate() guards this
            return self.tree.first_view()
        self._log(
            "policy", self.controller, "view-selected",
            f"{self.view_selection}: cost={best_cost}",
        )
        return best

    # -------------------------------------------------- credential exchange --

    def _exchange_phase(
        self,
        resource: str,
        sequence: TrustSequence,
        at: datetime,
        policy_messages: int,
    ):
        with obs_span(
            "tn.exchange_phase", steps=len(sequence)
        ) as exchange_span:
            return (yield from self._exchange_steps(
                resource, sequence, at, policy_messages, exchange_span
            ))

    def _prewarm_sequence(self, sequence: TrustSequence):
        """Prefetch the sequence's full-credential disclosures and batch
        their issuer-signature checks, one vectorized pass per receiver.

        The verdicts land in :data:`repro.perf.SIGNATURE_CACHE`, so the
        per-step ``verify_disclosure`` below hits the cache instead of
        re-running RSA one call at a time.  Selective presentations are
        excluded (their verification is structural, over commitments,
        not a bare issuer-signature check) and ownership proofs are
        never prewarmed (fresh nonce per challenge).  Per-step
        semantics, ordering, and failure behaviour are unchanged.
        """
        step_credentials: dict[int, Any] = {}
        groups = sequence.batch_plan(
            skip=lambda step: (
                self._strategies[step.discloser].minimal_disclosure
            )
        )
        for discloser in sorted(groups):
            receiver = self._counterpart(discloser)
            batch = []
            for index, step in groups[discloser]:
                credential = yield AgentOp(
                    discloser, OP_PROFILE_GET, (step.credential_id,)
                )
                step_credentials[index] = credential
                batch.append(credential)
            prewarmed = yield AgentOp(
                receiver, OP_PREWARM_VERIFICATION, (tuple(batch),)
            )
            if prewarmed:
                obs_count("negotiation.batch_verified", prewarmed)
        return step_credentials

    def _recheck_retractions(self, epoch: int, accepted):
        """Re-verify accepted credentials when the trust epoch advanced.

        ``accepted`` holds ``(receiver, effective credential)`` for
        every disclosure verified so far this negotiation.  When
        :func:`repro.trust.trust_epoch` still equals ``epoch`` nothing
        was retracted anywhere in the process and the check is one
        integer compare; when it advanced, each receiver re-checks the
        credentials it accepted against its (now updated) revocation
        registry — the driver delivers the resulting
        :class:`~repro.errors.CredentialRevokedError` back into the
        core.  Returns the epoch the recheck is current as of.
        """
        current = trust_epoch()
        if current == epoch:
            return epoch
        obs_count("negotiation.revocation_rechecks")
        self._log(
            "exchange", self.controller, "revocation-recheck",
            f"trust epoch {epoch} -> {current}: "
            f"{len(accepted)} accepted disclosure(s)",
        )
        for receiver, credential in accepted:
            yield AgentOp(receiver, OP_ENSURE_NOT_REVOKED, (credential,))
        return current

    def _exchange_steps(
        self,
        resource: str,
        sequence: TrustSequence,
        at: datetime,
        policy_messages: int,
        exchange_span,
    ):
        exchange_messages = 0
        disclosed_requester: list[str] = []
        disclosed_controller: list[str] = []
        accepted_credentials: list[tuple[str, Any]] = []
        epoch = trust_epoch()
        step_credentials: dict[int, Any] = {}
        if self.batch_verify:
            step_credentials = yield from self._prewarm_sequence(sequence)
        # Group-condition bookkeeping: which edge each disclosed node
        # belongs to, and what its receiver effectively learned.
        edge_of_child: dict[int, int] = {}
        for node_id, edge_id in self._view.chosen_edges.items():
            for child in self.tree.edge(edge_id).children:
                edge_of_child[child] = edge_id
        received_per_edge: dict[int, list] = {}
        for index, step in enumerate(sequence.steps):
            try:
                epoch = yield from self._recheck_retractions(
                    epoch, accepted_credentials
                )
            except CredentialRevokedError as exc:
                return self._failure(
                    resource,
                    FailureReason.CREDENTIAL_REVOKED,
                    str(exc),
                    policy_messages,
                    exchange_messages,
                    disclosed_requester,
                    disclosed_controller,
                )
            if step.is_grant:
                exchange_messages += 1  # the ResourceGrant
                self._log(
                    "exchange", self.controller, "grant", resource
                )
                continue
            discloser = step.discloser
            receiver = self._counterpart(discloser)
            credential = step_credentials.get(index)
            if credential is None:
                credential = yield AgentOp(
                    discloser, OP_PROFILE_GET, (step.credential_id,)
                )
            nonce = yield AgentOp(receiver, OP_ISSUE_CHALLENGE)
            try:
                disclosure = yield AgentOp(
                    discloser, OP_MAKE_DISCLOSURE,
                    (step.node.node_id, credential, step.node.term, nonce),
                )
            except StrategyError as exc:
                return self._failure(
                    resource,
                    FailureReason.STRATEGY_VIOLATION,
                    str(exc),
                    policy_messages,
                    exchange_messages,
                )
            exchange_messages += 1
            with obs_span(
                "tn.verify", cred_type=credential.cred_type
            ) as verify_span:
                accepted, reason, effective = yield AgentOp(
                    receiver, OP_VERIFY_DISCLOSURE,
                    (disclosure, step.node.term, at, nonce),
                )
                verify_span.set(accepted=accepted, reason=reason)
            if obs_enabled():
                obs_count("negotiation.disclosures_verified")
                obs_event(
                    "credential.disclosed",
                    sensitivity=int(credential.sensitivity),
                    discloser=discloser,
                    receiver=receiver,
                    cred_type=credential.cred_type,
                    accepted=accepted,
                    attributes={
                        attr.name: attr.value
                        for attr in credential.attributes
                    },
                )
            self._log(
                "exchange",
                discloser,
                "disclose" if accepted else "disclose-rejected",
                f"{credential.cred_type} ({reason})",
            )
            if not accepted:
                return self._failure(
                    resource,
                    FailureReason.CREDENTIAL_REJECTED,
                    f"{credential.cred_type!r}: {reason}",
                    policy_messages,
                    exchange_messages,
                    disclosed_requester,
                    disclosed_controller,
                )
            if not self._strategies[receiver].eager_disclosure:
                exchange_messages += 1  # the DisclosureAck
            accepted_credentials.append(
                (receiver, effective if effective is not None else credential)
            )
            if discloser == self.requester:
                disclosed_requester.append(credential.cred_id)
            else:
                disclosed_controller.append(credential.cred_id)
            # Group conditions: once every child of an edge has been
            # disclosed, the edge's policy owner checks the set-level
            # constraints over what was effectively learned.
            edge_id = edge_of_child.get(step.node.node_id)
            if edge_id is not None:
                received = received_per_edge.setdefault(edge_id, [])
                received.append(effective)
                edge = self.tree.edge(edge_id)
                if (
                    edge.policy.group_conditions
                    and len(received) == len(edge.children)
                ):
                    violated = [
                        cond.dsl()
                        for cond in edge.policy.group_conditions
                        if not cond.evaluate(received)
                    ]
                    if violated:
                        return self._failure(
                            resource,
                            FailureReason.CREDENTIAL_REJECTED,
                            "group condition(s) violated: "
                            + ", ".join(violated),
                            policy_messages,
                            exchange_messages,
                            disclosed_requester,
                            disclosed_controller,
                        )
        # A retraction may land between the last verification and the
        # grant (each yield is an await point under the asyncio driver);
        # success must not be returned on trust that no longer holds.
        try:
            epoch = yield from self._recheck_retractions(
                epoch, accepted_credentials
            )
        except CredentialRevokedError as exc:
            return self._failure(
                resource,
                FailureReason.CREDENTIAL_REVOKED,
                str(exc),
                policy_messages,
                exchange_messages,
                disclosed_requester,
                disclosed_controller,
            )
        exchange_span.set(messages=exchange_messages)
        return NegotiationResult(
            resource=resource,
            requester=self.requester,
            controller=self.controller,
            success=True,
            tree=self.tree,
            sequence=tuple(step.node for step in sequence.steps),
            transcript=tuple(self.transcript),
            policy_messages=policy_messages,
            exchange_messages=exchange_messages,
            disclosed_by_requester=tuple(disclosed_requester),
            disclosed_by_controller=tuple(disclosed_controller),
        )

    # ------------------------------------------------------------- failures --

    def _failure(
        self,
        resource: str,
        reason: FailureReason,
        detail: str,
        policy_messages: int,
        exchange_messages: int = 0,
        disclosed_requester: Optional[list[str]] = None,
        disclosed_controller: Optional[list[str]] = None,
    ) -> NegotiationResult:
        self._log("exchange", self.controller, "failure", detail)
        return NegotiationResult(
            resource=resource,
            requester=self.requester,
            controller=self.controller,
            success=False,
            failure_reason=reason,
            failure_detail=detail,
            tree=self.tree,
            transcript=tuple(self.transcript),
            policy_messages=policy_messages,
            exchange_messages=exchange_messages,
            disclosed_by_requester=tuple(disclosed_requester or ()),
            disclosed_by_controller=tuple(disclosed_controller or ()),
        )
