"""Rendering negotiation trees (paper Fig. 2).

Two output forms for inspecting a negotiation's tree:

- :func:`render_ascii` — an indented text tree showing node owners,
  statuses, alternative edges, and multiedge grouping;
- :func:`render_dot` — Graphviz DOT, with multiedges drawn as the
  paper's Fig. 2 does (one junction point fanning out to the grouped
  terms).
"""

from __future__ import annotations

from repro.negotiation.tree import EdgeKind, NegotiationTree, NodeStatus

__all__ = ["render_ascii", "render_dot"]

_STATUS_MARK = {
    NodeStatus.OPEN: "?",
    NodeStatus.DELIVERABLE: "D",
    NodeStatus.SATISFIABLE: "S",
    NodeStatus.UNSATISFIABLE: "X",
}


def render_ascii(tree: NegotiationTree) -> str:
    """Indented text rendering, root first.

    Each node line shows ``label [owner] (status)``; each outgoing
    edge is introduced by the policy it came from, with ``alt N``
    marking alternatives and ``multi`` marking multiedges.
    """
    lines: list[str] = []

    def visit(node_id: int, indent: int) -> None:
        node = tree.node(node_id)
        prefix = "  " * indent
        lines.append(
            f"{prefix}{node.label} [{node.owner}] "
            f"({_STATUS_MARK[node.status]})"
        )
        for alt_index, edge in enumerate(tree.edges_from(node_id)):
            marker = "multi" if edge.kind is EdgeKind.MULTI else "simple"
            lines.append(
                f"{prefix}  alt {alt_index} ({marker}): {edge.policy.dsl()}"
            )
            for child in edge.children:
                visit(child, indent + 2)

    visit(tree.root_id, 0)
    return "\n".join(lines)


def render_dot(tree: NegotiationTree) -> str:
    """Graphviz DOT rendering.

    Nodes are boxes coloured by status; a multiedge goes through a
    small junction node so its grouped children are visually tied
    together, as in Fig. 2.
    """
    colours = {
        NodeStatus.OPEN: "lightgray",
        NodeStatus.DELIVERABLE: "palegreen",
        NodeStatus.SATISFIABLE: "lightblue",
        NodeStatus.UNSATISFIABLE: "lightcoral",
    }
    lines = [
        "digraph negotiation_tree {",
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="Helvetica"];',
    ]
    for node in tree.nodes():
        label = f"{node.label}\\n[{node.owner}]"
        lines.append(
            f'  n{node.node_id} [label="{label}", '
            f'fillcolor="{colours[node.status]}"];'
        )
    for edge in tree.edges():
        if edge.kind is EdgeKind.SIMPLE:
            lines.append(
                f"  n{edge.parent} -> n{edge.children[0]} "
                f'[label="alt"];'
            )
        else:
            junction = f"j{edge.edge_id}"
            lines.append(
                f'  {junction} [shape=point, width=0.08, label=""];'
            )
            lines.append(f'  n{edge.parent} -> {junction} [label="multi"];')
            for child in edge.children:
                lines.append(f"  {junction} -> n{child};")
    lines.append("}")
    return "\n".join(lines)
