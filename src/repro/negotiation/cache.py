"""Trust-sequence caching for recurring negotiations.

Trust-X "is well suited for short and efficient negotiations" (paper
Section 1), and the operation phase of a long-lasting VO re-runs the
same negotiations — e.g. the periodic re-verification of a quality
certificate (Section 5.1).  Sequence caching, part of the Trust-X
design (Bertino, Ferrari, Squicciarini, TKDE 2004), makes those
re-runs cheap:

- after a successful negotiation, the executed trust sequence (who
  disclosed which credential for which requirement) is cached under
  ``(requester, controller, resource)``;
- a later negotiation for the same key *replays* the cached sequence:
  the policy-evaluation phase is skipped entirely and each cached
  credential is re-verified (signature, validity, revocation,
  ownership) and re-checked against its term;
- any failure — an expired or revoked credential, a changed profile, a
  policy now unsatisfied — invalidates the entry and falls back to a
  full negotiation.

Each cached sequence also records its *provenance*: the ``(issuer,
serial)`` pairs of the credentials it replays.  Every cache registers
itself with :mod:`repro.trust` on construction, so a retraction event
evicts exactly the sequences built on a now-revoked credential
(:meth:`SequenceCache.invalidate_retracted`) instead of waiting for a
replay to stumble over the revocation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.negotiation.agent import TrustXAgent
from repro.negotiation.engine import (
    DEFAULT_NEGOTIATION_TIME,
    NegotiationEngine,
    negotiate,
)
from repro.negotiation.outcomes import NegotiationResult, TranscriptEvent
from repro.obs import count as obs_count, span as obs_span
from repro.policy.terms import Term
from repro.trust import register_sequence_cache

__all__ = ["CachedStep", "SequenceCache", "CachingNegotiator"]


@dataclass(frozen=True)
class CachedStep:
    """One disclosure of a cached trust sequence."""

    discloser: str
    credential_id: str
    term: Optional[Term]


@dataclass(frozen=True)
class CachedSequence:
    requester: str
    controller: str
    resource: str
    steps: tuple[CachedStep, ...]
    cached_at: datetime
    #: ``(issuer, serial)`` of every credential the sequence replays —
    #: the hook a retraction event uses to evict exactly the sequences
    #: it contradicts.  Empty when the storer could not resolve the
    #: disclosed credentials (replay re-verification still catches the
    #: revocation, just one negotiation later).
    provenance: frozenset[tuple[str, int]] = frozenset()


@dataclass(eq=False)  # identity semantics: caches live in a weak registry
class SequenceCache:
    """Per-party (or shared, in this in-process simulation) cache.

    Bounded: at most ``capacity`` sequences are retained, with
    least-recently-used eviction — the operation phase of a VO serving
    "millions of users" re-runs a hot subset of negotiations, and an
    unbounded cache would grow with the *distinct* key population
    instead.  Evictions are counted separately from invalidations
    (an eviction says the cache is too small; an invalidation says the
    world changed).
    """

    _entries: "OrderedDict[tuple[str, str, str], CachedSequence]" = field(
        default_factory=OrderedDict
    )
    capacity: int = 1024
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(
                f"sequence cache capacity must be >= 1, got {self.capacity}"
            )
        if not isinstance(self._entries, OrderedDict):
            self._entries = OrderedDict(self._entries)
        self._lock = threading.Lock()
        register_sequence_cache(self)

    @staticmethod
    def _key(requester: str, controller: str, resource: str):
        return (requester, controller, resource)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (size plus all four event counters)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }

    def store(
        self,
        result: NegotiationResult,
        agents: Optional[dict[str, TrustXAgent]] = None,
    ) -> Optional[CachedSequence]:
        """Cache a successful negotiation's executed sequence.

        Pass the participating ``agents`` (name-keyed) so the entry
        records the ``(issuer, serial)`` provenance of each disclosed
        credential, making it evictable by a retraction event.
        """
        if not result.success or result.tree is None:
            return None
        steps = []
        for node in result.sequence:
            if node.is_root:
                continue
            credential_id = node.credential_id
            if credential_id is None:
                # Credential chosen through an edge: recover it from the
                # per-side disclosure lists by position.
                continue
            steps.append(
                CachedStep(node.owner, credential_id, node.term)
            )
        # Fall back to disclosure lists when node-level ids are absent.
        if len(steps) != len(result.sequence) - 1:
            steps = []
            requester_iter = iter(result.disclosed_by_requester)
            controller_iter = iter(result.disclosed_by_controller)
            for node in result.sequence:
                if node.is_root:
                    continue
                source = (
                    requester_iter
                    if node.owner == result.requester
                    else controller_iter
                )
                try:
                    steps.append(CachedStep(node.owner, next(source), node.term))
                except StopIteration:
                    return None
        provenance = set()
        if agents:
            for step in steps:
                discloser = agents.get(step.discloser)
                if discloser is None or step.credential_id not in discloser.profile:
                    continue
                credential = discloser.profile.get(step.credential_id)
                provenance.add((credential.issuer, credential.serial))
        entry = CachedSequence(
            requester=result.requester,
            controller=result.controller,
            resource=result.resource,
            steps=tuple(steps),
            cached_at=DEFAULT_NEGOTIATION_TIME,
            provenance=frozenset(provenance),
        )
        key = self._key(result.requester, result.controller, result.resource)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def lookup(
        self, requester: str, controller: str, resource: str
    ) -> Optional[CachedSequence]:
        key = self._key(requester, controller, resource)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def invalidate(
        self, requester: str, controller: str, resource: str
    ) -> None:
        with self._lock:
            if self._entries.pop(
                self._key(requester, controller, resource), None
            ) is not None:
                self.invalidations += 1

    def invalidate_retracted(
        self, issuer: str, serials: frozenset[int]
    ) -> int:
        """Drop every sequence whose provenance includes a retracted
        credential.  Called by :meth:`repro.trust.TrustBus.retract` on
        every registered cache; returns the number of entries dropped.
        """
        retracted = {(issuer, serial) for serial in serials}
        with self._lock:
            doomed = [
                key for key, entry in self._entries.items()
                if entry.provenance & retracted
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class CachingNegotiator:
    """Negotiation front-end with sequence-cache replay."""

    cache: SequenceCache = field(default_factory=SequenceCache)

    def negotiate(
        self,
        requester: TrustXAgent,
        controller: TrustXAgent,
        resource: str,
        at: Optional[datetime] = None,
        **engine_options,
    ) -> NegotiationResult:
        at = at or DEFAULT_NEGOTIATION_TIME
        cached = self.cache.lookup(requester.name, controller.name, resource)
        if cached is not None:
            with obs_span(
                "tn.replay",
                resource=resource,
                requester=requester.name,
                controller=controller.name,
            ) as replay_span:
                replayed = self._replay(requester, controller, cached, at)
                replay_span.set(replayed=replayed is not None)
            if replayed is not None:
                self.cache.hits += 1
                obs_count("negotiation.cache.replays")
                return replayed
            self.cache.invalidate(requester.name, controller.name, resource)
            obs_count("negotiation.cache.replay_failures")
        self.cache.misses += 1
        obs_count("negotiation.cache.misses")
        result = NegotiationEngine(requester, controller, **engine_options).run(
            resource, at=at
        )
        if result.success:
            self.cache.store(
                result,
                agents={requester.name: requester, controller.name: controller},
            )
        return result

    def _replay(
        self,
        requester: TrustXAgent,
        controller: TrustXAgent,
        cached: CachedSequence,
        at: datetime,
    ) -> Optional[NegotiationResult]:
        """Re-run only the exchange phase over the cached sequence.

        Returns None when replay is impossible (missing credential) or
        any re-verification fails, triggering a full negotiation.
        """
        agents = {requester.name: requester, controller.name: controller}
        transcript = [
            TranscriptEvent("exchange", requester.name, "cache-replay",
                            cached.resource)
        ]
        disclosed_requester: list[str] = []
        disclosed_controller: list[str] = []
        exchange_messages = 0
        for step in cached.steps:
            discloser = agents.get(step.discloser)
            receiver = (
                controller if discloser is requester else requester
            )
            if discloser is None or step.credential_id not in discloser.profile:
                return None
            credential = discloser.profile.get(step.credential_id)
            nonce = receiver.validator.issue_challenge()
            try:
                disclosure = discloser.make_disclosure(
                    -1, credential, step.term, nonce
                )
            except Exception:
                return None
            exchange_messages += 1
            accepted, reason, _ = receiver.verify_disclosure(
                disclosure, step.term, at, nonce
            )
            transcript.append(TranscriptEvent(
                "exchange", discloser.name,
                "disclose" if accepted else "disclose-rejected",
                f"{credential.cred_type} ({reason})",
            ))
            if not accepted:
                return None
            if not receiver.strategy.eager_disclosure:
                exchange_messages += 1
            if discloser is requester:
                disclosed_requester.append(credential.cred_id)
            else:
                disclosed_controller.append(credential.cred_id)
        exchange_messages += 1  # the grant
        transcript.append(TranscriptEvent(
            "exchange", controller.name, "grant", cached.resource
        ))
        return NegotiationResult(
            resource=cached.resource,
            requester=requester.name,
            controller=controller.name,
            success=True,
            transcript=tuple(transcript),
            policy_messages=0,
            exchange_messages=exchange_messages,
            disclosed_by_requester=tuple(disclosed_requester),
            disclosed_by_controller=tuple(disclosed_controller),
        )
