"""The Trust-X negotiation engine (paper Sections 4.1-4.2).

A Trust-X negotiation runs in two phases: a *policy-evaluation phase*
— a bilateral, ordered policy exchange that grows a negotiation tree
until one or more trust sequences satisfying both parties' disclosure
policies are found — and a *credential-exchange phase* that disclosures
credentials in sequence order, verifying each (signature, validity,
revocation, ownership) on receipt.

- :mod:`messages` — the protocol message vocabulary,
- :mod:`tree` — the negotiation tree (simple edges, multiedges, views),
- :mod:`sequence` — trust-sequence extraction from a satisfiable view,
- :mod:`strategies` — trusting / standard / suspicious /
  strong-suspicious,
- :mod:`agent` — the per-party Trust-X agent,
- :mod:`core` — the sans-IO protocol state machine (yields
  :class:`AgentOp` effects; drivers fulfil them),
- :mod:`engine` — the synchronous two-party negotiation driver,
- :mod:`outcomes` — results, transcripts, and the failure taxonomy.
"""

from repro.negotiation.agent import TrustXAgent
from repro.negotiation.cache import CachingNegotiator, SequenceCache
from repro.negotiation.core import AgentOp, NegotiationCore
from repro.negotiation.eager import eager_negotiate
from repro.negotiation.engine import NegotiationEngine, negotiate
from repro.negotiation.outcomes import FailureReason, NegotiationResult
from repro.negotiation.strategies import Strategy
from repro.negotiation.tree import EdgeKind, NegotiationTree, NodeStatus

__all__ = [
    "TrustXAgent",
    "CachingNegotiator",
    "SequenceCache",
    "eager_negotiate",
    "AgentOp",
    "NegotiationCore",
    "NegotiationEngine",
    "negotiate",
    "NegotiationResult",
    "FailureReason",
    "Strategy",
    "NegotiationTree",
    "NodeStatus",
    "EdgeKind",
]
