"""Negotiation strategies.

Trust-X offers "a number of negotiation strategies catering to
different levels of confidentiality" (paper Section 1); the TN Web
service supports "the standard, the strong suspicious, the suspicious
and the trusting negotiation strategies" (Section 6.2).  Each strategy
trades messages and computation against how much a party reveals:

``TRUSTING``
    The most open strategy.  A party discloses a requested credential
    as soon as the counterpart's request arrives, provided its own
    policy for that credential is satisfiable — it does not wait for
    an agreed trust sequence.  Fewest messages, most disclosure.

``STANDARD``
    The two-phase protocol of Section 4.2: the full policy-evaluation
    phase agrees on a trust sequence first, then credentials are
    exchanged in sequence order.  Credential contents are disclosed in
    full.

``SUSPICIOUS``
    Like STANDARD, but credentials are disclosed as *selective
    presentations* that reveal only the attributes the counterpart's
    conditions actually reference; all other attributes stay hidden
    behind hash commitments.  Requires a credential format supporting
    partial hiding — plain X.509 v2 does not (Section 6.3), so a
    suspicious negotiation over X.509 material raises
    :class:`~repro.errors.StrategyError`.

``STRONG_SUSPICIOUS``
    Like SUSPICIOUS, and additionally protects the *policies*
    themselves: policy bodies are abstracted to ontology concepts
    before transmission (hiding which exact credential types the party
    cares about, Section 4.3.1) and alternative policies are revealed
    one at a time instead of all at once.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import StrategyError

__all__ = ["Strategy", "escalated_strategy"]


class Strategy(Enum):
    TRUSTING = "trusting"
    STANDARD = "standard"
    SUSPICIOUS = "suspicious"
    STRONG_SUSPICIOUS = "strong_suspicious"

    # -- behavioural switches -------------------------------------------------

    @property
    def eager_disclosure(self) -> bool:
        """Disclose during the policy phase instead of after agreement."""
        return self is Strategy.TRUSTING

    @property
    def minimal_disclosure(self) -> bool:
        """Disclose via selective presentations (partial hiding)."""
        return self in (Strategy.SUSPICIOUS, Strategy.STRONG_SUSPICIOUS)

    @property
    def hides_policies(self) -> bool:
        """Abstract policies to concepts and reveal alternatives singly."""
        return self is Strategy.STRONG_SUSPICIOUS

    def require_partial_hiding_support(self, format_supports: bool) -> None:
        """Enforce the X.509 restriction of Section 6.3."""
        if self.minimal_disclosure and not format_supports:
            raise StrategyError(
                f"strategy {self.value!r} needs partial hiding of "
                "credential contents, which the credential format does "
                "not support (X.509 v2 restriction)"
            )

    @classmethod
    def parse(cls, text: str) -> "Strategy":
        normalized = text.strip().lower().replace("-", "_").replace(" ", "_")
        for member in cls:
            if member.value == normalized:
                return member
        raise StrategyError(
            f"unknown strategy {text!r}; expected one of "
            f"{[member.value for member in cls]}"
        )


def escalated_strategy(
    current: Strategy, *, supports_partial_hiding: bool
) -> Strategy:
    """The strategy a party adopts after a retraction touched its
    counterparty (nonmonotonic trust: once-established trust was
    withdrawn, so the party reveals less until it is re-established).

    TRUSTING and STANDARD escalate to SUSPICIOUS — but only when the
    party's credential material supports partial hiding; selective
    presentations over plain X.509 would just fail with
    :class:`~repro.errors.StrategyError` (Section 6.3), and an
    escalation that breaks the party's own negotiations protects
    nothing.  The suspicious strategies are already at or above the
    target and stay unchanged.
    """
    if current.minimal_disclosure or not supports_partial_hiding:
        return current
    return Strategy.SUSPICIOUS
