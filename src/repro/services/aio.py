"""The asyncio driver for the sans-IO negotiation core.

The protocol logic lives in
:class:`~repro.negotiation.core.NegotiationCore`, which yields
:class:`~repro.negotiation.core.AgentOp` effects and never blocks.
This module drives that same core from an asyncio event loop:

- :func:`anegotiate` — the async twin of
  :func:`repro.negotiation.engine.negotiate`: fulfils each effect
  inline and cooperatively yields to the loop between protocol turns,
  so thousands of negotiations interleave on one thread.
- :class:`AioSimTransport` — a :class:`SimTransport` whose ``acall``
  awaits coroutine endpoints; constructed ``single_threaded`` so the
  charge-counter lock is a no-op (the event loop serializes charges).
- :class:`AioTNClient` / :class:`AioTNWebService` — async twins of the
  TN client and service.  The service subclasses
  :class:`~repro.services.tn_service.TNWebService` and reuses its
  dispatch prelude/epilogue, billing, checkpointing, and replay
  deduplication verbatim; only the engine invocation is awaited.

Concurrency model: each task runs inside its own
``transport.clock_branch()`` (contextvars make the branch task-local),
so concurrent negotiations each charge latency to a private timeline
exactly like thread-pool workers do — but unlike threads, sessions held
open across ``await`` points cost no stack or lock, which is where the
order-of-magnitude concurrent-session capacity win measured by
``benchmarks/test_bench_async.py`` comes from.

Instead of mutating the shared requester agent's strategy around the
engine run (the sync service's swap/restore, which would race across
``await`` points when tasks share an agent), :meth:`AioTNWebService.
_arun_engine` negotiates with a per-call clone carrying the session's
strategy.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass
from datetime import datetime
from typing import Any, Generator, Optional

from repro.errors import (
    InternalServiceError,
    ReproError,
    ServiceError,
    TransportError,
)
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.cache import CachingNegotiator
from repro.negotiation.core import (
    AgentOp,
    NegotiationCore,
    perform_agent_op,
    record_outcome_obs,
)
from repro.negotiation.outcomes import NegotiationResult
from repro.negotiation.strategies import Strategy
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    span as obs_span,
)
from repro.services.clock import SimClock
from repro.services.tn_client import next_request_id
from repro.services.tn_service import NegotiationSession, TNWebService
from repro.services.transport import LatencyModel, SimTransport

__all__ = [
    "adrive",
    "anegotiate",
    "AioSimTransport",
    "AioTNClient",
    "AioTNWebService",
]

#: Cooperatively yield to the event loop every N fulfilled effects: a
#: long policy phase must not starve sibling negotiations, but yielding
#: on *every* effect would pay a scheduler hop per policy lookup.
_YIELD_EVERY = 8


async def adrive(
    gen: Generator[AgentOp, Any, NegotiationResult],
    agents: dict,
    yield_every: int = _YIELD_EVERY,
) -> NegotiationResult:
    """Async twin of :func:`repro.negotiation.core.drive`.

    Fulfils effects inline (agent calls are pure CPU) and awaits
    ``asyncio.sleep(0)`` every ``yield_every`` effects so concurrent
    negotiations interleave.  Exceptions raised by an effect are thrown
    into the generator exactly like the sync driver does, so span
    context managers inside the core unwind identically.
    """
    reply: Any = None
    exc: Optional[BaseException] = None
    fulfilled = 0
    while True:
        try:
            op = gen.throw(exc) if exc is not None else gen.send(reply)
        except StopIteration as stop:
            return stop.value
        exc = None
        try:
            reply = perform_agent_op(agents, op)
        except Exception as caught:
            reply = None
            exc = caught
        fulfilled += 1
        if fulfilled % yield_every == 0:
            await asyncio.sleep(0)


async def anegotiate(
    requester: TrustXAgent,
    controller: TrustXAgent,
    resource: str,
    at: Optional[datetime] = None,
    **core_options,
) -> NegotiationResult:
    """Run one negotiation on the event loop.

    Same core, same obs wrapper, same outcome recording as
    :meth:`NegotiationEngine.run` — results are bit-identical to the
    sync driver's on the same inputs.
    """
    core = NegotiationCore(
        requester=requester.name,
        controller=controller.name,
        **core_options,
    )
    agents = {requester.name: requester, controller.name: controller}
    if not obs_enabled():
        return await adrive(core.run(resource, at), agents)
    with obs_span(
        "tn.negotiation",
        resource=resource,
        requester=requester.name,
        controller=controller.name,
    ) as root:
        result = await adrive(core.run(resource, at), agents)
        root.set(
            success=result.success,
            policy_messages=result.policy_messages,
            exchange_messages=result.exchange_messages,
        )
    record_outcome_obs(resource, result)
    return result


class AioSimTransport(SimTransport):
    """A latency-modelled transport whose endpoints may be coroutines.

    Always ``single_threaded``: every charge happens on the event-loop
    thread, so the charge-counter lock is elided (see
    :class:`~repro.perf.caches.NullLock`).  Sync endpoints remain
    callable through the inherited :meth:`call`; async endpoints must
    be reached through :meth:`acall` (``call`` fails loudly on them).
    """

    def __init__(self, clock: Optional[SimClock] = None,
                 model: Optional[LatencyModel] = None) -> None:
        super().__init__(clock=clock, model=model, single_threaded=True)

    async def acall(self, url: str, operation: str, payload: dict) -> dict:
        """One SOAP round trip, awaiting coroutine handlers.

        Yields to the event loop before dispatching, so concurrent
        client tasks interleave their protocol turns — which is exactly
        what holds many sessions open at once.
        """
        handler = self._endpoints.get(url)
        if handler is None:
            raise TransportError(f"no endpoint bound at {url!r}")
        await asyncio.sleep(0)
        self.clock.advance(self.model.message_cost())
        with self._calls_lock:
            self._calls += 1
            self._charges.messages += 1
        result = handler(operation, payload)
        if hasattr(result, "__await__"):
            result = await result
        return result


@dataclass
class AioTNClient:
    """Async twin of :class:`~repro.services.tn_client.TNClient`.

    Walks the same three operations in the same order with the same
    idempotency tokens (the requestId counter is shared with the sync
    client, so mixed-driver processes never collide).
    """

    transport: AioSimTransport
    service_url: str
    agent: TrustXAgent
    deadline_ms: Optional[float] = None
    priority: Optional[str] = None

    def _extras(self) -> dict:
        extras: dict = {}
        if self.deadline_ms is not None:
            extras["deadlineMs"] = self.deadline_ms
        if self.priority is not None:
            extras["priority"] = self.priority
        return extras

    async def negotiate(
        self,
        resource: str,
        strategy: Optional[Strategy] = None,
        at: Optional[datetime] = None,
    ) -> NegotiationResult:
        """Run StartNegotiation → PolicyExchange → CredentialExchange."""
        strategy = strategy or self.agent.strategy
        request_id = next_request_id(self.agent.name, resource)
        start = await self.transport.acall(
            self.service_url,
            "StartNegotiation",
            {
                "requester": self.agent,
                "strategy": strategy.value,
                "counterpartUrl": f"urn:repro:{self.agent.name}",
                "requestId": request_id,
                **self._extras(),
            },
        )
        negotiation_id = start.get("negotiationId")
        if not negotiation_id:
            raise ServiceError("StartNegotiation returned no negotiation id")
        await self.transport.acall(
            self.service_url,
            "PolicyExchange",
            {
                "negotiationId": negotiation_id,
                "resource": resource,
                "at": at,
                "clientSeq": 1,
                **self._extras(),
            },
        )
        exchange = await self.transport.acall(
            self.service_url,
            "CredentialExchange",
            {
                "negotiationId": negotiation_id,
                "clientSeq": 2,
                **self._extras(),
            },
        )
        result = exchange.get("result")
        if not isinstance(result, NegotiationResult):
            raise ServiceError("CredentialExchange returned no result")
        return result


class AioTNWebService(TNWebService):
    """A TN Web service dispatched from the event loop.

    Binds an *async* endpoint handler; everything around the engine —
    guards, admission, idempotent replay, billing, checkpoints,
    session TTLs, in-flight accounting — is inherited unchanged from
    :class:`TNWebService` through the shared dispatch prelude and
    epilogue.
    """

    def _endpoint_handler(self):
        return self.ahandle

    async def ahandle(self, operation: str, payload: dict) -> dict:
        if self.hardening is None:
            return await self._ahandle(operation, payload)
        try:
            return await self._ahandle(operation, payload)
        except ReproError:
            raise
        except Exception as exc:
            self.internal_errors += 1
            obs_count("tn_service.internal_errors")
            raise InternalServiceError(
                f"TN service at {self.url!r} failed handling "
                f"{operation!r}: {type(exc).__name__}"
            ) from exc

    async def _ahandle(self, operation: str, payload: dict) -> dict:
        response, session, seq, resource = self._dispatch_prelude(
            operation, payload
        )
        if response is not None:
            return response
        was_terminal = session.terminal
        if operation == "PolicyExchange":
            response = await self.apolicy_exchange(session, payload)
        else:
            response = await self.acredential_exchange(session, payload)
        self._dispatch_epilogue(
            session, operation, seq, resource, response, was_terminal
        )
        return response

    async def apolicy_exchange(
        self, session: NegotiationSession, payload: dict
    ) -> dict:
        with obs_span(
            "tn_service.policy_exchange",
            clock=self.transport.clock,
            session=session.session_id,
            resource=payload.get("resource", ""),
        ):
            obs_count("tn_service.operations.policy_exchange")
            resource = self._policy_resource(payload)
            result = await self._arun_engine(
                session, resource, payload.get("at")
            )
            return self._policy_response(session, result)

    async def acredential_exchange(
        self, session: NegotiationSession, payload: dict
    ) -> dict:
        with obs_span(
            "tn_service.credential_exchange",
            clock=self.transport.clock,
            session=session.session_id,
        ):
            obs_count("tn_service.operations.credential_exchange")
            if self._credential_needs_resume(session):
                await self._arun_engine(
                    session, session.resource or "", session.at
                )
            return self._credential_response(session)

    async def _arun_engine(
        self, session: NegotiationSession, resource: str,
        at: Optional[datetime],
    ) -> NegotiationResult:
        shortcut = self._engine_shortcut(session, resource)
        if shortcut is not None:
            return shortcut
        requester = session.requester
        at = at or session.at or self.transport.clock.now()
        if requester.strategy is not session.strategy:
            # The sync path swaps the shared agent's strategy around the
            # run; across await points that mutation would race with
            # sibling tasks sharing the agent, so negotiate with a
            # per-call clone instead.
            requester = dataclasses.replace(
                requester, strategy=session.strategy
            )
        if self.cache is not None:
            result = await self._acached_negotiate(requester, resource, at)
        else:
            result = await anegotiate(requester, self.owner, resource, at=at)
        return self._engine_commit(session, resource, at, result)

    async def _acached_negotiate(
        self, requester: TrustXAgent, resource: str, at: datetime
    ) -> NegotiationResult:
        """:meth:`CachingNegotiator.negotiate` with the engine awaited.

        Cache replay is pure CPU over in-process agents, so the sync
        ``_replay`` is reused verbatim; only a miss reaches the (async)
        engine.  Counter and obs semantics match the sync path exactly.
        """
        negotiator = CachingNegotiator(self.cache)
        cached = self.cache.lookup(
            requester.name, self.owner.name, resource
        )
        if cached is not None:
            with obs_span(
                "tn.replay",
                resource=resource,
                requester=requester.name,
                controller=self.owner.name,
            ) as replay_span:
                replayed = negotiator._replay(
                    requester, self.owner, cached, at
                )
                replay_span.set(replayed=replayed is not None)
            if replayed is not None:
                self.cache.hits += 1
                obs_count("negotiation.cache.replays")
                return replayed
            self.cache.invalidate(
                requester.name, self.owner.name, resource
            )
            obs_count("negotiation.cache.replay_failures")
        self.cache.misses += 1
        obs_count("negotiation.cache.misses")
        result = await anegotiate(requester, self.owner, resource, at=at)
        if result.success:
            self.cache.store(
                result,
                agents={requester.name: requester, self.owner.name: self.owner},
            )
        return result
