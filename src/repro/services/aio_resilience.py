"""Asyncio driver for the sans-IO resilience core.

:class:`AioResilientTransport` is the async twin of
:class:`~repro.services.resilience.ResilientTransport`: the same
:func:`~repro.services.resilience_core.resilience_call` generator
makes every retry/backoff/deadline/breaker decision, but effects are
fulfilled cooperatively on the event loop —

- ``Attempt`` → ``await inner.acall(...)`` (the endpoint may be a
  coroutine, and sibling tasks interleave at the await point);
- ``Sleep`` → advance the *task-local* clock branch (backoff is
  simulated time charged to this task's private timeline, exactly
  like the sync driver charges its thread's branch) and yield to the
  loop so a backing-off task never starves its siblings;
- ``Fail`` → raise, with cause/context chaining pre-wired by the core.

Per-endpoint :class:`CircuitBreaker` instances are **shared across
tasks** — that is the point: five hundred concurrent sessions hitting
a dead shard should open one breaker once, and when the reset window
elapses exactly one task wins the half-open probe token while the
rest fail fast (the stampede-control fix lives in the core's breaker,
so the sync driver gets it too).  Sharing is safe without locks
because every breaker mutation happens synchronously inside one
generator step — the event loop never preempts between ``allow`` and
the verdict reaching the breaker.

Note on time: breaker timestamps (``opened_at_ms``, reset windows)
are read from whatever clock the calling task sees, which under
``clock_branch()`` is the task's branch.  Branches all start from the
same base timeline, so cross-task breaker state stays coherent to
within one in-flight call's latency — the same tolerance the
thread-pool path always had.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from repro.services.clock import SimClock
from repro.services.resilience_core import (
    Attempt,
    AttemptOutcome,
    CircuitBreaker,
    CircuitBreakerPolicy,
    Fail,
    ResilienceStats,
    RetryPolicy,
    Sleep,
    resilience_call,
)
from repro.services.transport import LatencyModel

__all__ = ["AioResilientTransport"]


@dataclass
class AioResilientTransport:
    """Retry/backoff/circuit-breaker decorator over an async transport.

    Drives :func:`resilience_call` with awaited effects; stats,
    breaker transitions, and exception chaining match the sync driver
    bit-for-bit on the same seed and fault plan (proven by
    ``tests/faults/test_resilience_parity.py``).
    """

    inner: object  # AioSimTransport or an acall-capable decorator
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_policy: CircuitBreakerPolicy = field(
        default_factory=CircuitBreakerPolicy
    )
    #: Simulated-ms budget for one logical call across all attempts;
    #: ``None`` disables the deadline.
    deadline_ms: float | None = 30_000.0
    stats: ResilienceStats = field(default_factory=ResilienceStats)
    _breakers: dict[str, CircuitBreaker] = field(default_factory=dict)

    # -- transport interface (delegation) ------------------------------------------

    @property
    def clock(self):
        return self.inner.clock

    @property
    def base_clock(self) -> SimClock:
        return self.inner.base_clock

    def clock_branch(self, source: Optional[SimClock] = None):
        return self.inner.clock_branch(source)

    @property
    def model(self) -> LatencyModel:
        return self.inner.model

    @property
    def calls(self) -> int:
        return self.inner.calls

    @property
    def charges(self):
        return self.inner.charges

    def bind(self, url: str, handler) -> None:
        self.inner.bind(url, handler)

    def unbind(self, url: str) -> None:
        self.inner.unbind(url)

    def is_bound(self, url: str) -> bool:
        return self.inner.is_bound(url)

    def endpoints(self) -> list[str]:
        return self.inner.endpoints()

    def charge_messages(self, count: int) -> None:
        self.inner.charge_messages(count)

    def charge_db(self, reads: int = 0, writes: int = 0,
                  connect: bool = False) -> None:
        self.inner.charge_db(reads=reads, writes=writes, connect=connect)

    def charge_crypto(self, signs: int = 0, verifies: int = 0) -> None:
        self.inner.charge_crypto(signs=signs, verifies=verifies)

    def charge_ui(self, interactions: int = 1) -> None:
        self.inner.charge_ui(interactions)

    def charge_mail(self, deliveries: int = 1) -> None:
        self.inner.charge_mail(deliveries)

    # -- breakers ---------------------------------------------------------------------

    def breaker(self, url: str) -> CircuitBreaker:
        breaker = self._breakers.get(url)
        if breaker is None:
            breaker = CircuitBreaker(policy=self.breaker_policy)
            self._breakers[url] = breaker
        return breaker

    # -- invocation -------------------------------------------------------------------

    def call(self, url: str, operation: str, payload: dict) -> dict:
        """Sync calls bypass the async driver; fail loudly instead of
        silently skipping resilience."""
        raise TypeError(
            "AioResilientTransport is asyncio-only; await acall(...) "
            "(wrap a sync stack in ResilientTransport instead)"
        )

    async def acall(self, url: str, operation: str, payload: dict) -> dict:
        gen = resilience_call(
            url=url,
            operation=operation,
            payload=payload,
            retry=self.retry,
            breaker=self.breaker(url),
            deadline_ms=self.deadline_ms,
            stats=self.stats,
            started_ms=self.clock.elapsed_ms,
            clock=self.clock,
        )
        try:
            effect = next(gen)
            while True:
                if isinstance(effect, Attempt):
                    try:
                        response = await self.inner.acall(
                            effect.url, effect.operation, effect.payload
                        )
                    except Exception as exc:
                        reply = AttemptOutcome(
                            error=exc, now_ms=self.clock.elapsed_ms
                        )
                    else:
                        reply = AttemptOutcome(
                            response=response, now_ms=self.clock.elapsed_ms
                        )
                    effect = gen.send(reply)
                elif isinstance(effect, Sleep):
                    # Simulated backoff: charge the task's clock branch,
                    # then yield so siblings run during "the wait".
                    self.clock.advance(effect.delay_ms)
                    await asyncio.sleep(0)
                    effect = gen.send(self.clock.elapsed_ms)
                else:  # Fail: terminal, chaining pre-wired by the core
                    gen.close()
                    raise effect.error
        except StopIteration as stop:
            return stop.value
