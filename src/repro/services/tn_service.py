"""The TN Web service (paper Section 6.2).

Exposes the three operations of the prototype:

``StartNegotiation``
    Receives the invoker's strategy, the counterpart reference, and the
    database parameters; opens the database connection, assigns a
    unique negotiation id, and returns it.

``PolicyExchange``
    Runs the policy-evaluation phase: "checks if the database contains
    disclosure policies protecting the credentials requested in the
    counterpart's disclosure policies" and returns them; iterated until
    a trust sequence is (or cannot be) determined.

``CredentialExchange``
    Runs the credential-exchange phase: "verifies the validity of the
    counterpart's credential ... then selects the next credential to be
    sent".

Simulation note: the protocol logic lives in
:class:`~repro.negotiation.engine.NegotiationEngine`; the service runs
the engine when ``PolicyExchange`` is first invoked and then *bills*
each phase's messages, database accesses, and cryptographic operations
to the latency model, so the simulated wall-clock reflects the same
per-message round trips the prototype paid without re-implementing the
protocol at the wire level.

Resilience (this module's additions for partial failure):

- **Idempotency** — ``StartNegotiation`` deduplicates on the client's
  ``requestId``; the phase operations deduplicate on the per-session
  ``clientSeq`` number, replaying the recorded response without
  re-billing.  A retried call whose first delivery *did* execute (a
  lost response) is therefore harmless.
- **Checkpoints** — after every operation the session's durable state
  is written as one XML document into the ``sessions`` collection of
  the :class:`~repro.storage.document_store.XMLDocumentStore` (the
  prototype's Oracle).  Checkpoints survive a service crash.
- **Suspend/resume** — :meth:`crash` simulates the process dying
  (volatile sessions lost, URL unbound); :meth:`TNWebService.restore`
  rebuilds a service from the store and continues interrupted
  negotiations: with the requester agent available the engine re-runs
  deterministically at the checkpointed negotiation time (same
  disclosures, same sequence); without it, a checkpointed outcome is
  served as a degraded result.
- **Sequence caching** — with a
  :class:`~repro.negotiation.cache.SequenceCache` attached, repeat or
  resumed negotiations replay the cached trust sequence instead of
  re-running the policy phase.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional
from xml.etree import ElementTree as ET

from repro.errors import (
    CredentialRevokedError,
    ErrorCode,
    InternalServiceError,
    ReproError,
    ServiceError,
    SessionError,
    TransportError,
)
from repro.hardening.config import HardeningConfig
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    event as obs_event,
    gauge as obs_gauge,
    span as obs_span,
)
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.cache import CachingNegotiator, SequenceCache
from repro.negotiation.engine import NegotiationEngine
from repro.negotiation.outcomes import (
    FailureReason,
    NegotiationResult,
    TranscriptEvent,
    UNSATISFIABLE_REASONS,
)
from repro.negotiation.strategies import Strategy
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from repro.storage.session_store import SessionStore
from repro.trust import trust_epoch

__all__ = ["TNWebService", "NegotiationSession", "SESSION_COLLECTION"]

#: Store collection holding the per-session checkpoints.
SESSION_COLLECTION = "sessions"


@dataclass
class NegotiationSession:
    """Server-side state of one negotiation."""

    session_id: str
    requester: Optional[TrustXAgent]
    strategy: Strategy
    requester_name: str = ""
    request_id: str = ""
    resource: Optional[str] = None
    at: Optional[datetime] = None
    result: Optional[NegotiationResult] = None
    #: "started" | "policy" | "exchange" | "expired"
    phase: str = "started"
    policy_phase_billed: bool = False
    exchange_phase_billed: bool = False
    last_seq: int = 0
    #: Recorded ``(operation, resource, response)`` by clientSeq, for
    #: duplicate/retry deduplication (volatile: not part of the
    #: checkpoint).  Operation and resource are kept so a replay with a
    #: *different* payload is rejected instead of answered with stale
    #: data.
    responses: dict[int, tuple[str, str, dict]] = field(
        default_factory=dict
    )
    #: Outcome summary recovered from a checkpoint, for degraded
    #: completion when the requester agent is gone.
    checkpoint_outcome: Optional[dict] = None
    restored: bool = False
    #: Simulated ms of the last inbound message, for TTL reaping.
    touched_ms: float = 0.0
    #: The process-wide trust epoch the stored ``result`` was computed
    #: under; a later epoch forces a revocation re-check before the
    #: result is replayed.  (0 — e.g. after a crash restore — always
    #: forces the re-check.)
    trust_epoch: int = 0

    def __post_init__(self) -> None:
        if not self.requester_name and self.requester is not None:
            self.requester_name = self.requester.name

    @property
    def terminal(self) -> bool:
        """A terminal session accepts no new work: the exchange phase
        produced its result, or the TTL reaper expired it."""
        if self.phase == "expired":
            return True
        return self.result is not None and self.phase == "exchange"


class TNWebService:
    """The service endpoint owned by one party (the controller side)."""

    def __init__(
        self,
        owner: TrustXAgent,
        transport: SimTransport,
        store: XMLDocumentStore,
        url: str,
        cache: Optional[SequenceCache] = None,
        checkpoints: bool = True,
        hardening: Optional[HardeningConfig] = None,
        session_store: Optional[SessionStore] = None,
        node_id: Optional[str] = None,
    ) -> None:
        self.owner = owner
        self.transport = transport
        self.store = store
        self.url = url
        self.cache = cache
        self.checkpoints = checkpoints
        self.hardening = hardening
        #: Optional durability journal: every checkpoint is appended
        #: here as well, so a node that loses both volatile state *and*
        #: its document store (a real process death) can still recover.
        self.session_store = session_store
        #: Session-id prefix.  Cluster shards mint from disjoint
        #: namespaces (``tn-s0-1``, ``tn-s1-1``, ...) so the router's
        #: placement map never sees colliding ids.
        self.node_id = node_id or "tn"
        self.guard = hardening.guard() if hardening is not None else None
        self.admission = (
            hardening.admission() if hardening is not None else None
        )
        self.internal_errors = 0
        self._session_ids = itertools.count(1)
        self._sessions: dict[str, NegotiationSession] = {}
        self._requests: dict[str, str] = {}  # requestId -> session_id
        self._closed = False
        #: Live (non-terminal) session count and its high-water mark —
        #: the service-side measure of concurrent-session capacity.
        self._in_flight = 0
        self.in_flight_peak = 0
        self._persist_owner_state()
        transport.bind(url, self._endpoint_handler())

    def _endpoint_handler(self):
        """The callable bound at ``self.url`` (async subclasses rebind)."""
        return self.handle

    # -- in-flight session accounting ----------------------------------------------

    @property
    def sessions_in_flight(self) -> int:
        """Live (non-terminal) sessions this service currently holds."""
        return self._in_flight

    def _track_opened(self, session: NegotiationSession) -> None:
        if session.terminal:
            return
        self._in_flight += 1
        if self._in_flight > self.in_flight_peak:
            self.in_flight_peak = self._in_flight
        self._publish_in_flight()

    def _track_terminal(self, count: int = 1) -> None:
        self._in_flight = max(0, self._in_flight - count)
        self._publish_in_flight()

    def _publish_in_flight(self) -> None:
        if obs_enabled():
            obs_gauge("tn_service.sessions_in_flight", self._in_flight)
            obs_gauge(
                "tn_service.sessions_in_flight_peak", self.in_flight_peak
            )

    # -- lifecycle -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Graceful shutdown: checkpoint, unbind, and clear sessions.

        Idempotent.  After ``close()`` the URL is free again, so a new
        service (or :meth:`restore`) can bind at the same address.
        """
        if self._closed:
            return
        for session in self._sessions.values():
            self._checkpoint(session)
        self.transport.unbind(self.url)
        self._sessions.clear()
        self._requests.clear()
        self._closed = True
        if self._in_flight:
            self._track_terminal(self._in_flight)

    def crash(self) -> None:
        """Simulate the process dying: volatile state is lost *without*
        a final checkpoint flush; only per-operation checkpoints
        already in the store survive."""
        self.transport.unbind(self.url)
        self._sessions.clear()
        self._requests.clear()
        self._closed = True
        if self._in_flight:
            self._track_terminal(self._in_flight)

    def __enter__(self) -> "TNWebService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def restore(
        cls,
        owner: TrustXAgent,
        transport: SimTransport,
        store: XMLDocumentStore,
        url: str,
        agents: Optional[dict[str, TrustXAgent]] = None,
        cache: Optional[SequenceCache] = None,
        checkpoints: bool = True,
        hardening: Optional[HardeningConfig] = None,
        session_store: Optional[SessionStore] = None,
        node_id: Optional[str] = None,
    ) -> "TNWebService":
        """Rebuild a service from its checkpointed sessions.

        ``agents`` maps requester names back to their in-process agent
        references (the prototype would re-resolve SOAP endpoints); a
        session whose requester cannot be resolved degrades to its
        checkpointed outcome.

        When ``session_store`` is given its journal — not the document
        store — is the recovery source: the journal is replayed into
        per-session latest state and each restored session is mirrored
        back into ``store`` so both views agree.  Restored sessions
        re-anchor their TTL at restore time; their original
        ``touched_ms`` belongs to the dead node's timeline and would
        otherwise get live sessions reaped as "expired" the moment the
        reaper runs.
        """
        service = cls(
            owner, transport, store, url, cache=cache,
            checkpoints=checkpoints, hardening=hardening,
            session_store=session_store, node_id=node_id,
        )
        agents = agents or {}
        if session_store is not None:
            checkpoints_by_id = session_store.latest()
        else:
            checkpoints_by_id = {
                doc_id: store.get(SESSION_COLLECTION, doc_id)
                for doc_id in store.ids(SESSION_COLLECTION)
            }
        highest = 0
        now_ms = transport.clock.elapsed_ms
        for doc_id in sorted(checkpoints_by_id):
            element = checkpoints_by_id[doc_id]
            session = cls._session_from_xml(element, agents)
            session.touched_ms = now_ms
            service._sessions[session.session_id] = session
            service._track_opened(session)
            if session.request_id:
                service._requests[session.request_id] = session.session_id
            if session_store is not None and checkpoints:
                store.put(SESSION_COLLECTION, session.session_id, element)
            prefix, _, suffix = session.session_id.rpartition("-")
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        service._session_ids = itertools.count(highest + 1)
        if obs_enabled():
            obs_event(
                "tn_service.restore",
                clock=transport.clock,
                url=url,
                sessions=len(service._sessions),
            )
        return service

    def adopt_session(
        self,
        element: ET.Element,
        agents: Optional[dict[str, TrustXAgent]] = None,
    ) -> NegotiationSession:
        """Take ownership of a session checkpointed on another node.

        Failover and explicit migration both land here: the session is
        rebuilt from its last checkpoint, its TTL re-anchored on this
        node's timeline, and a fresh checkpoint written so this node's
        stores become authoritative.  An existing live session with the
        same id is left untouched (adoption is idempotent).
        """
        session = self._session_from_xml(element, agents or {})
        existing = self._sessions.get(session.session_id)
        if existing is not None:
            return existing
        session.touched_ms = self.transport.clock.elapsed_ms
        self._sessions[session.session_id] = session
        self._track_opened(session)
        if session.request_id:
            self._requests[session.request_id] = session.session_id
        self._checkpoint(session)
        if obs_enabled():
            obs_event(
                "tn_service.adopt",
                clock=self.transport.clock,
                url=self.url,
                session=session.session_id,
                phase=session.phase,
            )
        return session

    # -- persistence ---------------------------------------------------------------

    def _persist_owner_state(self) -> None:
        """Mirror the owner's policies and credentials into the store,
        as the prototype kept them in Oracle."""
        from repro.policy.xmlcodec import policy_to_xml

        for policy in self.owner.policies:
            self.store.put(
                "policies", policy.policy_id, policy_to_xml(policy)
            )
        for credential in self.owner.profile:
            self.store.put(
                "credentials", credential.cred_id, credential.to_xml()
            )

    def _checkpoint(self, session: NegotiationSession) -> None:
        """Write the session's durable state into the store."""
        if not self.checkpoints:
            return
        element = ET.Element("negotiationSession", {
            "id": session.session_id,
            "phase": session.phase,
            "requester": session.requester_name,
            "strategy": session.strategy.value,
            "resource": session.resource or "",
            "at": session.at.isoformat() if session.at else "",
            "requestId": session.request_id,
            "lastSeq": str(session.last_seq),
            "policyBilled": str(session.policy_phase_billed).lower(),
            "exchangeBilled": str(session.exchange_phase_billed).lower(),
        })
        result = session.result
        if result is not None:
            outcome = ET.SubElement(element, "outcome", {
                "success": str(result.success).lower(),
                "failureReason": (
                    result.failure_reason.value if result.failure_reason
                    else ""
                ),
                "policyMessages": str(result.policy_messages),
                "exchangeMessages": str(result.exchange_messages),
            })
            if result.failure_detail:
                outcome.set("failureDetail", result.failure_detail)
            for party, ids in (
                ("requester", result.disclosed_by_requester),
                ("controller", result.disclosed_by_controller),
            ):
                disclosed = ET.SubElement(
                    outcome, "disclosedBy", {"party": party}
                )
                for cred_id in ids:
                    ET.SubElement(disclosed, "credential", {"id": cred_id})
        self.store.put(SESSION_COLLECTION, session.session_id, element)
        if self.session_store is not None:
            self.session_store.append(session.session_id, element)
        if obs_enabled():
            obs_count("tn_service.checkpoints")
            obs_event(
                "tn_service.checkpoint",
                clock=self.transport.clock,
                session=session.session_id,
                phase=session.phase,
            )

    @staticmethod
    def _session_from_xml(
        element: ET.Element, agents: dict[str, TrustXAgent]
    ) -> NegotiationSession:
        requester_name = element.get("requester", "")
        at_text = element.get("at", "")
        session = NegotiationSession(
            session_id=element.get("id", ""),
            requester=agents.get(requester_name),
            strategy=Strategy.parse(element.get("strategy", "standard")),
            requester_name=requester_name,
            request_id=element.get("requestId", ""),
            resource=element.get("resource") or None,
            at=datetime.fromisoformat(at_text) if at_text else None,
            phase=element.get("phase", "started"),
            policy_phase_billed=element.get("policyBilled") == "true",
            exchange_phase_billed=element.get("exchangeBilled") == "true",
            last_seq=int(element.get("lastSeq", "0")),
            restored=True,
        )
        outcome = element.find("outcome")
        if outcome is not None:
            disclosed: dict[str, tuple[str, ...]] = {}
            for block in outcome.findall("disclosedBy"):
                disclosed[block.get("party", "")] = tuple(
                    cred.get("id", "")
                    for cred in block.findall("credential")
                )
            session.checkpoint_outcome = {
                "success": outcome.get("success") == "true",
                "failure_reason": outcome.get("failureReason", ""),
                "failure_detail": outcome.get("failureDetail", ""),
                "policy_messages": int(outcome.get("policyMessages", "0")),
                "exchange_messages": int(outcome.get("exchangeMessages", "0")),
                "disclosed_by_requester": disclosed.get("requester", ()),
                "disclosed_by_controller": disclosed.get("controller", ()),
            }
        return session

    # -- dispatch ---------------------------------------------------------------------

    def handle(self, operation: str, payload: dict) -> dict:
        if self.hardening is None:
            return self._handle(operation, payload)
        # Hardened boundary: library errors pass through typed, but
        # nothing else may leak to the peer as a stack trace.
        try:
            return self._handle(operation, payload)
        except ReproError:
            raise
        except Exception as exc:
            self.internal_errors += 1
            obs_count("tn_service.internal_errors")
            raise InternalServiceError(
                f"TN service at {self.url!r} failed handling "
                f"{operation!r}: {type(exc).__name__}"
            ) from exc

    def _handle(self, operation: str, payload: dict) -> dict:
        response, session, seq, resource = self._dispatch_prelude(
            operation, payload
        )
        if response is not None:
            return response
        was_terminal = session.terminal
        if operation == "PolicyExchange":
            response = self.policy_exchange(payload)
        else:
            response = self.credential_exchange(payload)
        self._dispatch_epilogue(
            session, operation, seq, resource, response, was_terminal
        )
        return response

    def _dispatch_prelude(
        self, operation: str, payload: dict
    ) -> tuple[Optional[dict], Optional[NegotiationSession],
               Optional[int], str]:
        """Everything that happens before a phase operation runs:
        closed/guard/admission checks, ``StartNegotiation`` handling,
        session lookup, and replay deduplication.  Returns
        ``(response, session, seq, resource)`` — with ``response`` set
        the dispatch is already answered (start or replay); otherwise
        ``session`` is the live session the phase op should run on.
        Shared verbatim by the sync and asyncio dispatch paths.
        """
        if self._closed:
            raise TransportError(
                f"TN service at {self.url!r} is closed",
                error_code=ErrorCode.SERVICE_CLOSED,
            )
        if self.guard is not None:
            self.guard.validate(operation, payload)
        if self.admission is not None:
            self.admission.admit(
                operation, payload, self.transport.clock.elapsed_ms
            )
        if operation == "StartNegotiation":
            return self.start_negotiation(payload), None, None, ""
        if operation not in ("PolicyExchange", "CredentialExchange"):
            raise ServiceError(
                f"unknown TN operation {operation!r}",
                error_code=ErrorCode.UNKNOWN_OPERATION,
            )
        session = self._session(payload)
        session.touched_ms = self.transport.clock.elapsed_ms
        seq = payload.get("clientSeq")
        resource = (
            payload.get("resource", "")
            if operation == "PolicyExchange" else ""
        )
        if self.guard is not None:
            self.guard.check_transition(session, operation, seq, resource)
        if seq is not None and seq in session.responses:
            # Duplicate delivery or retry after a lost response:
            # replay without re-billing — but only if the retry really
            # repeats the original call.  A different operation or
            # resource under a recorded clientSeq is a duplicate-key
            # bug that must fail loudly, not be answered with stale
            # data.
            recorded_op, recorded_resource, response = session.responses[seq]
            if recorded_op != operation or recorded_resource != resource:
                raise ServiceError(
                    f"clientSeq {seq} of {session.session_id!r} was "
                    f"recorded for {recorded_op!r}"
                    + (f" on {recorded_resource!r}" if recorded_resource
                       else "")
                    + f" but retried as {operation!r}"
                    + (f" on {resource!r}" if resource else ""),
                    error_code=ErrorCode.REPLAY_MISMATCH,
                )
            if obs_enabled():
                obs_count("tn_service.replays")
                obs_event(
                    "tn_service.replay",
                    clock=self.transport.clock,
                    session=session.session_id,
                    operation=operation,
                    client_seq=seq,
                )
            return response, session, seq, resource
        return None, session, seq, resource

    def _dispatch_epilogue(
        self,
        session: NegotiationSession,
        operation: str,
        seq: Optional[int],
        resource: str,
        response: dict,
        was_terminal: bool,
    ) -> None:
        """Record the response for replay, checkpoint, and account the
        terminal transition.  Shared by the sync and asyncio paths."""
        if seq is not None:
            session.responses[seq] = (operation, resource, response)
            session.last_seq = max(session.last_seq, seq)
        self._checkpoint(session)
        if not was_terminal and session.terminal:
            self._track_terminal()

    def _session(self, payload: dict) -> NegotiationSession:
        session_id = payload.get("negotiationId", "")
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown negotiation id {session_id!r}")
        return session

    def sessions(self) -> dict[str, NegotiationSession]:
        return dict(self._sessions)

    def release_session(self, session_id: str) -> None:
        """Forget a session locally without touching its durable
        checkpoints — the hand-off half of a migration to another
        node, which adopts from the checkpoint."""
        session = self._sessions.pop(session_id, None)
        if session is not None:
            if session.request_id:
                self._requests.pop(session.request_id, None)
            if not session.terminal:
                self._track_terminal()

    def reap_expired(self, older_than_ms: Optional[float] = None) -> int:
        """Expire non-terminal sessions idle longer than the TTL.

        A peer that opens sessions and walks away (or is shed mid-way
        by admission control) would otherwise leave them dangling in
        the ``started``/``policy`` phase forever.  Reaping moves them
        to the terminal ``expired`` phase — checkpointed, rejected on
        further contact with :data:`ErrorCode.POST_TERMINAL` — so the
        "no session ends non-terminal" invariant holds under abuse.
        Returns the number of sessions reaped.
        """
        ttl = older_than_ms
        if ttl is None:
            ttl = (
                self.hardening.session_ttl_ms
                if self.hardening is not None else 120_000.0
            )
        now = self.transport.clock.elapsed_ms
        reaped = 0
        for session in self._sessions.values():
            if session.terminal:
                continue
            if now - session.touched_ms >= ttl:
                session.phase = "expired"
                reaped += 1
                self._checkpoint(session)
        if reaped:
            self._track_terminal(reaped)
        if reaped and obs_enabled():
            obs_count("tn_service.sessions_expired", reaped)
            obs_event(
                "tn_service.reap",
                clock=self.transport.clock,
                reaped=reaped,
            )
        return reaped

    # -- operations --------------------------------------------------------------------

    def start_negotiation(self, payload: dict) -> dict:
        """``StartNegotiation`` (paper Section 6.2): open the DB
        connection and mint the negotiation id."""
        with obs_span(
            "tn_service.start_negotiation", clock=self.transport.clock
        ):
            obs_count("tn_service.operations.start_negotiation")
            return self._start_negotiation_body(payload)

    def _start_negotiation_body(self, payload: dict) -> dict:
        request_id = payload.get("requestId", "")
        requester = payload.get("requester")
        if not isinstance(requester, TrustXAgent):
            raise ServiceError(
                "StartNegotiation requires a requester agent reference",
                error_code=ErrorCode.SCHEMA_VIOLATION,
            )
        strategy = Strategy.parse(payload.get("strategy", "standard"))
        if request_id and request_id in self._requests:
            # Idempotent retry: the first delivery already opened the
            # session; hand the same id back without re-billing — but
            # only if the retry carries the original payload.  The same
            # requestId arriving with a different requester or strategy
            # is a duplicate-key bug (e.g. colliding client counters),
            # which must be rejected rather than silently answered with
            # another negotiation's session.
            recorded = self._sessions[self._requests[request_id]]
            if (
                recorded.requester_name != requester.name
                or recorded.strategy is not strategy
            ):
                raise ServiceError(
                    f"requestId {request_id!r} was already used by "
                    f"requester {recorded.requester_name!r} with "
                    f"strategy {recorded.strategy.value!r}; a retry "
                    "must repeat the original payload",
                    error_code=ErrorCode.REPLAY_MISMATCH,
                )
            return {"negotiationId": recorded.session_id}
        self.transport.charge_db(connect=True, writes=1)
        session_id = f"{self.node_id}-{next(self._session_ids)}"
        session = NegotiationSession(
            session_id=session_id,
            requester=requester,
            strategy=strategy,
            request_id=request_id,
            touched_ms=self.transport.clock.elapsed_ms,
        )
        self._sessions[session_id] = session
        self._track_opened(session)
        if request_id:
            self._requests[request_id] = session_id
        self._checkpoint(session)
        return {"negotiationId": session_id}

    def _degraded_result(
        self, session: NegotiationSession
    ) -> Optional[NegotiationResult]:
        """Rebuild an outcome from the checkpoint when the engine
        cannot re-run (requester agent unavailable after a crash)."""
        summary = session.checkpoint_outcome
        if summary is None or session.resource is None:
            return None
        reason_text = summary["failure_reason"]
        return NegotiationResult(
            resource=session.resource,
            requester=session.requester_name,
            controller=self.owner.name,
            success=summary["success"],
            failure_reason=(
                FailureReason(reason_text) if reason_text else None
            ),
            failure_detail=summary["failure_detail"],
            transcript=(
                TranscriptEvent(
                    "setup", self.owner.name, "checkpoint-restore",
                    session.session_id,
                ),
            ),
            policy_messages=summary["policy_messages"],
            exchange_messages=summary["exchange_messages"],
            disclosed_by_requester=summary["disclosed_by_requester"],
            disclosed_by_controller=summary["disclosed_by_controller"],
        )

    def _engine_shortcut(
        self, session: NegotiationSession, resource: str
    ) -> Optional[NegotiationResult]:
        """The engine-free exits shared by both dispatch paths: an
        already-computed result for the same resource, or a degraded
        checkpoint outcome when the requester agent is unavailable.
        Returns ``None`` when the engine genuinely has to run; raises
        :class:`SessionError` when it can't and nothing is recoverable.
        """
        if session.result is not None and session.resource == resource:
            return session.result
        if session.requester is None:
            # Restored after a crash and the requester agent is gone:
            # degrade to the checkpointed outcome if one exists.
            degraded = (
                self._degraded_result(session)
                if session.resource == resource
                else None
            )
            if degraded is not None:
                session.result = degraded
                return degraded
            raise SessionError(
                f"cannot resume {session.session_id!r}: requester "
                f"{session.requester_name!r} is unavailable and no "
                "checkpointed outcome exists"
            )
        return None

    def _engine_commit(
        self,
        session: NegotiationSession,
        resource: str,
        at: datetime,
        result: NegotiationResult,
    ) -> NegotiationResult:
        """Record an engine run's outcome on the session."""
        session.result = result
        session.resource = resource
        session.at = at
        session.trust_epoch = trust_epoch()
        return result

    def _run_engine(
        self, session: NegotiationSession, resource: str, at: Optional[datetime]
    ) -> NegotiationResult:
        shortcut = self._engine_shortcut(session, resource)
        if shortcut is not None:
            return shortcut
        requester = session.requester
        at = at or session.at or self.transport.clock.now()
        previous_strategy = requester.strategy
        requester.strategy = session.strategy
        try:
            if self.cache is not None:
                result = CachingNegotiator(self.cache).negotiate(
                    requester, self.owner, resource, at=at
                )
            else:
                engine = NegotiationEngine(requester, self.owner)
                result = engine.run(resource, at=at)
        finally:
            requester.strategy = previous_strategy
        return self._engine_commit(session, resource, at, result)

    def policy_exchange(self, payload: dict) -> dict:
        """``PolicyExchange`` (paper Section 6.2): run (or bill) the
        policy-evaluation phase for the session in ``payload``."""
        session = self._session(payload)
        with obs_span(
            "tn_service.policy_exchange",
            clock=self.transport.clock,
            session=session.session_id,
            resource=payload.get("resource", ""),
        ):
            obs_count("tn_service.operations.policy_exchange")
            return self._policy_exchange_body(session, payload)

    def _policy_exchange_body(
        self, session: NegotiationSession, payload: dict
    ) -> dict:
        resource = self._policy_resource(payload)
        result = self._run_engine(session, resource, payload.get("at"))
        return self._policy_response(session, result)

    @staticmethod
    def _policy_resource(payload: dict) -> str:
        resource = payload.get("resource", "")
        if not resource:
            raise ServiceError(
                "PolicyExchange requires a resource",
                error_code=ErrorCode.SCHEMA_VIOLATION,
            )
        return resource

    def _policy_response(
        self, session: NegotiationSession, result: NegotiationResult
    ) -> dict:
        """Bill the policy phase (once) and build the response.  Shared
        by the sync and asyncio dispatch paths."""
        session.phase = "policy"
        if not session.policy_phase_billed:
            # The PolicyExchange call itself is the first protocol
            # message; the remaining policy-phase rounds each pay a
            # full message cost, and every policy lookup hits the DB.
            self.transport.charge_messages(max(0, result.policy_messages - 1))
            self.transport.charge_db(reads=max(1, result.policy_messages))
            session.policy_phase_billed = True
        # Unsatisfiable == the policy phase *proved* no trust sequence
        # can exist; transient failures stay "satisfiable" because a
        # retry may still succeed.
        unsatisfiable = (
            not result.success
            and result.failure_reason in UNSATISFIABLE_REASONS
        )
        return {
            "negotiationId": session.session_id,
            "satisfiable": not unsatisfiable,
            "sequenceFound": bool(result.sequence) or result.success,
            "policyMessages": result.policy_messages,
        }

    def credential_exchange(self, payload: dict) -> dict:
        """``CredentialExchange`` (paper Section 6.2): run (or bill)
        the credential-exchange phase for the session in ``payload``."""
        session = self._session(payload)
        with obs_span(
            "tn_service.credential_exchange",
            clock=self.transport.clock,
            session=session.session_id,
        ):
            obs_count("tn_service.operations.credential_exchange")
            return self._credential_exchange_body(session, payload)

    def _credential_exchange_body(
        self, session: NegotiationSession, payload: dict
    ) -> dict:
        if self._credential_needs_resume(session):
            # Resuming after a crash: the policy phase completed
            # before the service died; re-derive its result (or
            # degrade to the checkpoint) without re-billing.
            self._run_engine(session, session.resource or "", session.at)
        return self._credential_response(session)

    @staticmethod
    def _credential_needs_resume(session: NegotiationSession) -> bool:
        """Whether ``CredentialExchange`` must re-derive the policy
        result after a crash restore — raises when the call simply
        arrived before ``PolicyExchange``."""
        if session.result is not None:
            return False
        if session.restored and session.phase in ("policy", "exchange"):
            return True
        raise ServiceError(
            "CredentialExchange before PolicyExchange for "
            f"{session.session_id!r}",
            error_code=ErrorCode.PHASE_SKIP,
        )

    def _recheck_retractions(self, session: NegotiationSession) -> None:
        """Nonmonotonic trust at the phase boundary (paper Section
        4.2's revocation check, re-applied at exchange time).

        The policy phase precomputes the negotiation result; it is only
        replayable while the trust epoch it was computed under still
        stands.  When a retraction advanced the epoch between
        ``PolicyExchange`` and ``CredentialExchange``, every credential
        the stored result would disclose is re-checked against the
        revocation registry, and a now-revoked credential turns the
        stored success into a ``CREDENTIAL_REVOKED`` failure instead of
        completing on stale trust.
        """
        result = session.result
        if result is None or not result.success:
            return
        current = trust_epoch()
        if current == session.trust_epoch:
            return
        session.trust_epoch = current
        obs_count("tn_service.revocation_rechecks")
        holders = {self.owner.name: self.owner}
        if session.requester is not None:
            holders[session.requester.name] = session.requester
        for holder_name, cred_ids in (
            (result.requester, result.disclosed_by_requester),
            (result.controller, result.disclosed_by_controller),
        ):
            holder = holders.get(holder_name)
            if holder is None:
                continue
            for cred_id in cred_ids:
                try:
                    credential = holder.profile.get(cred_id)
                except ReproError:
                    continue
                try:
                    self.owner.validator.revocations.ensure_not_revoked(
                        credential.issuer, credential.serial
                    )
                except CredentialRevokedError as exc:
                    session.result = NegotiationResult(
                        resource=result.resource,
                        requester=result.requester,
                        controller=result.controller,
                        success=False,
                        failure_reason=FailureReason.CREDENTIAL_REVOKED,
                        failure_detail=str(exc),
                        transcript=tuple(result.transcript) + (
                            TranscriptEvent(
                                "exchange", self.owner.name,
                                "revocation-recheck", str(exc),
                            ),
                        ),
                        policy_messages=result.policy_messages,
                        exchange_messages=result.exchange_messages,
                    )
                    self._checkpoint(session)
                    return

    def _credential_response(self, session: NegotiationSession) -> dict:
        """Bill the exchange phase (once), store in the sequence cache,
        and build the response.  Shared by both dispatch paths."""
        self._recheck_retractions(session)
        result = session.result
        session.phase = "exchange"
        if not session.exchange_phase_billed:
            disclosures = result.disclosures
            self.transport.charge_messages(max(0, result.exchange_messages - 1))
            # Each disclosure: fetch from DB, one issuer-signature
            # verification plus one ownership verification on the
            # receiving side, one ownership-proof signature on the
            # disclosing side.
            self.transport.charge_db(reads=disclosures)
            self.transport.charge_crypto(
                signs=disclosures, verifies=2 * disclosures
            )
            session.exchange_phase_billed = True
        if self.cache is not None and result.success:
            agents = {self.owner.name: self.owner}
            if session.requester is not None:
                agents[session.requester.name] = session.requester
            self.cache.store(result, agents=agents)
        return {
            "negotiationId": session.session_id,
            "success": result.success,
            "failureReason": (
                result.failure_reason.value if result.failure_reason else ""
            ),
            "result": result,
        }

    # -- deprecated aliases (pre-1.1 private operation names) ----------------------

    def _start_negotiation(self, payload: dict) -> dict:
        warnings.warn(
            "TNWebService._start_negotiation is deprecated; use the "
            "public start_negotiation operation",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.start_negotiation(payload)

    def _policy_exchange(
        self, session: NegotiationSession, payload: dict
    ) -> dict:
        warnings.warn(
            "TNWebService._policy_exchange is deprecated; use the "
            "public policy_exchange operation",
            DeprecationWarning,
            stacklevel=2,
        )
        merged = dict(payload)
        merged.setdefault("negotiationId", session.session_id)
        return self.policy_exchange(merged)

    def _credential_exchange(
        self, session: NegotiationSession, payload: dict
    ) -> dict:
        warnings.warn(
            "TNWebService._credential_exchange is deprecated; use the "
            "public credential_exchange operation",
            DeprecationWarning,
            stacklevel=2,
        )
        merged = dict(payload)
        merged.setdefault("negotiationId", session.session_id)
        return self.credential_exchange(merged)
