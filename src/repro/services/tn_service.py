"""The TN Web service (paper Section 6.2).

Exposes the three operations of the prototype:

``StartNegotiation``
    Receives the invoker's strategy, the counterpart reference, and the
    database parameters; opens the database connection, assigns a
    unique negotiation id, and returns it.

``PolicyExchange``
    Runs the policy-evaluation phase: "checks if the database contains
    disclosure policies protecting the credentials requested in the
    counterpart's disclosure policies" and returns them; iterated until
    a trust sequence is (or cannot be) determined.

``CredentialExchange``
    Runs the credential-exchange phase: "verifies the validity of the
    counterpart's credential ... then selects the next credential to be
    sent".

Simulation note: the protocol logic lives in
:class:`~repro.negotiation.engine.NegotiationEngine`; the service runs
the engine when ``PolicyExchange`` is first invoked and then *bills*
each phase's messages, database accesses, and cryptographic operations
to the latency model, so the simulated wall-clock reflects the same
per-message round trips the prototype paid without re-implementing the
protocol at the wire level.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from datetime import datetime
from typing import Optional

from repro.errors import ServiceError, SessionError
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.engine import NegotiationEngine
from repro.negotiation.outcomes import NegotiationResult
from repro.negotiation.strategies import Strategy
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore

__all__ = ["TNWebService", "NegotiationSession"]


@dataclass
class NegotiationSession:
    """Server-side state of one negotiation."""

    session_id: str
    requester: TrustXAgent
    strategy: Strategy
    resource: Optional[str] = None
    result: Optional[NegotiationResult] = None
    policy_phase_billed: bool = False
    exchange_phase_billed: bool = False


class TNWebService:
    """The service endpoint owned by one party (the controller side)."""

    def __init__(
        self,
        owner: TrustXAgent,
        transport: SimTransport,
        store: XMLDocumentStore,
        url: str,
    ) -> None:
        self.owner = owner
        self.transport = transport
        self.store = store
        self.url = url
        self._session_ids = itertools.count(1)
        self._sessions: dict[str, NegotiationSession] = {}
        self._persist_owner_state()
        transport.bind(url, self.handle)

    # -- persistence ---------------------------------------------------------------

    def _persist_owner_state(self) -> None:
        """Mirror the owner's policies and credentials into the store,
        as the prototype kept them in Oracle."""
        from repro.policy.xmlcodec import policy_to_xml

        for policy in self.owner.policies:
            self.store.put(
                "policies", policy.policy_id, policy_to_xml(policy)
            )
        for credential in self.owner.profile:
            self.store.put(
                "credentials", credential.cred_id, credential.to_xml()
            )

    # -- dispatch ---------------------------------------------------------------------

    def handle(self, operation: str, payload: dict) -> dict:
        if operation == "StartNegotiation":
            return self._start_negotiation(payload)
        if operation == "PolicyExchange":
            return self._policy_exchange(payload)
        if operation == "CredentialExchange":
            return self._credential_exchange(payload)
        raise ServiceError(f"unknown TN operation {operation!r}")

    def _session(self, payload: dict) -> NegotiationSession:
        session_id = payload.get("negotiationId", "")
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown negotiation id {session_id!r}")
        return session

    # -- operations --------------------------------------------------------------------

    def _start_negotiation(self, payload: dict) -> dict:
        """Open the DB connection and mint the negotiation id."""
        requester = payload.get("requester")
        if not isinstance(requester, TrustXAgent):
            raise ServiceError(
                "StartNegotiation requires a requester agent reference"
            )
        strategy = Strategy.parse(payload.get("strategy", "standard"))
        self.transport.charge_db(connect=True, writes=1)
        session_id = f"tn-{next(self._session_ids)}"
        self._sessions[session_id] = NegotiationSession(
            session_id=session_id, requester=requester, strategy=strategy
        )
        return {"negotiationId": session_id}

    def _run_engine(
        self, session: NegotiationSession, resource: str, at: Optional[datetime]
    ) -> NegotiationResult:
        if session.result is None or session.resource != resource:
            previous_strategy = session.requester.strategy
            session.requester.strategy = session.strategy
            try:
                engine = NegotiationEngine(session.requester, self.owner)
                session.result = engine.run(
                    resource, at=at or self.transport.clock.now()
                )
            finally:
                session.requester.strategy = previous_strategy
            session.resource = resource
        return session.result

    def _policy_exchange(self, payload: dict) -> dict:
        session = self._session(payload)
        resource = payload.get("resource", "")
        if not resource:
            raise ServiceError("PolicyExchange requires a resource")
        result = self._run_engine(session, resource, payload.get("at"))
        if not session.policy_phase_billed:
            # The PolicyExchange call itself is the first protocol
            # message; the remaining policy-phase rounds each pay a
            # full message cost, and every policy lookup hits the DB.
            self.transport.charge_messages(max(0, result.policy_messages - 1))
            self.transport.charge_db(reads=max(1, result.policy_messages))
            session.policy_phase_billed = True
        return {
            "negotiationId": session.session_id,
            "satisfiable": result.success
            or result.failure_reason is None
            or result.failure_reason.value not in (
                "no_trust_sequence", "budget_exhausted", "strategy_violation",
            ),
            "sequenceFound": bool(result.sequence) or result.success,
            "policyMessages": result.policy_messages,
        }

    def _credential_exchange(self, payload: dict) -> dict:
        session = self._session(payload)
        if session.result is None:
            raise ServiceError(
                "CredentialExchange before PolicyExchange for "
                f"{session.session_id!r}"
            )
        result = session.result
        if not session.exchange_phase_billed:
            disclosures = result.disclosures
            self.transport.charge_messages(max(0, result.exchange_messages - 1))
            # Each disclosure: fetch from DB, one issuer-signature
            # verification plus one ownership verification on the
            # receiving side, one ownership-proof signature on the
            # disclosing side.
            self.transport.charge_db(reads=disclosures)
            self.transport.charge_crypto(
                signs=disclosures, verifies=2 * disclosures
            )
            session.exchange_phase_billed = True
        return {
            "negotiationId": session.session_id,
            "success": result.success,
            "failureReason": (
                result.failure_reason.value if result.failure_reason else ""
            ),
            "result": result,
        }
