"""Resilient transport: deadlines, retries, backoff, circuit breaking.

The prototype's SOAP calls through Tomcat against Oracle could time
out, drop, or die mid-negotiation; grid deployments of this
architecture treat partial failure as the norm.  This module supplies
the client-side survival kit as a transport decorator::

    client → ResilientTransport → (FaultInjector →) SimTransport

- **Per-call deadline** — a budget of simulated milliseconds across
  all attempts of one logical call; exceeding it raises
  :class:`~repro.errors.TimeoutError`.  The budget is checked before
  each attempt *and* before each backoff wait (a retry whose backoff
  alone would overrun the deadline is abandoned immediately); it is
  best-effort within a single attempt — an in-flight attempt runs to
  completion even if its simulated wait crosses the deadline.
- **Bounded retries** — transient failures (timeouts, transport
  errors, database-connect failures) are retried up to
  ``max_attempts`` with exponential backoff and *deterministic*
  jitter (CRC-derived, no wall-clock randomness); every backoff is
  charged to the :class:`~repro.services.clock.SimClock`.
- **Circuit breaker** — per-endpoint CLOSED → OPEN → HALF_OPEN state
  machine: after ``failure_threshold`` consecutive transient failures
  the breaker opens and calls fail fast with
  :class:`~repro.errors.CircuitOpenError`; after ``reset_timeout_ms``
  of simulated time one half-open probe is allowed through — success
  closes the breaker, failure re-opens it.

Application-level errors (:class:`~repro.errors.ServiceError`
subclasses that are not transport failures, e.g. an unknown session
id) are *not* retried and do not trip the breaker: the endpoint
answered, the answer was just "no".  Two exceptions interact with the
hardening layer (:mod:`repro.hardening`):

- :class:`~repro.errors.OverloadError` sheds **are** retried, waiting
  at least the server's ``retry_after_ms`` backpressure hint, and do
  not trip the breaker (a shedding peer is alive, not down);
- when a ``deadline_ms`` budget is set, it is propagated to the
  service as a ``deadlineMs`` payload field so admission control can
  shed already-expired work *before* evaluation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import (
    CircuitOpenError,
    DatabaseUnavailableError,
    OverloadError,
    RetryExhaustedError,
    TimeoutError,
    TransportError,
)
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    event as obs_event,
    observe as obs_observe,
)
from repro.services.transport import LatencyModel, SimTransport

__all__ = [
    "RetryPolicy",
    "CircuitBreakerPolicy",
    "CircuitState",
    "CircuitBreaker",
    "ResilienceStats",
    "ResilientTransport",
    "TRANSIENT_ERRORS",
]

#: Failures worth retrying: the endpoint may answer next time.
TRANSIENT_ERRORS = (TimeoutError, TransportError, DatabaseUnavailableError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter."""

    max_attempts: int = 4
    base_backoff_ms: float = 100.0
    multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter_ms: float = 50.0
    #: Seed folded into the jitter hash so distinct runs can decorrelate
    #: while staying reproducible.
    jitter_seed: int = 0

    def backoff_ms(self, url: str, operation: str, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        base = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.multiplier ** (attempt - 1),
        )
        if self.jitter_ms <= 0:
            return base
        token = f"{self.jitter_seed}|{url}|{operation}|{attempt}"
        fraction = (zlib.crc32(token.encode("utf-8")) % 1000) / 999.0
        return base + fraction * self.jitter_ms


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    failure_threshold: int = 5
    reset_timeout_ms: float = 5000.0


class CircuitState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Per-endpoint breaker over simulated time."""

    policy: CircuitBreakerPolicy = field(default_factory=CircuitBreakerPolicy)
    state: CircuitState = CircuitState.CLOSED
    consecutive_failures: int = 0
    opened_at_ms: float = 0.0
    opens: int = 0

    def allow(self, now_ms: float) -> bool:
        """Whether a call may go through right now."""
        if self.state is CircuitState.OPEN:
            if now_ms - self.opened_at_ms >= self.policy.reset_timeout_ms:
                self.state = CircuitState.HALF_OPEN
                return True
            return False
        return True  # CLOSED or HALF_OPEN (probe in flight)

    def record_success(self) -> None:
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now_ms: float) -> None:
        self.consecutive_failures += 1
        if self.state is CircuitState.HALF_OPEN:
            self._open(now_ms)  # failed probe: straight back to OPEN
        elif self.consecutive_failures >= self.policy.failure_threshold:
            self._open(now_ms)

    def _open(self, now_ms: float) -> None:
        self.state = CircuitState.OPEN
        self.opened_at_ms = now_ms
        self.opens += 1


@dataclass
class ResilienceStats:
    calls: int = 0
    attempts: int = 0
    retries: int = 0
    backoff_ms_total: float = 0.0
    deadline_expiries: int = 0
    breaker_rejections: int = 0
    exhausted: int = 0
    #: Retries that honored a server ``retry_after_ms`` overload hint.
    backpressure_waits: int = 0


@dataclass
class ResilientTransport:
    """Retry/backoff/circuit-breaker decorator over a transport."""

    inner: SimTransport  # or any transport-shaped decorator
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_policy: CircuitBreakerPolicy = field(
        default_factory=CircuitBreakerPolicy
    )
    #: Simulated-ms budget for one logical call across all attempts;
    #: ``None`` disables the deadline.
    deadline_ms: float | None = 30_000.0
    stats: ResilienceStats = field(default_factory=ResilienceStats)
    _breakers: dict[str, CircuitBreaker] = field(default_factory=dict)

    # -- transport interface (delegation) ------------------------------------------

    @property
    def clock(self):
        return self.inner.clock

    @property
    def model(self) -> LatencyModel:
        return self.inner.model

    @property
    def calls(self) -> int:
        return self.inner.calls

    @property
    def charges(self):
        return self.inner.charges

    def bind(self, url: str, handler) -> None:
        self.inner.bind(url, handler)

    def unbind(self, url: str) -> None:
        self.inner.unbind(url)

    def is_bound(self, url: str) -> bool:
        return self.inner.is_bound(url)

    def endpoints(self) -> list[str]:
        return self.inner.endpoints()

    def charge_messages(self, count: int) -> None:
        self.inner.charge_messages(count)

    def charge_db(self, reads: int = 0, writes: int = 0,
                  connect: bool = False) -> None:
        self.inner.charge_db(reads=reads, writes=writes, connect=connect)

    def charge_crypto(self, signs: int = 0, verifies: int = 0) -> None:
        self.inner.charge_crypto(signs=signs, verifies=verifies)

    def charge_ui(self, interactions: int = 1) -> None:
        self.inner.charge_ui(interactions)

    def charge_mail(self, deliveries: int = 1) -> None:
        self.inner.charge_mail(deliveries)

    # -- breakers ---------------------------------------------------------------------

    def breaker(self, url: str) -> CircuitBreaker:
        breaker = self._breakers.get(url)
        if breaker is None:
            breaker = CircuitBreaker(policy=self.breaker_policy)
            self._breakers[url] = breaker
        return breaker

    # -- invocation -------------------------------------------------------------------

    def call(self, url: str, operation: str, payload: dict) -> dict:
        self.stats.calls += 1
        obs_count("resilience.calls")
        breaker = self.breaker(url)
        started_ms = self.clock.elapsed_ms
        if (
            self.deadline_ms is not None
            and isinstance(payload, dict)
            and "deadlineMs" not in payload
        ):
            # Propagate the client's deadline to the service so expired
            # work is shed there *before* evaluation, not discarded
            # here after the engine already paid for it.
            payload = {**payload, "deadlineMs": started_ms + self.deadline_ms}
        last_error: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            now = self.clock.elapsed_ms
            if not breaker.allow(now):
                self.stats.breaker_rejections += 1
                if obs_enabled():
                    obs_count("resilience.breaker_rejections")
                    obs_event(
                        "resilience.breaker_open",
                        clock=self.clock,
                        url=url,
                        operation=operation,
                        consecutive_failures=breaker.consecutive_failures,
                    )
                raise CircuitOpenError(
                    f"circuit for {url!r} is open "
                    f"({breaker.consecutive_failures} consecutive failures; "
                    f"retry after {self.breaker_policy.reset_timeout_ms:.0f} "
                    "simulated ms)"
                ) from last_error
            if (
                self.deadline_ms is not None
                and now - started_ms >= self.deadline_ms
            ):
                self.stats.deadline_expiries += 1
                obs_count("resilience.deadline_expiries")
                raise TimeoutError(
                    f"deadline of {self.deadline_ms:.0f} ms exceeded calling "
                    f"{operation!r} at {url!r} (attempt {attempt})"
                ) from last_error
            self.stats.attempts += 1
            try:
                response = self.inner.call(url, operation, payload)
            except OverloadError as exc:
                # The peer shed us under load.  That is backpressure,
                # not peer failure: honor its Retry-After hint instead
                # of hammering it, and leave the breaker alone (the
                # endpoint answered — fast-failing the whole endpoint
                # would amplify the overload into an outage).
                last_error = exc
                if attempt >= self.retry.max_attempts:
                    continue
                delay = max(
                    self.retry.backoff_ms(url, operation, attempt),
                    exc.retry_after_ms,
                )
                if (
                    self.deadline_ms is not None
                    and self.clock.elapsed_ms - started_ms + delay
                    >= self.deadline_ms
                ):
                    self.stats.deadline_expiries += 1
                    obs_count("resilience.deadline_expiries")
                    raise TimeoutError(
                        f"deadline of {self.deadline_ms:.0f} ms exceeded "
                        f"calling {operation!r} at {url!r} (attempt "
                        f"{attempt}; honoring a {delay:.0f} ms overload "
                        "hint would overrun)"
                    ) from exc
                self.clock.advance(delay)
                self.stats.backoff_ms_total += delay
                self.stats.retries += 1
                self.stats.backpressure_waits += 1
                if obs_enabled():
                    obs_count("resilience.retries")
                    obs_count("resilience.backpressure_waits")
                    obs_observe("resilience.backoff_ms", delay)
                    obs_event(
                        "resilience.backpressure",
                        clock=self.clock,
                        url=url,
                        operation=operation,
                        attempt=attempt,
                        retry_after_ms=round(exc.retry_after_ms, 3),
                    )
                continue
            except TRANSIENT_ERRORS as exc:
                breaker.record_failure(self.clock.elapsed_ms)
                last_error = exc
                if attempt < self.retry.max_attempts:
                    delay = self.retry.backoff_ms(url, operation, attempt)
                    if (
                        self.deadline_ms is not None
                        and self.clock.elapsed_ms - started_ms + delay
                        >= self.deadline_ms
                    ):
                        # The backoff alone would land the retry past
                        # the deadline: give up now instead of burning
                        # the budget on a wait we already know is lost.
                        self.stats.deadline_expiries += 1
                        obs_count("resilience.deadline_expiries")
                        raise TimeoutError(
                            f"deadline of {self.deadline_ms:.0f} ms "
                            f"exceeded calling {operation!r} at {url!r} "
                            f"(attempt {attempt}; backing off "
                            f"{delay:.0f} ms would overrun)"
                        ) from exc
                    self.clock.advance(delay)
                    self.stats.backoff_ms_total += delay
                    self.stats.retries += 1
                    if obs_enabled():
                        obs_count("resilience.retries")
                        obs_observe("resilience.backoff_ms", delay)
                        obs_event(
                            "resilience.retry",
                            clock=self.clock,
                            url=url,
                            operation=operation,
                            attempt=attempt,
                            backoff_ms=round(delay, 3),
                            error=type(exc).__name__,
                        )
                continue
            breaker.record_success()
            return response
        self.stats.exhausted += 1
        obs_count("resilience.exhausted")
        raise RetryExhaustedError(
            f"{operation!r} at {url!r} failed after "
            f"{self.retry.max_attempts} attempts: {last_error}",
            attempts=self.retry.max_attempts,
            last_error=last_error,
        ) from last_error
