"""``ClientWS``: the client application driving a negotiation.

"A client application has also been developed, ClientWS.java,
implementing the negotiation protocol by invoking the Web service's
operations" (paper Section 6.2).  The client walks the three
operations in order and returns the final
:class:`~repro.negotiation.outcomes.NegotiationResult`.

Every logical call carries idempotency tokens — a deterministic
``requestId`` for ``StartNegotiation`` and a per-negotiation
``clientSeq`` for the phase operations — so a retried delivery (the
transport below may be a
:class:`~repro.services.resilience.ResilientTransport` retrying over a
faulty network) is deduplicated server-side instead of re-executing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from datetime import datetime
from typing import Optional

from repro.errors import ServiceError
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.outcomes import NegotiationResult
from repro.negotiation.strategies import Strategy
from repro.services.transport import SimTransport

__all__ = ["TNClient", "next_request_id"]

#: Process-wide requestId counter.  The TN service deduplicates
#: ``StartNegotiation`` on the requestId *globally*, so the id must be
#: unique across every client instance — a per-instance counter would
#: make two fresh clients for the same agent collide on ``name:req-1``
#: and silently receive each other's negotiation session.
_request_ids: "itertools.count[int]" = itertools.count(1)


def next_request_id(agent_name: str, resource: str) -> str:
    """Mint a process-unique ``StartNegotiation`` requestId.

    Shared by the sync and asyncio clients so ids never collide even
    when both drive the same service in one process.
    """
    return f"{agent_name}:{resource}:req-{next(_request_ids)}"


@dataclass
class TNClient:
    """Drives negotiations against one TN Web service endpoint."""

    transport: SimTransport  # or ResilientTransport / FaultInjector
    service_url: str
    agent: TrustXAgent
    #: Optional absolute per-operation deadline (simulated ms) carried
    #: as ``deadlineMs`` so a hardened service sheds expired work
    #: before evaluation.  A :class:`ResilientTransport` in the stack
    #: fills this automatically from its own budget when unset.
    deadline_ms: Optional[float] = None
    #: Optional explicit priority class (``"operation"`` /
    #: ``"formation"`` / ``"identification"``) for admission control.
    priority: Optional[str] = None

    def _extras(self) -> dict:
        extras: dict = {}
        if self.deadline_ms is not None:
            extras["deadlineMs"] = self.deadline_ms
        if self.priority is not None:
            extras["priority"] = self.priority
        return extras

    def negotiate(
        self,
        resource: str,
        strategy: Optional[Strategy] = None,
        at: Optional[datetime] = None,
    ) -> NegotiationResult:
        """Run StartNegotiation → PolicyExchange → CredentialExchange."""
        strategy = strategy or self.agent.strategy
        request_id = next_request_id(self.agent.name, resource)
        start = self.transport.call(
            self.service_url,
            "StartNegotiation",
            {
                "requester": self.agent,
                "strategy": strategy.value,
                "counterpartUrl": f"urn:repro:{self.agent.name}",
                "requestId": request_id,
                **self._extras(),
            },
        )
        negotiation_id = start.get("negotiationId")
        if not negotiation_id:
            raise ServiceError("StartNegotiation returned no negotiation id")
        self.transport.call(
            self.service_url,
            "PolicyExchange",
            {
                "negotiationId": negotiation_id,
                "resource": resource,
                "at": at,
                "clientSeq": 1,
                **self._extras(),
            },
        )
        exchange = self.transport.call(
            self.service_url,
            "CredentialExchange",
            {
                "negotiationId": negotiation_id,
                "clientSeq": 2,
                **self._extras(),
            },
        )
        result = exchange.get("result")
        if not isinstance(result, NegotiationResult):
            raise ServiceError("CredentialExchange returned no result")
        return result
