"""Simulated SOA layer (paper Section 6, Fig. 5).

The prototype ran the TN Web service on Tomcat/Axis and the VO
Management toolkit as a SOA of Java web services.  Since the
reproduction is a single-process simulator, this subpackage models
that stack deterministically:

- :mod:`clock` — a simulated clock advanced by the latency model;
- :mod:`transport` — in-process service dispatch charging per-call
  latencies (network RTT, SOAP marshalling, service work, DB access);
- :mod:`soap` — SOAP-ish envelopes for the operation payloads;
- :mod:`tn_service` — the TN Web service with the three operations of
  Section 6.2 (``StartNegotiation``, ``PolicyExchange``,
  ``CredentialExchange``), with idempotent retries, per-phase
  checkpoints, and crash/restore recovery;
- :mod:`tn_client` — ``ClientWS``, the client driving a negotiation
  through the service operations;
- :mod:`resilience` — :class:`ResilientTransport`: per-call deadlines,
  bounded retries with exponential backoff and deterministic jitter,
  and per-endpoint circuit breakers (all over simulated time);
- :mod:`vo_toolkit` — the Host / Initiator / Member editions, with
  quorum-based formation under partial failure.
"""

from repro.services.clock import SimClock
from repro.services.resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitState,
    ResilienceStats,
    ResilientTransport,
    RetryPolicy,
)
from repro.services.soap import SoapEnvelope, SoapFault
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import LatencyModel, SimTransport

__all__ = [
    "SimClock",
    "LatencyModel",
    "SimTransport",
    "SoapEnvelope",
    "SoapFault",
    "TNWebService",
    "TNClient",
    "ResilientTransport",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "CircuitState",
    "ResilienceStats",
]
