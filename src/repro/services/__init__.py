"""Simulated SOA layer (paper Section 6, Fig. 5).

The prototype ran the TN Web service on Tomcat/Axis and the VO
Management toolkit as a SOA of Java web services.  Since the
reproduction is a single-process simulator, this subpackage models
that stack deterministically:

- :mod:`clock` — a simulated clock advanced by the latency model;
- :mod:`transport` — in-process service dispatch charging per-call
  latencies (network RTT, SOAP marshalling, service work, DB access);
- :mod:`soap` — SOAP-ish envelopes for the operation payloads;
- :mod:`tn_service` — the TN Web service with the three operations of
  Section 6.2 (``StartNegotiation``, ``PolicyExchange``,
  ``CredentialExchange``), with idempotent retries, per-phase
  checkpoints, and crash/restore recovery;
- :mod:`tn_client` — ``ClientWS``, the client driving a negotiation
  through the service operations;
- :mod:`resilience` — :class:`ResilientTransport`: per-call deadlines,
  bounded retries with exponential backoff and deterministic jitter,
  and per-endpoint circuit breakers (all over simulated time);
- :mod:`vo_toolkit` — the Host / Initiator / Member editions, with
  quorum-based formation under partial failure.

.. deprecated:: 1.1
   Importing these classes from ``repro.services`` directly is
   deprecated; import them from :mod:`repro.api` (the blessed public
   surface) or from the deep canonical modules
   (``repro.services.tn_service`` etc.).  Package-level access still
   works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from importlib import import_module

__all__ = [
    "SimClock",
    "LatencyModel",
    "SimTransport",
    "SoapEnvelope",
    "SoapFault",
    "TNWebService",
    "TNClient",
    "ResilientTransport",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "CircuitState",
    "ResilienceStats",
]

#: Name -> canonical deep module, resolved lazily by ``__getattr__``.
_FORWARDS = {
    "SimClock": "repro.services.clock",
    "LatencyModel": "repro.services.transport",
    "SimTransport": "repro.services.transport",
    "SoapEnvelope": "repro.services.soap",
    "SoapFault": "repro.services.soap",
    "TNWebService": "repro.services.tn_service",
    "TNClient": "repro.services.tn_client",
    "ResilientTransport": "repro.services.resilience",
    "RetryPolicy": "repro.services.resilience",
    "CircuitBreaker": "repro.services.resilience",
    "CircuitBreakerPolicy": "repro.services.resilience",
    "CircuitState": "repro.services.resilience",
    "ResilienceStats": "repro.services.resilience",
}


def __getattr__(name: str):
    module_path = _FORWARDS.get(name)
    if module_path is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from 'repro.services' is deprecated; use "
        f"'repro.api' or the canonical module {module_path!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(import_module(module_path), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
