"""SOAP-ish envelopes for service payloads.

The prototype's operations exchange SOAP messages (Axis engine).  The
reproduction keeps the envelope structure — Header carrying the
operation name and session id, Body carrying named string parts — so
that message payloads have a concrete serialized form that tests can
round-trip, while staying deliberately simpler than full SOAP 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping
from xml.etree import ElementTree as ET

from repro.errors import ServiceError
from repro.xmlutil.canonical import canonicalize, parse_xml

__all__ = ["SoapEnvelope", "SoapFault"]

_ENVELOPE = "Envelope"
_HEADER = "Header"
_BODY = "Body"
_PART = "part"
_FAULT = "Fault"


class SoapFault(ServiceError):
    """A service-side failure surfaced through the envelope."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class SoapEnvelope:
    """One message: operation + session + named string parts.

    Part values are opaque strings; structured payloads (policies,
    credentials) travel in their own XML forms embedded as parts.
    """

    operation: str
    parts: Mapping[str, str] = field(default_factory=dict)
    session_id: str = ""

    def to_xml(self) -> str:
        root = ET.Element(_ENVELOPE)
        header = ET.SubElement(root, _HEADER)
        ET.SubElement(header, "operation").text = self.operation
        if self.session_id:
            ET.SubElement(header, "session").text = self.session_id
        body = ET.SubElement(root, _BODY)
        for name in sorted(self.parts):
            part = ET.SubElement(body, _PART, {"name": name})
            part.text = self.parts[name]
        return canonicalize(root)

    @classmethod
    def from_xml(cls, text: str) -> "SoapEnvelope":
        root = parse_xml(text)
        if root.tag != _ENVELOPE:
            raise ServiceError(f"expected <{_ENVELOPE}>, found <{root.tag}>")
        header = root.find(_HEADER)
        body = root.find(_BODY)
        if header is None or body is None:
            raise ServiceError("envelope lacks Header or Body")
        fault = body.find(_FAULT)
        if fault is not None:
            raise SoapFault(
                fault.attrib.get("code", "Server"),
                (fault.text or "").strip(),
            )
        operation_node = header.find("operation")
        if operation_node is None or not operation_node.text:
            raise ServiceError("envelope header lacks an operation")
        session_node = header.find("session")
        session_id = (
            session_node.text.strip()
            if session_node is not None and session_node.text
            else ""
        )
        parts: dict[str, str] = {}
        for part in body.findall(_PART):
            name = part.attrib.get("name")
            if not name:
                raise ServiceError("body part lacks a name")
            parts[name] = part.text or ""
        return cls(
            operation=operation_node.text.strip(),
            parts=parts,
            session_id=session_id,
        )

    @staticmethod
    def fault_xml(operation: str, code: str, message: str) -> str:
        """Serialize a fault response."""
        root = ET.Element(_ENVELOPE)
        header = ET.SubElement(root, _HEADER)
        ET.SubElement(header, "operation").text = operation
        body = ET.SubElement(root, _BODY)
        fault = ET.SubElement(body, _FAULT, {"code": code})
        fault.text = message
        return canonicalize(root)
