"""The simulated clock.

All end-to-end timings in the reproduction of Fig. 9 are *simulated
milliseconds* advanced by the latency model, so results are exactly
reproducible regardless of host speed.  The clock also carries the
current wall-clock datetime used for credential validity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

__all__ = ["SimClock"]

_EPOCH = datetime(2010, 3, 1, 12, 0, 0)


@dataclass
class SimClock:
    """Milliseconds counter + derived datetime."""

    start: datetime = _EPOCH
    elapsed_ms: float = 0.0

    def now(self) -> datetime:
        return self.start + timedelta(milliseconds=self.elapsed_ms)

    def advance(self, milliseconds: float) -> None:
        if milliseconds < 0:
            raise ValueError(f"cannot advance by {milliseconds} ms")
        self.elapsed_ms += milliseconds

    def advance_days(self, days: float) -> None:
        """Jump forward (e.g. months into the operational phase)."""
        self.advance(days * 24 * 3600 * 1000)

    def branch(self) -> "SimClock":
        """An independent clock starting at this clock's current time.

        The branch shares nothing with its parent: concurrent workers
        (threads or asyncio tasks) each advance their own branch, and a
        scheduler merges the deltas afterwards (see
        :meth:`repro.services.transport.SimTransport.clock_branch`).
        """
        return SimClock(start=self.start, elapsed_ms=self.elapsed_ms)

    def measure(self) -> "_Stopwatch":
        """Context manager capturing simulated elapsed time."""
        return _Stopwatch(self)


class _Stopwatch:
    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self.elapsed_ms = 0.0

    def __enter__(self) -> "_Stopwatch":
        self._begin = self._clock.elapsed_ms
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_ms = self._clock.elapsed_ms - self._begin
