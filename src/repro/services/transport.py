"""Latency-modelled in-process transport.

The paper's experiments (Section 6.3.1) measured wall-clock times of
SOAP calls through Tomcat/Axis against Oracle/MySQL on a Pentium 4.
The reproduction replaces that testbed with a deterministic latency
model: every simulated operation advances the
:class:`~repro.services.clock.SimClock` by a calibrated cost.  The
default constants are tuned so that the *join without TN* flow lands
near the paper's ≈3 s (see ``benchmarks/test_bench_fig9_join.py`` and
EXPERIMENTS.md); all comparisons are about the *shape* of the result,
not absolute numbers.

Concurrent execution (``execute_formation(parallel=True)`` worker
threads, or asyncio tasks under :mod:`repro.services.aio`) runs
independent flows that must each charge latency to their *own*
timeline: two concurrent joins each take ~3 simulated seconds, not 6.
:meth:`SimTransport.clock_branch` installs a **context-local** clock
override via :mod:`contextvars` — every charge made inside the block
lands on the branch clock.  New threads and newly-created asyncio
tasks each get their own context (a task snapshots its creator's
context at creation), so branches entered inside a worker thread or a
task never leak into siblings.  The branches are then merged by the
scheduler as a critical path (``max`` of the branch durations).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import TransportError
from repro.perf.caches import NULL_LOCK
from repro.services.clock import SimClock

__all__ = ["ChargeStats", "LatencyModel", "SimTransport"]

#: Context-local clock branches, keyed by ``id(transport)``.  The value
#: is an immutable mapping copied on write: mutating a dict stored in a
#: ContextVar would leak writes across contexts sharing the reference,
#: so :meth:`SimTransport.clock_branch` always sets a *new* dict.  A
#: module-level var (rather than one per transport) keeps the number of
#: ContextVars bounded for the life of the process.
_CLOCK_BRANCHES: ContextVar[dict] = ContextVar("sim_clock_branches", default={})


@dataclass(frozen=True)
class LatencyModel:
    """Per-operation simulated costs in milliseconds.

    Calibrated to a 2010-era service stack (Pentium 4 @ 2 GHz, Tomcat,
    Axis SOAP, networked DB), per the paper's testbed description.
    """

    network_rtt_ms: float = 25.0      # one request/response round trip
    soap_marshal_ms: float = 12.0     # marshal + unmarshal per message
    service_dispatch_ms: float = 23.0 # container + servlet overhead
    db_connect_ms: float = 100.0      # opening the Oracle connection
    db_read_ms: float = 15.0
    db_write_ms: float = 25.0
    crypto_sign_ms: float = 35.0      # RSA-1024 sign on a P4
    crypto_verify_ms: float = 12.0
    ui_interaction_ms: float = 480.0  # operator clicking through the GUI
    mail_delivery_ms: float = 290.0   # invitation mailbox hop

    def message_cost(self) -> float:
        """Cost of one protocol message through the service stack."""
        return (
            self.network_rtt_ms
            + self.soap_marshal_ms
            + self.service_dispatch_ms
        )


@dataclass
class ChargeStats:
    """Accumulated counts of every charged cost unit.

    Workers in ``execute_formation(parallel=True)`` charge costs from
    several threads at once, so the transport accumulates these under
    its lock and hands out snapshot copies — callers never see a
    half-updated record.
    """

    messages: int = 0
    db_reads: int = 0
    db_writes: int = 0
    db_connects: int = 0
    crypto_signs: int = 0
    crypto_verifies: int = 0
    ui_interactions: int = 0
    mail_deliveries: int = 0

    def copy(self) -> "ChargeStats":
        return ChargeStats(**self.__dict__)


class SimTransport:
    """Registers service endpoints and charges latencies on calls.

    Keeps the historical ``SimTransport()`` / ``SimTransport(model=...)``
    construction signature.  ``clock`` resolves to the context's branch
    clock inside a :meth:`clock_branch` block and to the shared base
    clock everywhere else, so transport decorators that delegate
    ``.clock`` by property (:class:`~repro.services.resilience.
    ResilientTransport`, :class:`~repro.faults.injector.FaultInjector`)
    pick up the branch transparently.

    ``single_threaded=True`` elides the charge-counter lock (swapped
    for a no-op): correct only when every charge happens on one thread,
    which is exactly the asyncio driver's situation — the event loop
    serializes all charges, so the per-charge acquire/release is pure
    overhead.
    """

    def __init__(self, clock: Optional[SimClock] = None,
                 model: Optional[LatencyModel] = None,
                 single_threaded: bool = False) -> None:
        self._base_clock = clock if clock is not None else SimClock()
        self.model = model if model is not None else LatencyModel()
        self._endpoints: dict[str, Callable[[str, dict], dict]] = {}
        self._calls = 0
        self.single_threaded = bool(single_threaded)
        self._calls_lock = (
            NULL_LOCK if self.single_threaded else threading.Lock()
        )
        self._charges = ChargeStats()

    # -- clock branching ------------------------------------------------------------

    @property
    def clock(self) -> SimClock:
        branch = _CLOCK_BRANCHES.get().get(id(self))
        return branch if branch is not None else self._base_clock

    @property
    def base_clock(self) -> SimClock:
        """The shared main-timeline clock, ignoring any branch."""
        return self._base_clock

    @contextmanager
    def clock_branch(
        self, source: Optional[SimClock] = None
    ) -> Iterator[SimClock]:
        """Route this context's charges to a private clock branch.

        The branch starts at the base clock's current elapsed time (a
        worker's timeline begins when the batch is dispatched) and is
        yielded so the scheduler can read its delta afterwards.  The
        base clock is never advanced from inside a branch; merging the
        deltas (critical path vs. serial sum) is the caller's job.
        Passing ``source`` branches from that clock instead — e.g. a
        hedged request forks *sub*-branches off the task's current
        branch so both racers start from the same mid-flight instant.

        The override is installed in the current :mod:`contextvars`
        context, so it is naturally thread-local *and* task-local:
        enter the branch inside the worker thread or asyncio task that
        should run on it.
        """
        branch = (source if source is not None else self._base_clock).branch()
        branches = dict(_CLOCK_BRANCHES.get())
        branches[id(self)] = branch
        token = _CLOCK_BRANCHES.set(branches)
        try:
            yield branch
        finally:
            _CLOCK_BRANCHES.reset(token)

    # -- endpoint registry -------------------------------------------------------

    def bind(self, url: str, handler: Callable[[str, dict], dict]) -> None:
        """Expose ``handler(operation, payload) -> payload`` at ``url``."""
        if url in self._endpoints:
            raise TransportError(f"endpoint {url!r} is already bound")
        self._endpoints[url] = handler

    def unbind(self, url: str) -> None:
        self._endpoints.pop(url, None)

    def is_bound(self, url: str) -> bool:
        return url in self._endpoints

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    # -- invocation ----------------------------------------------------------------

    @property
    def calls(self) -> int:
        return self._calls

    @property
    def charges(self) -> ChargeStats:
        """Snapshot of the accumulated charge counters (thread-safe)."""
        with self._calls_lock:
            return self._charges.copy()

    @calls.setter
    def calls(self, value: int) -> None:
        with self._calls_lock:
            self._calls = value

    def call(self, url: str, operation: str, payload: dict) -> dict:
        """One SOAP round trip: RTT + marshalling + dispatch, then the
        handler (which charges its own DB/crypto costs)."""
        handler = self._endpoints.get(url)
        if handler is None:
            raise TransportError(f"no endpoint bound at {url!r}")
        self.clock.advance(self.model.message_cost())
        with self._calls_lock:
            self._calls += 1
            self._charges.messages += 1
        result = handler(operation, payload)
        if hasattr(result, "__await__"):
            # An async endpoint reached through the sync path would
            # silently return an unawaited coroutine; fail loudly.
            result.close()
            raise TransportError(
                f"endpoint {url!r} is async; call it through "
                "AioSimTransport.acall"
            )
        return result

    # -- cost helpers for service implementations ----------------------------------
    #
    # Clock advances go to the context's branch clock (each worker has
    # its own timeline), but the charge *counters* are shared across
    # threads, so they accumulate under the lock.

    def charge_messages(self, count: int) -> None:
        """Charge ``count`` additional protocol messages (negotiation
        rounds ride on the session opened by the initial call)."""
        if count < 0:
            raise TransportError(f"negative message count {count}")
        self.clock.advance(count * self.model.message_cost())
        with self._calls_lock:
            self._charges.messages += count

    def charge_db(self, reads: int = 0, writes: int = 0, connect: bool = False) -> None:
        cost = reads * self.model.db_read_ms + writes * self.model.db_write_ms
        if connect:
            cost += self.model.db_connect_ms
        self.clock.advance(cost)
        with self._calls_lock:
            self._charges.db_reads += reads
            self._charges.db_writes += writes
            if connect:
                self._charges.db_connects += 1

    def charge_crypto(self, signs: int = 0, verifies: int = 0) -> None:
        self.clock.advance(
            signs * self.model.crypto_sign_ms
            + verifies * self.model.crypto_verify_ms
        )
        with self._calls_lock:
            self._charges.crypto_signs += signs
            self._charges.crypto_verifies += verifies

    def charge_ui(self, interactions: int = 1) -> None:
        self.clock.advance(interactions * self.model.ui_interaction_ms)
        with self._calls_lock:
            self._charges.ui_interactions += interactions

    def charge_mail(self, deliveries: int = 1) -> None:
        self.clock.advance(deliveries * self.model.mail_delivery_ms)
        with self._calls_lock:
            self._charges.mail_deliveries += deliveries
