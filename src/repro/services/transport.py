"""Latency-modelled in-process transport.

The paper's experiments (Section 6.3.1) measured wall-clock times of
SOAP calls through Tomcat/Axis against Oracle/MySQL on a Pentium 4.
The reproduction replaces that testbed with a deterministic latency
model: every simulated operation advances the
:class:`~repro.services.clock.SimClock` by a calibrated cost.  The
default constants are tuned so that the *join without TN* flow lands
near the paper's ≈3 s (see ``benchmarks/test_bench_fig9_join.py`` and
EXPERIMENTS.md); all comparisons are about the *shape* of the result,
not absolute numbers.

Parallel formation (``execute_formation(parallel=True)``) runs
independent joins on worker threads, each of which must charge latency
to its *own* timeline: two concurrent joins each take ~3 simulated
seconds, not 6.  :meth:`SimTransport.clock_branch` installs a
thread-local clock override for the current thread — every charge made
by that thread lands on the branch clock while other threads (and the
main timeline) are unaffected.  The branches are then merged by the
scheduler as a critical path (``max`` of the branch durations).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import TransportError
from repro.services.clock import SimClock

__all__ = ["ChargeStats", "LatencyModel", "SimTransport"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-operation simulated costs in milliseconds.

    Calibrated to a 2010-era service stack (Pentium 4 @ 2 GHz, Tomcat,
    Axis SOAP, networked DB), per the paper's testbed description.
    """

    network_rtt_ms: float = 25.0      # one request/response round trip
    soap_marshal_ms: float = 12.0     # marshal + unmarshal per message
    service_dispatch_ms: float = 23.0 # container + servlet overhead
    db_connect_ms: float = 100.0      # opening the Oracle connection
    db_read_ms: float = 15.0
    db_write_ms: float = 25.0
    crypto_sign_ms: float = 35.0      # RSA-1024 sign on a P4
    crypto_verify_ms: float = 12.0
    ui_interaction_ms: float = 480.0  # operator clicking through the GUI
    mail_delivery_ms: float = 290.0   # invitation mailbox hop

    def message_cost(self) -> float:
        """Cost of one protocol message through the service stack."""
        return (
            self.network_rtt_ms
            + self.soap_marshal_ms
            + self.service_dispatch_ms
        )


@dataclass
class ChargeStats:
    """Accumulated counts of every charged cost unit.

    Workers in ``execute_formation(parallel=True)`` charge costs from
    several threads at once, so the transport accumulates these under
    its lock and hands out snapshot copies — callers never see a
    half-updated record.
    """

    messages: int = 0
    db_reads: int = 0
    db_writes: int = 0
    db_connects: int = 0
    crypto_signs: int = 0
    crypto_verifies: int = 0
    ui_interactions: int = 0
    mail_deliveries: int = 0

    def copy(self) -> "ChargeStats":
        return ChargeStats(**self.__dict__)


class SimTransport:
    """Registers service endpoints and charges latencies on calls.

    Keeps the historical ``SimTransport()`` / ``SimTransport(model=...)``
    construction signature.  ``clock`` resolves to the thread's branch
    clock inside a :meth:`clock_branch` block and to the shared base
    clock everywhere else, so transport decorators that delegate
    ``.clock`` by property (:class:`~repro.services.resilience.
    ResilientTransport`, :class:`~repro.faults.injector.FaultInjector`)
    pick up the branch transparently.
    """

    def __init__(self, clock: Optional[SimClock] = None,
                 model: Optional[LatencyModel] = None) -> None:
        self._base_clock = clock if clock is not None else SimClock()
        self.model = model if model is not None else LatencyModel()
        self._endpoints: dict[str, Callable[[str, dict], dict]] = {}
        self._calls = 0
        self._calls_lock = threading.Lock()
        self._charges = ChargeStats()
        self._local = threading.local()

    # -- clock branching ------------------------------------------------------------

    @property
    def clock(self) -> SimClock:
        branch = getattr(self._local, "clock", None)
        return branch if branch is not None else self._base_clock

    @property
    def base_clock(self) -> SimClock:
        """The shared main-timeline clock, ignoring any branch."""
        return self._base_clock

    @contextmanager
    def clock_branch(self) -> Iterator[SimClock]:
        """Route this thread's charges to a private clock branch.

        The branch starts at the base clock's current elapsed time (a
        worker's timeline begins when the batch is dispatched) and is
        yielded so the scheduler can read its delta afterwards.  The
        base clock is never advanced from inside a branch; merging the
        deltas (critical path vs. serial sum) is the caller's job.
        """
        branch = SimClock(
            start=self._base_clock.start,
            elapsed_ms=self._base_clock.elapsed_ms,
        )
        previous = getattr(self._local, "clock", None)
        self._local.clock = branch
        try:
            yield branch
        finally:
            self._local.clock = previous

    # -- endpoint registry -------------------------------------------------------

    def bind(self, url: str, handler: Callable[[str, dict], dict]) -> None:
        """Expose ``handler(operation, payload) -> payload`` at ``url``."""
        if url in self._endpoints:
            raise TransportError(f"endpoint {url!r} is already bound")
        self._endpoints[url] = handler

    def unbind(self, url: str) -> None:
        self._endpoints.pop(url, None)

    def is_bound(self, url: str) -> bool:
        return url in self._endpoints

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    # -- invocation ----------------------------------------------------------------

    @property
    def calls(self) -> int:
        return self._calls

    @property
    def charges(self) -> ChargeStats:
        """Snapshot of the accumulated charge counters (thread-safe)."""
        with self._calls_lock:
            return self._charges.copy()

    @calls.setter
    def calls(self, value: int) -> None:
        with self._calls_lock:
            self._calls = value

    def call(self, url: str, operation: str, payload: dict) -> dict:
        """One SOAP round trip: RTT + marshalling + dispatch, then the
        handler (which charges its own DB/crypto costs)."""
        handler = self._endpoints.get(url)
        if handler is None:
            raise TransportError(f"no endpoint bound at {url!r}")
        self.clock.advance(self.model.message_cost())
        with self._calls_lock:
            self._calls += 1
            self._charges.messages += 1
        return handler(operation, payload)

    # -- cost helpers for service implementations ----------------------------------
    #
    # Clock advances go to the thread's branch clock (each worker has
    # its own timeline), but the charge *counters* are shared across
    # threads, so they accumulate under the lock.

    def charge_messages(self, count: int) -> None:
        """Charge ``count`` additional protocol messages (negotiation
        rounds ride on the session opened by the initial call)."""
        if count < 0:
            raise TransportError(f"negative message count {count}")
        self.clock.advance(count * self.model.message_cost())
        with self._calls_lock:
            self._charges.messages += count

    def charge_db(self, reads: int = 0, writes: int = 0, connect: bool = False) -> None:
        cost = reads * self.model.db_read_ms + writes * self.model.db_write_ms
        if connect:
            cost += self.model.db_connect_ms
        self.clock.advance(cost)
        with self._calls_lock:
            self._charges.db_reads += reads
            self._charges.db_writes += writes
            if connect:
                self._charges.db_connects += 1

    def charge_crypto(self, signs: int = 0, verifies: int = 0) -> None:
        self.clock.advance(
            signs * self.model.crypto_sign_ms
            + verifies * self.model.crypto_verify_ms
        )
        with self._calls_lock:
            self._charges.crypto_signs += signs
            self._charges.crypto_verifies += verifies

    def charge_ui(self, interactions: int = 1) -> None:
        self.clock.advance(interactions * self.model.ui_interaction_ms)
        with self._calls_lock:
            self._charges.ui_interactions += interactions

    def charge_mail(self, deliveries: int = 1) -> None:
        self.clock.advance(deliveries * self.model.mail_delivery_ms)
        with self._calls_lock:
            self._charges.mail_deliveries += deliveries
