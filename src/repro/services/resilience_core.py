"""Sans-IO resilience core: retry/backoff/deadline/breaker decisions.

This module is the I/O-free heart of the client-side survival kit,
mirroring :mod:`repro.negotiation.core`: all of the *decision* logic
that used to live inline in ``ResilientTransport.call`` — bounded
retries, exponential backoff with deterministic jitter, per-call
deadlines, circuit breaking, and backpressure honoring — is expressed
as a generator that yields **effects** and receives **outcomes**:

- :class:`Attempt` — "invoke the endpoint now"; the driver performs
  the call (``inner.call`` for the sync driver, ``await inner.acall``
  for the asyncio driver) and replies with an :class:`AttemptOutcome`
  carrying either the response or the raised exception *as data*,
  plus the post-attempt simulated time.
- :class:`Sleep` — "charge this much backoff to the clock"; the
  driver advances its clock (the base clock, or a task-local branch)
  and replies with the new simulated time.
- :class:`Fail` — "raise this error"; terminal.  The core pre-wires
  ``__cause__``/``__suppress_context__`` so the driver's bare
  ``raise`` reproduces the original ``raise ... from ...`` chaining
  bit-for-bit.

Because the core never touches a clock, a socket, or an event loop,
the sync :class:`~repro.services.resilience.ResilientTransport` and
the asyncio :class:`~repro.services.aio_resilience.AioResilientTransport`
are thin drivers over *identical* decision logic — proven by the
three-way parity suite in ``tests/faults/test_resilience_parity.py``.

Two behavioral fixes live here (and only here, so both drivers get
them):

- **Single half-open probe.**  :meth:`CircuitBreaker.allow` now
  admits exactly one probe per reset window (``probe_in_flight``);
  concurrent callers fail fast instead of stampeding a convalescing
  endpoint.  The core tracks whether *this* call holds the probe
  token so the holder is never self-rejected across a backpressure
  retry, and releases the token when a probe attempt resolves without
  a breaker verdict (e.g. an application-level error).
- **Deadline normalization.**  The legacy transport stamped
  ``deadlineMs`` only when absent, forwarding a stale value from a
  reused payload verbatim.  The core re-stamps when the supplied
  deadline is missing, non-numeric, already expired, or *looser*
  than this call's own budget; a valid tighter deadline is preserved.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Generator, Optional, Union

from repro.errors import (
    CircuitOpenError,
    DatabaseUnavailableError,
    OverloadError,
    RetryExhaustedError,
    TimeoutError,
    TransportError,
)
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    event as obs_event,
    observe as obs_observe,
)

__all__ = [
    "TRANSIENT_ERRORS",
    "RetryPolicy",
    "CircuitBreakerPolicy",
    "CircuitState",
    "CircuitBreaker",
    "ResilienceStats",
    "Attempt",
    "Sleep",
    "Fail",
    "AttemptOutcome",
    "Effect",
    "resilience_call",
]

#: Failures worth retrying: the endpoint may answer next time.
TRANSIENT_ERRORS = (TimeoutError, TransportError, DatabaseUnavailableError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter."""

    max_attempts: int = 4
    base_backoff_ms: float = 100.0
    multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter_ms: float = 50.0
    #: Seed folded into the jitter hash so distinct runs can decorrelate
    #: while staying reproducible.
    jitter_seed: int = 0

    def backoff_ms(self, url: str, operation: str, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        base = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.multiplier ** (attempt - 1),
        )
        if self.jitter_ms <= 0:
            return base
        token = f"{self.jitter_seed}|{url}|{operation}|{attempt}"
        fraction = (zlib.crc32(token.encode("utf-8")) % 1000) / 999.0
        return base + fraction * self.jitter_ms


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    failure_threshold: int = 5
    reset_timeout_ms: float = 5000.0


class CircuitState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Per-endpoint breaker over simulated time.

    HALF_OPEN admits exactly **one** probe per reset window: the first
    caller through :meth:`allow` takes the probe token
    (``probe_in_flight``); everyone else fails fast until the probe
    resolves.  A success closes the breaker, a transient failure
    re-opens it, and a probe that ends without a breaker verdict
    (application-level error) must hand the token back via
    :meth:`release_probe` — the core does this automatically.
    """

    policy: CircuitBreakerPolicy = field(default_factory=CircuitBreakerPolicy)
    state: CircuitState = CircuitState.CLOSED
    consecutive_failures: int = 0
    opened_at_ms: float = 0.0
    opens: int = 0
    probe_in_flight: bool = False

    def allow(self, now_ms: float) -> bool:
        """Whether a call may go through right now."""
        if self.state is CircuitState.OPEN:
            if now_ms - self.opened_at_ms >= self.policy.reset_timeout_ms:
                self.state = CircuitState.HALF_OPEN
                self.probe_in_flight = True
                return True
            return False
        if self.state is CircuitState.HALF_OPEN:
            if self.probe_in_flight:
                return False  # one probe at a time; don't stampede
            self.probe_in_flight = True
            return True
        return True  # CLOSED

    def record_success(self) -> None:
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0
        self.probe_in_flight = False

    def record_failure(self, now_ms: float) -> None:
        self.consecutive_failures += 1
        self.probe_in_flight = False
        if self.state is CircuitState.HALF_OPEN:
            self._open(now_ms)  # failed probe: straight back to OPEN
        elif self.consecutive_failures >= self.policy.failure_threshold:
            self._open(now_ms)

    def release_probe(self) -> None:
        """Hand back the half-open probe token without a verdict."""
        if self.state is CircuitState.HALF_OPEN:
            self.probe_in_flight = False

    def _open(self, now_ms: float) -> None:
        self.state = CircuitState.OPEN
        self.opened_at_ms = now_ms
        self.opens += 1
        self.probe_in_flight = False


@dataclass
class ResilienceStats:
    calls: int = 0
    attempts: int = 0
    retries: int = 0
    backoff_ms_total: float = 0.0
    deadline_expiries: int = 0
    breaker_rejections: int = 0
    exhausted: int = 0
    #: Retries that honored a server ``retry_after_ms`` overload hint.
    backpressure_waits: int = 0


# -- effects ----------------------------------------------------------------------


@dataclass(frozen=True)
class Attempt:
    """Invoke the endpoint; reply with an :class:`AttemptOutcome`."""

    url: str
    operation: str
    payload: dict
    attempt: int


@dataclass(frozen=True)
class Sleep:
    """Charge ``delay_ms`` to the clock; reply with the new elapsed ms."""

    delay_ms: float
    kind: str  # "backoff" | "backpressure"


@dataclass(frozen=True)
class Fail:
    """Terminal: raise ``error`` (cause/context chaining pre-wired)."""

    error: Exception


@dataclass(frozen=True)
class AttemptOutcome:
    """Result of one :class:`Attempt`: response *or* raised exception,
    plus the driver's simulated time after the attempt."""

    response: Optional[dict] = None
    error: Optional[Exception] = None
    now_ms: float = 0.0


Effect = Union[Attempt, Sleep, Fail]


def _chained(error: Exception, cause: Optional[Exception]) -> Exception:
    """Pre-wire ``raise error from cause`` so the driver's bare
    ``raise`` reproduces the legacy exception chaining exactly."""
    error.__cause__ = cause
    error.__suppress_context__ = True
    return error


def _valid_deadline(supplied: object, started_ms: float,
                    stamped_ms: float) -> bool:
    """A caller-supplied ``deadlineMs`` is honored only when it is a
    real number, not already expired, and no looser than this call's
    own budget."""
    if isinstance(supplied, bool) or not isinstance(supplied, (int, float)):
        return False
    return started_ms < supplied <= stamped_ms


def resilience_call(
    *,
    url: str,
    operation: str,
    payload: dict,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    deadline_ms: Optional[float],
    stats: ResilienceStats,
    started_ms: float,
    clock: object = None,
) -> Generator[Effect, Union[AttemptOutcome, float, None], dict]:
    """One logical resilient call as a pure effect generator.

    The ``clock`` parameter is used **only** to timestamp obs events
    (the log wants simulated time); every timing *decision* is made
    from ``started_ms`` and the ``now_ms`` values the driver reports
    back, so the core itself never reads a clock.

    The driver contract:

    - prime with ``next(gen)``;
    - :class:`Attempt` → perform the call, catch ``Exception``, and
      ``gen.send(AttemptOutcome(...))``;
    - :class:`Sleep` → advance the clock by ``delay_ms`` and
      ``gen.send(new_elapsed_ms)``;
    - :class:`Fail` → ``raise effect.error`` (do not resume);
    - ``StopIteration.value`` is the successful response.
    """
    stats.calls += 1
    obs_count("resilience.calls")
    if deadline_ms is not None and isinstance(payload, dict):
        # Propagate the client's deadline to the service so expired
        # work is shed there *before* evaluation, not discarded here
        # after the engine already paid for it.  Re-stamp unless the
        # supplied deadline is a valid, tighter-or-equal budget.
        stamped = started_ms + deadline_ms
        if not _valid_deadline(payload.get("deadlineMs"), started_ms, stamped):
            payload = {**payload, "deadlineMs": stamped}
    last_error: Optional[Exception] = None
    holds_probe = False
    now = started_ms
    for attempt in range(1, retry.max_attempts + 1):
        if holds_probe and breaker.state is CircuitState.HALF_OPEN:
            allowed = True  # we already hold the probe token
        else:
            allowed = breaker.allow(now)
            if allowed and breaker.state is CircuitState.HALF_OPEN:
                holds_probe = True
        if not allowed:
            stats.breaker_rejections += 1
            if obs_enabled():
                obs_count("resilience.breaker_rejections")
                obs_event(
                    "resilience.breaker_open",
                    clock=clock,
                    url=url,
                    operation=operation,
                    consecutive_failures=breaker.consecutive_failures,
                )
            yield Fail(_chained(
                CircuitOpenError(
                    f"circuit for {url!r} is open "
                    f"({breaker.consecutive_failures} consecutive failures; "
                    f"retry after {breaker.policy.reset_timeout_ms:.0f} "
                    "simulated ms)"
                ),
                last_error,
            ))
            return {}
        if deadline_ms is not None and now - started_ms >= deadline_ms:
            stats.deadline_expiries += 1
            obs_count("resilience.deadline_expiries")
            if holds_probe:
                breaker.release_probe()
                holds_probe = False
            yield Fail(_chained(
                TimeoutError(
                    f"deadline of {deadline_ms:.0f} ms exceeded calling "
                    f"{operation!r} at {url!r} (attempt {attempt})"
                ),
                last_error,
            ))
            return {}
        stats.attempts += 1
        outcome = yield Attempt(
            url=url, operation=operation, payload=payload, attempt=attempt
        )
        now = outcome.now_ms
        if outcome.error is None:
            breaker.record_success()
            return outcome.response
        exc = outcome.error
        if isinstance(exc, OverloadError):
            # The peer shed us under load.  That is backpressure, not
            # peer failure: honor its Retry-After hint instead of
            # hammering it, and leave the breaker alone (the endpoint
            # answered — fast-failing the whole endpoint would amplify
            # the overload into an outage).
            last_error = exc
            if attempt >= retry.max_attempts:
                continue
            delay = max(
                retry.backoff_ms(url, operation, attempt),
                exc.retry_after_ms,
            )
            if (
                deadline_ms is not None
                and now - started_ms + delay >= deadline_ms
            ):
                stats.deadline_expiries += 1
                obs_count("resilience.deadline_expiries")
                if holds_probe:
                    breaker.release_probe()
                    holds_probe = False
                yield Fail(_chained(
                    TimeoutError(
                        f"deadline of {deadline_ms:.0f} ms exceeded "
                        f"calling {operation!r} at {url!r} (attempt "
                        f"{attempt}; honoring a {delay:.0f} ms overload "
                        "hint would overrun)"
                    ),
                    exc,
                ))
                return {}
            now = yield Sleep(delay, kind="backpressure")
            stats.backoff_ms_total += delay
            stats.retries += 1
            stats.backpressure_waits += 1
            if obs_enabled():
                obs_count("resilience.retries")
                obs_count("resilience.backpressure_waits")
                obs_observe("resilience.backoff_ms", delay)
                obs_event(
                    "resilience.backpressure",
                    clock=clock,
                    url=url,
                    operation=operation,
                    attempt=attempt,
                    retry_after_ms=round(exc.retry_after_ms, 3),
                )
            continue
        if isinstance(exc, TRANSIENT_ERRORS):
            breaker.record_failure(now)
            holds_probe = False
            last_error = exc
            if attempt < retry.max_attempts:
                delay = retry.backoff_ms(url, operation, attempt)
                if (
                    deadline_ms is not None
                    and now - started_ms + delay >= deadline_ms
                ):
                    # The backoff alone would land the retry past the
                    # deadline: give up now instead of burning the
                    # budget on a wait we already know is lost.
                    stats.deadline_expiries += 1
                    obs_count("resilience.deadline_expiries")
                    yield Fail(_chained(
                        TimeoutError(
                            f"deadline of {deadline_ms:.0f} ms "
                            f"exceeded calling {operation!r} at {url!r} "
                            f"(attempt {attempt}; backing off "
                            f"{delay:.0f} ms would overrun)"
                        ),
                        exc,
                    ))
                    return {}
                now = yield Sleep(delay, kind="backoff")
                stats.backoff_ms_total += delay
                stats.retries += 1
                if obs_enabled():
                    obs_count("resilience.retries")
                    obs_observe("resilience.backoff_ms", delay)
                    obs_event(
                        "resilience.retry",
                        clock=clock,
                        url=url,
                        operation=operation,
                        attempt=attempt,
                        backoff_ms=round(delay, 3),
                        error=type(exc).__name__,
                    )
            continue
        # Application-level error: the endpoint answered, the answer
        # was just "no".  Not retried, breaker untouched — but a probe
        # token must not leak with it (a stuck token would deadlock
        # the breaker in HALF_OPEN forever).
        if holds_probe:
            breaker.release_probe()
            holds_probe = False
        yield Fail(exc)
        return {}
    stats.exhausted += 1
    obs_count("resilience.exhausted")
    if holds_probe:
        breaker.release_probe()
        holds_probe = False
    yield Fail(_chained(
        RetryExhaustedError(
            f"{operation!r} at {url!r} failed after "
            f"{retry.max_attempts} attempts: {last_error}",
            attempts=retry.max_attempts,
            last_error=last_error,
        ),
        last_error,
    ))
    return {}
