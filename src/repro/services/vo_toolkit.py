"""The VO Management toolkit: Host, Initiator, and Member editions.

"The toolkit is deployed as three distinct components" (paper
Section 6.1): the *Host Edition* (member registration, VO monitoring,
the list of services available for participating), the *Initiator
Edition* (VO creation and management, candidate discovery, invitations,
role assignment), and the *Member Edition* (registration with a host,
mailbox, property configuration).

This module reproduces those components over the simulated SOA: every
toolkit step charges the latency model, so the end-to-end *join*
flow — with or without the interleaved trust negotiation — can be
timed exactly as the paper's experiment does (Section 6.3.1, Fig. 9).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.errors import (
    CircuitOpenError,
    DatabaseUnavailableError,
    ErrorCode,
    MembershipError,
    RetryExhaustedError,
    ServiceError,
    TimeoutError,
    TransportError,
)
from repro.hardening.config import HardeningConfig
from repro.negotiation.cache import SequenceCache
from repro.negotiation.outcomes import FailureReason, NegotiationResult
from repro.negotiation.strategies import Strategy
from repro.perf.caches import NULL_LOCK
from repro.obs import (
    attach as obs_attach,
    count as obs_count,
    current as obs_current,
    enabled as obs_enabled,
    event as obs_event,
    observe as obs_observe,
    span as obs_span,
)
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from repro.vo.contract import Contract
from repro.vo.initiator import VOInitiator
from repro.vo.member import VOMember
from repro.vo.organization import VirtualOrganization
from repro.vo.registry import ServiceRegistry
from repro.vo.reputation import ReputationEvent

__all__ = [
    "HostEdition",
    "MemberEdition",
    "InitiatorEdition",
    "JoinOutcome",
    "FormationOutcome",
    "UNREACHABLE_ERRORS",
]

#: Typed failures meaning "the peer did not answer" (as opposed to "the
#: peer said no"): the join survives them in degraded mode.
UNREACHABLE_ERRORS = (
    TimeoutError,
    RetryExhaustedError,
    CircuitOpenError,
    TransportError,
    DatabaseUnavailableError,
)


class HostEdition:
    """Member registration and VO monitoring services."""

    def __init__(
        self,
        transport: SimTransport,
        url: str = "urn:vo:host",
        hardening: Optional[HardeningConfig] = None,
    ) -> None:
        self.transport = transport
        self.url = url
        self.hardening = hardening
        self.admission = (
            hardening.admission() if hardening is not None else None
        )
        self.registry = ServiceRegistry()
        self._registered: dict[str, VOMember] = {}
        self._active_vos: dict[str, VirtualOrganization] = {}
        transport.bind(url, self._handle)

    def _handle(self, operation: str, payload: dict) -> dict:
        if self.admission is not None:
            # Priority-aware shedding: operation-phase traffic
            # (MonitorVO, ServiceAvailability) outlasts formation and
            # identification traffic under load.
            self.admission.admit(
                operation, payload, self.transport.clock.elapsed_ms
            )
        if operation == "RegisterMember":
            member = payload.get("member")
            if not isinstance(member, VOMember):
                raise ServiceError("RegisterMember requires a member")
            self.transport.charge_db(writes=1 + len(member.services))
            self._registered[member.name] = member
            member.prepare(self.registry)
            return {"registered": member.name}
        if operation == "ListServices":
            self.transport.charge_db(reads=1)
            role = payload.get("role")
            if role:
                found = self.registry.find_by_role(role)
            else:
                found = self.registry.all()
            return {"services": found}
        if operation == "ServiceAvailability":
            # "the list of services that are available for participating
            # in a VO (this includes the ones that are already in a VO
            # plus the ones that are waiting for an invitation)" (§6.1).
            self.transport.charge_db(reads=1)
            engaged: dict[str, list[str]] = {}
            for vo in self._active_vos.values():
                for role_name, member in vo.members().items():
                    engaged.setdefault(member.name, []).append(
                        f"{vo.contract.vo_name}:{role_name}"
                    )
            rows = []
            for description in self.registry.all():
                assignments = engaged.get(description.provider, [])
                rows.append({
                    "provider": description.provider,
                    "service": description.service_name,
                    "status": "in-vo" if assignments else "awaiting-invitation",
                    "assignments": sorted(assignments),
                })
            return {"availability": rows}
        if operation == "MonitorVO":
            self.transport.charge_db(reads=1)
            vo_name = payload.get("voName", "")
            vo = self._active_vos.get(vo_name)
            return {
                "voName": vo_name,
                "phase": vo.lifecycle.phase.value if vo else "unknown",
                "members": sorted(
                    m.name for m in vo.members().values()
                ) if vo else [],
            }
        if operation == "AnnounceVO":
            vo = payload.get("vo")
            if not isinstance(vo, VirtualOrganization):
                raise ServiceError("AnnounceVO requires a VO")
            self.transport.charge_db(writes=1)
            self._active_vos[vo.contract.vo_name] = vo
            return {"announced": vo.contract.vo_name}
        raise ServiceError(
            f"unknown host operation {operation!r}",
            error_code=ErrorCode.UNKNOWN_OPERATION,
        )

    def member(self, name: str) -> VOMember:
        try:
            return self._registered[name]
        except KeyError as exc:
            raise MembershipError(f"member {name!r} is not registered") from exc

    def directory(self) -> dict[str, VOMember]:
        return dict(self._registered)


@dataclass
class MemberEdition:
    """The member-side application."""

    member: VOMember
    transport: SimTransport
    host_url: str = "urn:vo:host"

    def register(self) -> None:
        """Register with the host and publish services (Preparation)."""
        self.transport.call(
            self.host_url, "RegisterMember", {"member": self.member}
        )

    def check_mailbox(self) -> list:
        """Open the mailbox screen (one GUI interaction)."""
        self.transport.charge_ui()
        return self.member.mailbox.pending()

    def respond(self, invitation) -> bool:
        """Decide on an invitation; the answer travels back by mail."""
        accepted = self.member.respond_to_invitation(invitation)
        self.transport.charge_mail()
        self.transport.charge_db(writes=1)
        return accepted


@dataclass
class JoinOutcome:
    """Result of one toolkit join flow."""

    member: str
    role: str
    joined: bool
    elapsed_ms: float
    negotiation: Optional[NegotiationResult] = None
    reason: str = ""
    #: The join failed because the TN endpoint never answered (after
    #: retries), not because trust was denied.
    unreachable: bool = False


@dataclass
class FormationOutcome:
    """Result of a quorum-based formation run (paper Fig. 4 under
    partial failure)."""

    outcomes: dict[str, JoinOutcome] = field(default_factory=dict)
    #: role -> member recorded as degraded (unreachable after retries).
    degraded: dict[str, str] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    quorum: int = 0
    #: ``"serial"`` or ``"parallel"`` — how the joins were scheduled.
    mode: str = "serial"
    #: Simulated ms the formation advanced the main timeline: the sum
    #: of the join durations in serial mode, the batch critical path in
    #: parallel mode.
    elapsed_ms: float = 0.0
    #: Longest single join chain (== elapsed_ms of the schedule run).
    critical_path_ms: float = 0.0
    #: What the same joins cost end to end — the serial-equivalent sum
    #: of per-join durations; in parallel mode the Fig. 9 baseline the
    #: speedup is measured against.
    serial_ms: float = 0.0

    @property
    def joined(self) -> list[str]:
        return sorted(
            role for role, outcome in self.outcomes.items() if outcome.joined
        )

    @property
    def quorum_met(self) -> bool:
        return len(self.joined) >= self.quorum


class InitiatorEdition:
    """The initiator-side application driving VO creation and joins."""

    def __init__(
        self,
        initiator: VOInitiator,
        transport: SimTransport,
        host: HostEdition,
        hardening: Optional[HardeningConfig] = None,
    ) -> None:
        self.initiator = initiator
        self.transport = transport
        self.host = host
        self.hardening = hardening
        self.vo: Optional[VirtualOrganization] = None
        self._tn_service: Optional[TNWebService] = None
        self._tn_store: Optional[XMLDocumentStore] = None
        self._tn_cache: Optional[SequenceCache] = None
        # Serializes VO mutations (admission, reputation) when joins
        # run on parallel formation workers.
        self._vo_lock = threading.Lock()

    # -- VO creation --------------------------------------------------------------

    def create_vo(self, contract: Contract) -> VirtualOrganization:
        """Identification: define the contract and the TN policies."""
        with obs_span(
            "vo.identification",
            clock=self.transport.clock,
            vo=contract.vo_name,
            roles=len(contract.roles),
        ):
            obs_count("vo.created")
            self.transport.charge_ui(2)  # contract + role definition screens
            vo = VirtualOrganization(
                contract=contract, initiator=self.initiator
            )
            vo.identify()
            self.transport.charge_db(writes=1 + len(contract.roles))
            self.transport.call(self.host.url, "AnnounceVO", {"vo": vo})
            vo.enter_formation()
            self.vo = vo
            return vo

    def enable_trust_negotiation(
        self, store: Optional[XMLDocumentStore] = None,
        url: str = "urn:vo:tn",
        cache: Optional[SequenceCache] = None,
        hardening: Optional[HardeningConfig] = None,
    ) -> TNWebService:
        """Deploy the TN Web service next to the toolkit (Fig. 5)."""
        self._tn_store = store or XMLDocumentStore("tn-store")
        self._tn_cache = cache
        if hardening is not None:
            self.hardening = hardening
        self._tn_service = TNWebService(
            owner=self.initiator.agent,
            transport=self.transport,
            store=self._tn_store,
            url=url,
            cache=cache,
            hardening=self.hardening,
        )
        return self._tn_service

    def restart_trust_negotiation(
        self, agents: Optional[dict] = None
    ) -> TNWebService:
        """Revive a crashed TN Web service from its checkpoint store,
        resuming any interrupted negotiations."""
        if self._tn_service is None or self._tn_store is None:
            raise MembershipError(
                "enable_trust_negotiation must run before a restart"
            )
        self._tn_service.close()  # no-op after a crash; frees the URL
        self._tn_service = TNWebService.restore(
            owner=self.initiator.agent,
            transport=self.transport,
            store=self._tn_store,
            url=self._tn_service.url,
            agents=agents,
            cache=self._tn_cache,
            hardening=self.hardening,
        )
        return self._tn_service

    # -- discovery -------------------------------------------------------------------

    def discover(self, role_name: str) -> list:
        """Query the host for candidates registered for a role."""
        response = self.transport.call(
            self.host.url, "ListServices", {"role": role_name}
        )
        return response["services"]

    # -- the join flow (the Fig. 9 measurable) ------------------------------------------

    def execute_join(
        self,
        member_app: MemberEdition,
        role_name: str,
        with_negotiation: bool,
        at: Optional[datetime] = None,
        strategy: Strategy = Strategy.STANDARD,
    ) -> JoinOutcome:
        """Run one member's complete join, optionally with the TN.

        Mirrors the experiment of Section 6.3.1: the member is invited,
        reads and answers the invitation, (optionally) negotiates trust
        through the TN Web service, and on success is assigned the role
        and receives the X.509 membership certificate.
        """
        if not obs_enabled():
            return self._execute_join_body(
                member_app, role_name, with_negotiation, at, strategy
            )
        with obs_span(
            "vo.join",
            clock=self.transport.clock,
            member=member_app.member.name,
            role=role_name,
            negotiation=with_negotiation,
        ) as join_span:
            outcome = self._execute_join_body(
                member_app, role_name, with_negotiation, at, strategy
            )
            join_span.set(
                joined=outcome.joined,
                elapsed_ms=outcome.elapsed_ms,
                reason=outcome.reason,
            )
            obs_count("vo.joins" if outcome.joined else "vo.joins_failed")
            obs_observe("vo.join_ms", outcome.elapsed_ms)
            return outcome

    def _execute_join_body(
        self,
        member_app: MemberEdition,
        role_name: str,
        with_negotiation: bool,
        at: Optional[datetime],
        strategy: Strategy,
    ) -> JoinOutcome:
        vo = self.vo
        if vo is None:
            raise MembershipError("create_vo must run before joins")
        if with_negotiation and self._tn_service is None:
            raise MembershipError(
                "enable_trust_negotiation must run before a join with TN"
            )
        member = member_app.member
        role = vo.contract.role(role_name)
        at = at or self.transport.clock.now()

        with self.transport.clock.measure() as stopwatch:
            with obs_span(
                "vo.invitation", role=role_name, member=member.name
            ) as invite_span:
                # 1. The initiator reviews candidates and fills the
                #    invitation screen.
                self.discover(role_name)
                self.transport.charge_ui(2)
                # 2. Invitation into the member's mailbox.
                invitation = self.initiator.invite(vo.contract, role, member)
                self.transport.charge_mail()
                self.transport.charge_db(writes=1)
                # 3. The member reads the mailbox and answers.
                member_app.check_mailbox()
                accepted = member_app.respond(invitation)
                invite_span.set(accepted=accepted)
            if not accepted:
                return JoinOutcome(
                    member=member.name,
                    role=role_name,
                    joined=False,
                    elapsed_ms=stopwatch.elapsed_ms,
                    reason="invitation declined",
                )
            negotiation: Optional[NegotiationResult] = None
            if with_negotiation:
                # 4. The TN interleaves with the join (Fig. 3, arrow 0):
                #    the candidate negotiates the role's membership
                #    resource against the Initiator's transient policies.
                client = TNClient(
                    transport=self.transport,
                    service_url=self._tn_service.url,
                    agent=member.agent,
                )
                resource = role.membership_resource(vo.contract.vo_name)
                try:
                    negotiation = client.negotiate(
                        resource, strategy=strategy, at=at,
                    )
                except UNREACHABLE_ERRORS as exc:
                    # The endpoint never answered: no reputation hit
                    # (trust was not denied), the join is degraded.
                    return JoinOutcome(
                        member=member.name,
                        role=role_name,
                        joined=False,
                        elapsed_ms=stopwatch.elapsed_ms,
                        negotiation=NegotiationResult(
                            resource=resource,
                            requester=member.name,
                            controller=self.initiator.name,
                            success=False,
                            failure_reason=FailureReason.UNREACHABLE,
                            failure_detail=str(exc),
                        ),
                        reason=f"unreachable: {exc}",
                        unreachable=True,
                    )
                event = (
                    ReputationEvent.SUCCESSFUL_NEGOTIATION
                    if negotiation.success
                    else ReputationEvent.FAILED_NEGOTIATION
                )
                with self._vo_lock:
                    vo.reputation.record(member.name, event, at=at)
                if not negotiation.success:
                    return JoinOutcome(
                        member=member.name,
                        role=role_name,
                        joined=False,
                        elapsed_ms=stopwatch.elapsed_ms,
                        negotiation=negotiation,
                        reason=negotiation.failure_detail,
                    )
            # 5. Role assignment ("Assign Member" screen) and the
            #    runtime creation of the X.509 membership credential.
            self.transport.charge_ui()
            with self._vo_lock:
                vo.admit_member(role_name, member, at)
            self.transport.charge_crypto(signs=1)
            self.transport.charge_db(writes=2)
            # 6. The certificate reaches the member by mail.
            self.transport.charge_mail()
        return JoinOutcome(
            member=member.name,
            role=role_name,
            joined=True,
            elapsed_ms=stopwatch.elapsed_ms,
            negotiation=negotiation,
        )

    # -- quorum-based formation under partial failure -----------------------------------

    def execute_formation(
        self,
        plans: list[tuple[MemberEdition, str]],
        with_negotiation: bool = True,
        quorum: Optional[int] = None,
        max_attempts: int = 2,
        at: Optional[datetime] = None,
        strategy: Strategy = Strategy.STANDARD,
        parallel: "bool | str" = False,
        max_workers: Optional[int] = None,
    ) -> FormationOutcome:
        """Drive all joins, retrying unreachable invitees.

        Each ``(member_app, role)`` plan is attempted up to
        ``max_attempts`` times; a candidate still unreachable after
        that is recorded as *degraded* on the VO (for later
        re-negotiation via :meth:`retry_degraded`) instead of aborting
        the formation.  ``quorum`` is the minimum number of joined
        roles for :attr:`FormationOutcome.quorum_met` (default: all).

        With ``parallel=True`` the per-role joins — which are mutually
        independent: distinct members, distinct roles, each negotiating
        only against the Initiator — are dispatched to a thread pool.
        Every worker charges simulated latency to its own clock branch
        (see :meth:`SimTransport.clock_branch`); the main timeline then
        advances by the *critical path* (the longest branch), while the
        serial-equivalent sum is reported as
        :attr:`FormationOutcome.serial_ms` — Fig. 9 semantics are
        preserved, only the schedule changes.  Outcome bookkeeping is
        applied in plan order on the calling thread, so the resulting
        :class:`FormationOutcome` is identical to serial mode's.  When
        the transport stack has no branchable base clock the call falls
        back to serial execution.

        With ``parallel="asyncio"`` the joins run as asyncio tasks on a
        private event loop instead of pool threads: clock branches are
        task-local through :mod:`contextvars`, the per-join VO
        bookkeeping lock is elided (the loop serializes it), and the
        same lane merge produces the same simulated timings — see
        :meth:`execute_formation_async` for the awaitable form.
        """
        if self.vo is None:
            raise MembershipError("create_vo must run before formation")
        if not obs_enabled():
            return self._execute_formation_body(
                plans, with_negotiation, quorum, max_attempts,
                at, strategy, parallel, max_workers,
            )
        with obs_span(
            "vo.formation",
            clock=self.transport.clock,
            plans=len(plans),
            parallel=parallel,
        ) as formation_span:
            outcome = self._execute_formation_body(
                plans, with_negotiation, quorum, max_attempts,
                at, strategy, parallel, max_workers,
            )
            formation_span.set(
                mode=outcome.mode,
                joined=len(outcome.joined),
                degraded=len(outcome.degraded),
                critical_path_ms=outcome.critical_path_ms,
                serial_ms=outcome.serial_ms,
            )
            obs_count("vo.formations")
            return outcome

    def _execute_formation_body(
        self,
        plans: list[tuple[MemberEdition, str]],
        with_negotiation: bool,
        quorum: Optional[int],
        max_attempts: int,
        at: Optional[datetime],
        strategy: Strategy,
        parallel: "bool | str",
        max_workers: Optional[int],
    ) -> FormationOutcome:
        outcome = FormationOutcome(
            quorum=len(plans) if quorum is None else quorum
        )
        if parallel and len(plans) > 1:
            base = self._branchable_transport()
            if base is not None:
                if parallel == "asyncio":
                    return asyncio.run(self._formation_asyncio(
                        plans, outcome, with_negotiation, max_attempts,
                        at, strategy, max_workers, base,
                    ))
                return self._formation_parallel(
                    plans, outcome, with_negotiation, max_attempts,
                    at, strategy, max_workers, base,
                )
        clock = self.transport.clock
        started_ms = clock.elapsed_ms
        for member_app, role_name in plans:
            attempts, last = self._attempt_plan(
                member_app, role_name, with_negotiation,
                max_attempts, at, strategy,
            )
            self._record_plan(outcome, member_app, role_name, attempts, last)
        outcome.mode = "serial"
        outcome.elapsed_ms = clock.elapsed_ms - started_ms
        outcome.critical_path_ms = outcome.elapsed_ms
        outcome.serial_ms = outcome.elapsed_ms
        return outcome

    def _attempt_plan(
        self,
        member_app: MemberEdition,
        role_name: str,
        with_negotiation: bool,
        max_attempts: int,
        at: Optional[datetime],
        strategy: Strategy,
    ) -> tuple[int, Optional[JoinOutcome]]:
        """One plan's retry loop; returns (attempts used, last outcome)."""
        last: Optional[JoinOutcome] = None
        attempts = 0
        for attempt in range(1, max_attempts + 1):
            attempts = attempt
            last = self.execute_join(
                member_app, role_name, with_negotiation,
                at=at, strategy=strategy,
            )
            if last.joined or not last.unreachable:
                break  # success, or a definitive (non-transient) no
        return attempts, last

    def _record_plan(
        self,
        outcome: FormationOutcome,
        member_app: MemberEdition,
        role_name: str,
        attempts: int,
        last: Optional[JoinOutcome],
    ) -> None:
        outcome.attempts[role_name] = attempts
        outcome.outcomes[role_name] = last
        if last is not None and last.unreachable:
            member_name = member_app.member.name
            outcome.degraded[role_name] = member_name
            self.vo.record_degraded(role_name, member_name, last.reason)
            if obs_enabled():
                obs_count("vo.joins_degraded")
                obs_event(
                    "vo.degraded",
                    clock=self.transport.clock,
                    role=role_name,
                    member=member_name,
                    reason=last.reason,
                )

    def _branchable_transport(self) -> Optional[SimTransport]:
        """Unwrap decorators down to a transport with clock branching."""
        transport = self.transport
        seen: set[int] = set()
        while transport is not None and id(transport) not in seen:
            if hasattr(transport, "clock_branch"):
                return transport
            seen.add(id(transport))
            transport = getattr(transport, "inner", None)
        return None

    def _formation_parallel(
        self,
        plans: list[tuple[MemberEdition, str]],
        outcome: FormationOutcome,
        with_negotiation: bool,
        max_attempts: int,
        at: Optional[datetime],
        strategy: Strategy,
        max_workers: Optional[int],
        base: SimTransport,
    ) -> FormationOutcome:
        clock = base.base_clock
        batch_start_ms = clock.elapsed_ms
        # Freeze `at` at batch dispatch: every invitee negotiates
        # against the same instant, as concurrency implies (and as the
        # serial default only approximates).
        at = at or clock.now()
        # Hand the open formation span to the workers so their join
        # spans nest under it instead of rooting orphan traces.
        formation_span = obs_current()

        def run_plan(
            plan: tuple[MemberEdition, str]
        ) -> tuple[int, Optional[JoinOutcome], float]:
            member_app, role_name = plan
            with base.clock_branch() as branch, obs_attach(formation_span):
                begin_ms = branch.elapsed_ms
                attempts, last = self._attempt_plan(
                    member_app, role_name, with_negotiation,
                    max_attempts, at, strategy,
                )
                return attempts, last, branch.elapsed_ms - begin_ms

        workers = max_workers if max_workers else len(plans)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(run_plan, plans))

        return self._merge_branch_results(
            outcome, plans, results, workers, clock, batch_start_ms,
            mode="parallel",
        )

    def _merge_branch_results(
        self,
        outcome: FormationOutcome,
        plans: list[tuple[MemberEdition, str]],
        results: list[tuple[int, Optional[JoinOutcome], float]],
        workers: int,
        clock,
        batch_start_ms: float,
        mode: str,
    ) -> FormationOutcome:
        """Merge branch results onto the main timeline, in plan order,
        so bookkeeping is deterministic and byte-identical to serial
        mode.  Shared by the thread-pool and asyncio schedulers."""
        for (member_app, role_name), (attempts, last, _) in zip(plans, results):
            self._record_plan(outcome, member_app, role_name, attempts, last)
        deltas = [delta for _, _, delta in results]
        # Deterministic makespan for a pool of `workers` lanes: assign
        # each join, in plan order, to the earliest-available lane.
        # With workers >= len(plans) this is simply max(deltas).
        lanes = [0.0] * min(workers, len(deltas))
        for delta in deltas:
            lanes[lanes.index(min(lanes))] += delta
        clock.advance(max(lanes, default=0.0))
        outcome.mode = mode
        outcome.elapsed_ms = clock.elapsed_ms - batch_start_ms
        outcome.critical_path_ms = outcome.elapsed_ms
        outcome.serial_ms = sum(deltas)
        return outcome

    async def _formation_asyncio(
        self,
        plans: list[tuple[MemberEdition, str]],
        outcome: FormationOutcome,
        with_negotiation: bool,
        max_attempts: int,
        at: Optional[datetime],
        strategy: Strategy,
        max_workers: Optional[int],
        base: SimTransport,
    ) -> FormationOutcome:
        clock = base.base_clock
        batch_start_ms = clock.elapsed_ms
        # Freeze `at` at batch dispatch, exactly like the thread pool.
        at = at or clock.now()
        # Tasks snapshot this coroutine's context at creation, so the
        # open formation span and the clock branch entered inside each
        # task are inherited/isolated automatically — no obs_attach,
        # and no thread-local juggling.  The event loop serializes all
        # bookkeeping, so the per-join VO lock is elided for the batch.
        previous_lock = self._vo_lock
        self._vo_lock = NULL_LOCK

        async def run_plan(
            plan: tuple[MemberEdition, str]
        ) -> tuple[int, Optional[JoinOutcome], float]:
            member_app, role_name = plan
            await asyncio.sleep(0)  # let the whole batch get airborne
            with base.clock_branch() as branch:
                begin_ms = branch.elapsed_ms
                attempts, last = self._attempt_plan(
                    member_app, role_name, with_negotiation,
                    max_attempts, at, strategy,
                )
                return attempts, last, branch.elapsed_ms - begin_ms

        try:
            results = list(await asyncio.gather(
                *(run_plan(plan) for plan in plans)
            ))
        finally:
            self._vo_lock = previous_lock

        workers = max_workers if max_workers else len(plans)
        return self._merge_branch_results(
            outcome, plans, results, workers, clock, batch_start_ms,
            mode="asyncio",
        )

    async def execute_formation_async(
        self,
        plans: list[tuple[MemberEdition, str]],
        with_negotiation: bool = True,
        quorum: Optional[int] = None,
        max_attempts: int = 2,
        at: Optional[datetime] = None,
        strategy: Strategy = Strategy.STANDARD,
        max_workers: Optional[int] = None,
    ) -> FormationOutcome:
        """Awaitable formation for callers already on an event loop.

        Identical semantics and bookkeeping to
        ``execute_formation(parallel="asyncio")`` — which is the
        entry point to use from synchronous code (it spins up a private
        loop).  Falls back to the serial path when the transport stack
        has no branchable clock or there is nothing to parallelize.
        """
        if self.vo is None:
            raise MembershipError("create_vo must run before formation")

        async def body() -> FormationOutcome:
            outcome = FormationOutcome(
                quorum=len(plans) if quorum is None else quorum
            )
            base = self._branchable_transport()
            if base is None or len(plans) <= 1:
                return self._execute_formation_body(
                    plans, with_negotiation, quorum, max_attempts,
                    at, strategy, False, max_workers,
                )
            return await self._formation_asyncio(
                plans, outcome, with_negotiation, max_attempts,
                at, strategy, max_workers, base,
            )

        if not obs_enabled():
            return await body()
        with obs_span(
            "vo.formation",
            clock=self.transport.clock,
            plans=len(plans),
            parallel="asyncio",
        ) as formation_span:
            outcome = await body()
            formation_span.set(
                mode=outcome.mode,
                joined=len(outcome.joined),
                degraded=len(outcome.degraded),
                critical_path_ms=outcome.critical_path_ms,
                serial_ms=outcome.serial_ms,
            )
            obs_count("vo.formations")
            return outcome

    def retry_degraded(
        self,
        member_apps: dict[str, MemberEdition],
        with_negotiation: bool = True,
        at: Optional[datetime] = None,
        strategy: Strategy = Strategy.STANDARD,
    ) -> dict[str, JoinOutcome]:
        """Re-negotiate the VO's degraded roles (``role`` →
        member app).  Successful joins clear the degraded mark."""
        if self.vo is None:
            raise MembershipError("create_vo must run before formation")
        results: dict[str, JoinOutcome] = {}
        for role_name in sorted(self.vo.degraded()):
            member_app = member_apps.get(role_name)
            if member_app is None:
                continue
            results[role_name] = self.execute_join(
                member_app, role_name, with_negotiation,
                at=at, strategy=strategy,
            )
        return results
