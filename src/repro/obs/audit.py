"""Tamper-evident audit log: hash chain + Merkle epoch commitments.

The paper's disclosure guarantees (Section 6) only mean something after
the fact if a third party can check what was *actually* exchanged.
This module promotes the ``repro.obs`` event log to that canonical
append-only record:

- every event is chained — record ``i`` carries
  ``h_i = SHA-256(h_{i-1} || canonical-json(event_i))`` — so editing,
  dropping, or reordering any record breaks every hash after it;
- every ``epoch_every`` events an *epoch commitment* is appended: the
  Merkle root over that epoch's record hashes, itself chained.  An
  auditor who trusts one epoch root can verify membership of a single
  disclosure without replaying the whole log, and the roots give
  compact checkpoints to countersign or publish.

:class:`AuditLogSink` plugs into :class:`repro.obs.events.EventLog`
like any other sink; :func:`verify_audit_log` is the offline verifier
behind the ``repro audit`` CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "AuditLogSink",
    "AuditReport",
    "GENESIS_HASH",
    "merkle_root",
    "verify_audit_log",
]

#: Chain anchor for the first record of a log.
GENESIS_HASH = "0" * 64


def _canonical_json(payload: dict) -> str:
    return json.dumps(payload, default=str, sort_keys=True)


def _chain_hash(prev_hash: str, body_json: str) -> str:
    return hashlib.sha256(
        (prev_hash + body_json).encode("utf-8")
    ).hexdigest()


def merkle_root(leaf_hashes: list[str]) -> str:
    """Merkle root over hex-digest leaves (odd nodes promote)."""
    if not leaf_hashes:
        return GENESIS_HASH
    level = list(leaf_hashes)
    while len(level) > 1:
        paired = []
        for index in range(0, len(level) - 1, 2):
            paired.append(
                hashlib.sha256(
                    (level[index] + level[index + 1]).encode("utf-8")
                ).hexdigest()
            )
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


class AuditLogSink:
    """Event sink that appends hash-chained JSONL records.

    Two record kinds share the file, distinguished by ``kind``::

        {"kind": "event", "body": {...}, "hash": "..."}
        {"kind": "epoch", "epoch": 1, "events": 256,
         "root": "...", "hash": "..."}

    ``hash`` extends the chain over the canonical JSON of the record
    *without* its own ``hash`` field, so epoch commitments are as
    tamper-evident as the events they commit to.
    """

    def __init__(self, path: str, epoch_every: int = 256) -> None:
        if epoch_every < 1:
            raise ValueError("epoch_every must be >= 1")
        self.path = path
        self.epoch_every = epoch_every
        self._lock = threading.Lock()
        self._prev_hash = GENESIS_HASH
        self._epoch = 0
        self._epoch_leaves: list[str] = []
        self.events_written = 0
        self.epochs_written = 0

    def _append(self, record: dict) -> None:
        body_json = _canonical_json(record)
        record_hash = _chain_hash(self._prev_hash, body_json)
        record = dict(record)
        record["hash"] = record_hash
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(_canonical_json(record) + "\n")
        self._prev_hash = record_hash

    def __call__(self, event) -> None:
        with self._lock:
            self._append({"kind": "event", "body": event.to_dict()})
            self._epoch_leaves.append(self._prev_hash)
            self.events_written += 1
            if len(self._epoch_leaves) >= self.epoch_every:
                self._commit_epoch()

    def _commit_epoch(self) -> None:
        self._epoch += 1
        self._append({
            "kind": "epoch",
            "epoch": self._epoch,
            "events": len(self._epoch_leaves),
            "root": merkle_root(self._epoch_leaves),
        })
        self._epoch_leaves = []
        self.epochs_written += 1

    def close(self) -> None:
        """Commit a final partial epoch so the whole log is covered."""
        with self._lock:
            if self._epoch_leaves:
                self._commit_epoch()


@dataclass
class AuditReport:
    """Outcome of :func:`verify_audit_log`."""

    path: str
    ok: bool
    records: int = 0
    events: int = 0
    epochs: int = 0
    #: Events emitted after the last epoch commitment (uncommitted
    #: tail — chained, but not yet under a Merkle root).
    uncommitted_events: int = 0
    error: Optional[str] = None
    error_line: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "records": self.records,
            "events": self.events,
            "epochs": self.epochs,
            "uncommittedEvents": self.uncommitted_events,
            "error": self.error,
            "errorLine": self.error_line,
        }

    def summary(self) -> str:
        if self.ok:
            return (
                f"audit OK: {self.events} events in {self.epochs} "
                f"epochs ({self.uncommitted_events} uncommitted), "
                f"chain verified end-to-end"
            )
        return (
            f"audit FAILED at line {self.error_line}: {self.error}"
        )


def verify_audit_log(path: str) -> AuditReport:
    """Re-walk an audit log, recomputing the chain and every epoch root.

    Any flipped byte, dropped line, reordered record, or forged epoch
    commitment shows up as the first record whose recomputed hash (or
    Merkle root) disagrees with the file.
    """
    report = AuditReport(path=path, ok=False)
    if not os.path.exists(path):
        report.error = "no such file"
        return report
    prev_hash = GENESIS_HASH
    epoch_leaves: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                report.error = "record is not valid JSON"
                report.error_line = lineno
                return report
            if not isinstance(record, dict) or "hash" not in record:
                report.error = "record missing its hash field"
                report.error_line = lineno
                return report
            claimed = record.pop("hash")
            expected = _chain_hash(prev_hash, _canonical_json(record))
            if claimed != expected:
                report.error = (
                    "hash chain broken (record tampered with, or a "
                    "prior record dropped/reordered)"
                )
                report.error_line = lineno
                return report
            prev_hash = claimed
            report.records += 1
            kind = record.get("kind")
            if kind == "event":
                epoch_leaves.append(claimed)
                report.events += 1
            elif kind == "epoch":
                if record.get("events") != len(epoch_leaves):
                    report.error = (
                        f"epoch {record.get('epoch')} commits "
                        f"{record.get('events')} events but "
                        f"{len(epoch_leaves)} were chained"
                    )
                    report.error_line = lineno
                    return report
                root = merkle_root(epoch_leaves)
                if record.get("root") != root:
                    report.error = (
                        f"epoch {record.get('epoch')} Merkle root "
                        "mismatch"
                    )
                    report.error_line = lineno
                    return report
                report.epochs += 1
                epoch_leaves = []
            else:
                report.error = f"unknown record kind {kind!r}"
                report.error_line = lineno
                return report
    report.uncommitted_events = len(epoch_leaves)
    report.ok = True
    return report
