"""Hierarchical spans over wall *and* simulated time.

A :class:`Span` is one timed operation — a negotiation phase, a TN
Web-service call, a VO lifecycle step.  Spans nest: each carries a
``trace_id`` shared by the whole operation tree, its own ``span_id``,
and the ``parent_id`` linking it into the hierarchy.  Nesting is
tracked per :mod:`contextvars` context, which gives both isolation and
inheritance for free: threads each see their own (initially empty)
stack, while an asyncio task snapshots its creator's context at
creation — so tasks spawned inside a span automatically nest under it,
with no explicit hand-off.  :meth:`Tracer.attach` remains the explicit
escape hatch for handing a parent span across a *thread* boundary
(threads, unlike tasks, start with an empty context), exactly what
``execute_formation(parallel=True)`` needs so per-role joins nest under
the formation span instead of starting orphan traces.

Dual timestamps:

- **wall** — ``time.perf_counter()`` seconds, for real profiling;
- **virtual** — milliseconds read from a
  :class:`~repro.services.clock.SimClock` when one is supplied (or
  inherited from the parent span), so a trace lines up with the
  latency-modelled timeline of Fig. 9.  Inside a
  ``SimTransport.clock_branch()`` block the supplied clock *is* the
  branch, so worker spans carry branch-local virtual time.

Identifiers are deterministic counters (``trace-N`` / ``N``): the
simulation is reproducible and its traces should be too.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

__all__ = ["Span", "NullSpan", "NULL_SPAN", "Tracer"]

#: Context-local span stacks, keyed by ``id(tracer)``.  Values are
#: immutable tuples and the mapping is copied on write, so a set in one
#: context can never mutate a sibling context's view.  One module-level
#: ContextVar (instead of one per tracer) keeps the ContextVar
#: population bounded.
_SPAN_STACKS: ContextVar[dict] = ContextVar("tracer_span_stacks", default={})


class Span:
    """One timed, attributed operation in a trace."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "attrs", "status",
        "start_wall", "end_wall", "start_ms", "end_ms",
        "_tracer", "_clock",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        clock: Any,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self._clock = clock
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.status = "ok"
        self.start_wall: float = 0.0
        self.end_wall: Optional[float] = None
        self.start_ms: Optional[float] = None
        self.end_ms: Optional[float] = None

    # -- context management ---------------------------------------------------------

    def __enter__(self) -> "Span":
        self.start_wall = time.perf_counter()
        if self._clock is not None:
            self.start_ms = self._clock.elapsed_ms
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.end_wall = time.perf_counter()
        if self._clock is not None:
            self.end_ms = self._clock.elapsed_ms
        self._tracer._pop(self)

    # -- accessors ------------------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach or update attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ms(self) -> Optional[float]:
        """Virtual (simulated) duration, when a clock was attached."""
        if self.start_ms is None or self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    @property
    def wall_duration_s(self) -> Optional[float]:
        if self.end_wall is None:
            return None
        return self.end_wall - self.start_wall

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "status": self.status,
            "attrs": dict(self.attrs),
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "wall_s": self.wall_duration_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.name} id={self.span_id} "
            f"parent={self.parent_id} trace={self.trace_id}>"
        )


class NullSpan:
    """Shared no-op stand-in returned while observability is disabled."""

    __slots__ = ()
    trace_id = ""
    span_id = -1
    parent_id = None
    name = ""
    status = "ok"
    start_ms = end_ms = None
    duration_ms = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class Tracer:
    """Mints spans, tracks per-context nesting, retains finished spans."""

    def __init__(self, max_spans: int = 100_000) -> None:
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- the context-local span stack -------------------------------------------------

    def _stack(self) -> tuple:
        return _SPAN_STACKS.get().get(id(self), ())

    def _set_stack(self, stack: tuple) -> None:
        stacks = dict(_SPAN_STACKS.get())
        if stack:
            stacks[id(self)] = stack
        else:
            stacks.pop(id(self), None)
        _SPAN_STACKS.set(stacks)

    def current(self) -> Optional[Span]:
        """The innermost open span in *this* context, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._set_stack(self._stack() + (span,))

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            self._set_stack(stack[:-1])
        elif span in stack:  # unbalanced exit: drop it wherever it is
            index = max(i for i, open_ in enumerate(stack) if open_ is span)
            self._set_stack(stack[:index] + stack[index + 1:])
        with self._lock:
            self._finished.append(span)

    @contextmanager
    def attach(self, span: Optional[Span]) -> Iterator[None]:
        """Adopt ``span`` as this context's current parent.

        Used to hand a parent span across a *thread* boundary (parallel
        formation workers) — asyncio tasks inherit the stack through
        their context automatically and don't need this.  The span is
        *not* re-finished on exit — ownership stays with the opener.
        """
        if span is None or isinstance(span, NullSpan):
            yield
            return
        self._push(span)
        try:
            yield
        finally:
            stack = self._stack()
            if stack and stack[-1] is span:
                self._set_stack(stack[:-1])

    # -- span creation ---------------------------------------------------------------

    def span(
        self,
        name: str,
        clock: Any = None,
        parent: Optional[Span] = None,
        attrs: Optional[dict] = None,
    ) -> Span:
        """Create (but not start) a span; use as a context manager.

        ``parent`` defaults to the thread's current span.  The trace id
        and — when ``clock`` is omitted — the virtual clock are
        inherited from the parent; a parentless span roots a new trace.
        """
        if parent is None:
            parent = self.current()
        if parent is not None and not isinstance(parent, NullSpan):
            trace_id = parent.trace_id
            parent_id = parent.span_id
            if clock is None:
                clock = parent._clock
        else:
            with self._lock:
                trace_id = f"trace-{next(self._trace_ids)}"
            parent_id = None
        with self._lock:
            span_id = next(self._span_ids)
        return Span(
            self, trace_id, span_id, parent_id, name, clock,
            attrs if attrs is not None else {},
        )

    # -- introspection ----------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
