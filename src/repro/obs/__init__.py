"""``repro.obs`` — the structured observability subsystem.

One module-level runtime (tracer + metrics registry + event log) with a
zero-overhead-when-disabled guard: every instrumentation call —
:func:`span`, :func:`event`, :func:`count`, :func:`observe` — checks a
single module flag first and returns a shared null object when
observability is off, so the instrumented hot paths (negotiation
engine, TN service, resilience layer, caches) pay one branch per call
site and nothing else.  The throughput benchmark
(``benchmarks/test_bench_obs_overhead.py``) pins both bounds: ~0%
overhead disabled, < 10% enabled.

Typical use::

    from repro import obs

    obs.enable(obs.ObsConfig(redact_at=1))
    ... run negotiations / formations ...
    snap = obs.snapshot()          # spans + metrics + events
    trace = obs.chrome_trace()     # chrome://tracing JSON
    print(obs.render_timeline(obs.spans()))
    obs.disable()

The blessed import path is ``from repro.api import obs``; this module
is the implementation.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Optional

from repro.obs.audit import AuditLogSink
from repro.obs.config import ObsConfig, REDACTED
from repro.obs.events import Event, EventLog, JsonlSink, RingBufferSink
from repro.obs.export import (
    build_snapshot,
    critical_path_ms,
    render_timeline,
    to_chrome_trace,
    validate_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    # config
    "ObsConfig", "REDACTED",
    # primitives
    "Span", "NullSpan", "Tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile",
    "Event", "EventLog", "RingBufferSink", "JsonlSink",
    # runtime control
    "enable", "disable", "enabled", "config",
    # instrumentation entry points
    "span", "attach", "current", "event", "count", "gauge", "observe",
    # introspection / export
    "spans", "events", "metrics", "snapshot", "chrome_trace",
    "render_timeline", "validate_trace", "critical_path_ms", "reset",
]


class _Runtime:
    """The live tracer/metrics/events trio behind the module functions."""

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        self.tracer = Tracer(max_spans=config.max_spans)
        self.registry = MetricsRegistry(
            histogram_window=config.histogram_window
        )
        self.event_log = EventLog(
            ring_capacity=config.ring_capacity,
            redact_at=config.redact_at,
            redact_fields=config.redact_fields,
        )
        if config.jsonl_path:
            self.event_log.add_sink(JsonlSink(config.jsonl_path))
        self.audit_sink: Optional[AuditLogSink] = None
        if config.audit_path:
            self.audit_sink = AuditLogSink(
                config.audit_path, epoch_every=config.audit_epoch_every
            )
            self.event_log.add_sink(self.audit_sink)
        self.registry.register_collector("perf_caches", _collect_perf_caches)


def _collect_perf_caches() -> dict:
    """Absorb the PR 2 cache counters into the metrics namespace."""
    from repro.perf import all_stats  # lazy: obs must stay import-light

    collected: dict[str, Any] = {}
    for name, stats in all_stats().items():
        prefix = f"perf.cache.{name}"
        collected[f"{prefix}.hits"] = stats.hits
        collected[f"{prefix}.misses"] = stats.misses
        collected[f"{prefix}.evictions"] = stats.evictions
        collected[f"{prefix}.invalidations"] = stats.invalidations
        collected[f"{prefix}.size"] = stats.size
        collected[f"{prefix}.hit_rate"] = round(stats.hit_rate, 4)
    return collected


_enabled = False
_runtime: Optional[_Runtime] = None
_NULL_CONTEXT = nullcontext()


def enable(config: Optional[ObsConfig] = None) -> None:
    """Turn observability on with a fresh tracer/registry/event log."""
    global _enabled, _runtime
    if _runtime is not None and _runtime.audit_sink is not None:
        _runtime.audit_sink.close()  # seal the old log's final epoch
    _runtime = _Runtime(config or ObsConfig())
    _enabled = _runtime.config.enabled


def disable() -> None:
    """Turn all instrumentation off (recorded data stays readable)."""
    global _enabled
    _enabled = False
    if _runtime is not None and _runtime.audit_sink is not None:
        _runtime.audit_sink.close()


def enabled() -> bool:
    return _enabled


def config() -> Optional[ObsConfig]:
    return _runtime.config if _runtime is not None else None


# -- instrumentation entry points (hot: guard first, then delegate) -------------


def span(
    name: str,
    clock: Any = None,
    parent: Optional[Span] = None,
    **attrs: Any,
):
    """Open a span as a context manager; a no-op when disabled."""
    if not _enabled:
        return NULL_SPAN
    return _runtime.tracer.span(name, clock=clock, parent=parent, attrs=attrs)


def attach(parent: Optional[Span]):
    """Adopt ``parent`` as this thread's current span (cross-thread
    parent hand-off for parallel workers); a no-op when disabled."""
    if not _enabled or parent is None:
        return _NULL_CONTEXT
    return _runtime.tracer.attach(parent)


def current() -> Optional[Span]:
    """The innermost open span on this thread (None when disabled)."""
    if not _enabled:
        return None
    return _runtime.tracer.current()


def event(
    name: str,
    clock: Any = None,
    sensitivity: Optional[int] = None,
    **fields: Any,
) -> Optional[Event]:
    """Append one event to the log; a no-op when disabled."""
    if not _enabled:
        return None
    return _runtime.event_log.emit(
        name,
        clock=clock,
        span=_runtime.tracer.current(),
        sensitivity=sensitivity,
        **fields,
    )


def count(name: str, amount: int = 1) -> None:
    """Increment a counter; a no-op when disabled."""
    if _enabled:
        _runtime.registry.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge; a no-op when disabled."""
    if _enabled:
        _runtime.registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record one histogram sample; a no-op when disabled."""
    if _enabled:
        _runtime.registry.histogram(name).observe(value)


# -- introspection / export ------------------------------------------------------


def _require_runtime() -> _Runtime:
    if _runtime is None:
        raise RuntimeError(
            "observability was never enabled; call repro.obs.enable() first"
        )
    return _runtime


def spans() -> list[Span]:
    """Finished spans (readable even after :func:`disable`)."""
    return _require_runtime().tracer.spans()


def events() -> list[Event]:
    return _require_runtime().event_log.events()


def metrics() -> dict:
    return _require_runtime().registry.snapshot()


def snapshot() -> dict:
    """One JSON-serializable dump: config, spans, metrics, events."""
    runtime = _require_runtime()
    return build_snapshot(
        runtime.tracer, runtime.registry, runtime.event_log, runtime.config
    )


def chrome_trace() -> dict:
    """The recorded spans in Chrome Trace Event Format."""
    return to_chrome_trace(_require_runtime().tracer.spans())


def register_collector(name: str, collect) -> None:
    """Expose an external counter source in :func:`metrics` snapshots."""
    _require_runtime().registry.register_collector(name, collect)


def add_sink(sink) -> None:
    """Attach an extra event sink (e.g. a :class:`JsonlSink`)."""
    _require_runtime().event_log.add_sink(sink)


def reset() -> None:
    """Drop recorded spans/metrics/events, keep the configuration."""
    if _runtime is not None:
        _runtime.tracer.reset()
        _runtime.registry.reset()
        _runtime.event_log.reset()
