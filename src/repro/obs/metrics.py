"""The metrics registry: counters, gauges, histograms, collectors.

One process-wide :class:`MetricsRegistry` (owned by ``repro.obs``)
unifies what PR 1 and PR 2 left as ad-hoc per-object counters:

- the ``repro.perf`` cache hit/miss/eviction/invalidation counters are
  absorbed at snapshot time through a registered *collector* (so the
  perf layer keeps importing nothing above the standard library);
- the resilience layer increments ``resilience.*`` counters inline;
- the fault injector increments ``faults.injected.*`` /
  ``faults.skipped.*``;
- the negotiation engine and the TN/VO services record run counts and
  size/latency distributions.

Histograms keep an exact count/sum/min/max plus a bounded sliding
window of recent samples for percentile estimation (p50/p95) — good
enough for the simulator's scale without unbounded memory.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted-or-not list."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Distribution summary: exact count/sum/min/max, windowed p50/p95."""

    __slots__ = ("name", "count", "total", "min", "max", "_window", "_lock")

    def __init__(self, name: str, window: int = 8192) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._window: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._window.append(value)

    def to_dict(self) -> dict:
        with self._lock:
            window = list(self._window)
            summary = {
                "type": "histogram",
                "count": self.count,
                "sum": round(self.total, 6),
                "min": self.min,
                "max": self.max,
            }
        if window:
            summary["p50"] = round(percentile(window, 50), 6)
            summary["p95"] = round(percentile(window, 95), 6)
        return summary


class MetricsRegistry:
    """Name-addressed metric store plus snapshot-time collectors."""

    def __init__(self, histogram_window: int = 8192) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}
        self._lock = threading.Lock()
        self._histogram_window = histogram_window

    # -- instrument access (get-or-create, type-checked) ----------------------------

    def _instrument(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._instrument(
            name, Histogram, window=self._histogram_window
        )

    # -- collectors -------------------------------------------------------------------

    def register_collector(
        self, name: str, collect: Callable[[], dict]
    ) -> None:
        """Register a snapshot-time source of ``metric name -> value``.

        Collectors absorb counters maintained elsewhere (the perf
        caches, a SequenceCache, per-transport ResilienceStats) without
        forcing those layers to push updates through the registry.
        """
        with self._lock:
            self._collectors[name] = collect

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -- snapshot ---------------------------------------------------------------------

    def snapshot(self) -> dict:
        """``metric name -> summary dict`` including collector output."""
        with self._lock:
            metrics = dict(self._metrics)
            collectors = dict(self._collectors)
        out = {name: metric.to_dict() for name, metric in metrics.items()}
        for collector_name, collect in collectors.items():
            try:
                collected = collect()
            except Exception as exc:  # collector bugs must not kill a dump
                out[f"collector.{collector_name}.error"] = {
                    "type": "gauge", "value": repr(exc),
                }
                continue
            for name, value in collected.items():
                out[name] = {"type": "collected", "value": value}
        return dict(sorted(out.items()))

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
