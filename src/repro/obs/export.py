"""Exports: snapshots, Chrome-trace JSON, and the ASCII timeline.

- :func:`build_snapshot` — one JSON-serializable dict with spans,
  metrics, events, and config labels (``repro.obs.snapshot()`` binds it
  to the live runtime);
- :func:`to_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto: complete ("ph": "X") events on the
  *virtual* timeline when available (wall time otherwise), one
  pseudo-thread per negotiation branch;
- :func:`render_timeline` — the ``repro trace`` ASCII Gantt chart;
- :func:`validate_trace` / :func:`critical_path_ms` — structural
  helpers used by the CLI and the tests (root/orphan accounting, merged
  critical path).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.spans import Span

__all__ = [
    "build_snapshot",
    "to_chrome_trace",
    "render_timeline",
    "validate_trace",
    "critical_path_ms",
]


def build_snapshot(tracer, registry, event_log, config) -> dict:
    """JSON-serializable dump of the whole observability state."""
    return {
        "config": {
            "enabled": config.enabled,
            "redact_at": config.redact_at,
            "labels": dict(config.labels),
        },
        "spans": [span.to_dict() for span in tracer.spans()],
        "metrics": registry.snapshot(),
        "events": [event.to_dict() for event in event_log.events()],
        "event_counts": {
            "emitted": event_log.emitted,
            "redacted": event_log.redacted,
        },
    }


def _span_window(span: Span) -> tuple[float, float]:
    """(start, duration) in microseconds — virtual first, wall fallback."""
    if span.start_ms is not None and span.end_ms is not None:
        return span.start_ms * 1000.0, (span.end_ms - span.start_ms) * 1000.0
    end_wall = span.end_wall if span.end_wall is not None else span.start_wall
    return span.start_wall * 1e6, (end_wall - span.start_wall) * 1e6


def to_chrome_trace(spans: list[Span]) -> dict:
    """Spans → Chrome Trace Event Format (complete events)."""
    events = []
    # One pid per trace, one tid per root-most chain: chrome renders
    # each (pid, tid) pair as a row, so concurrent branches (parallel
    # joins on branch clocks) get their own rows instead of overlapping.
    trace_pids: dict[str, int] = {}
    for span in spans:
        pid = trace_pids.setdefault(span.trace_id, len(trace_pids) + 1)
        start_us, duration_us = _span_window(span)
        events.append({
            "name": span.name,
            "cat": span.trace_id,
            "ph": "X",
            "pid": pid,
            "tid": _lane_of(span, spans),
            "ts": round(start_us, 3),
            "dur": round(duration_us, 3),
            "args": {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
                **{k: str(v) for k, v in span.attrs.items()},
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _lane_of(span: Span, spans: list[Span]) -> int:
    """Row id: the span's outermost ancestor below the root (the
    per-join branch), or 0 for the root chain itself."""
    by_id = {s.span_id: s for s in spans}
    lane = span
    while True:
        parent = by_id.get(lane.parent_id) if lane.parent_id else None
        if parent is None:
            return 0 if lane is span else lane.span_id
        if parent.parent_id is None:
            return lane.span_id
        lane = parent


def validate_trace(spans: list[Span]) -> dict:
    """Structural accounting of one (or more) trace(s).

    Returns ``{"traces": n, "roots": [...], "orphans": [...],
    "spans": n}`` where orphans are spans whose ``parent_id`` does not
    resolve to any retained span — the "no orphan spans" acceptance
    check for a coherent trace.
    """
    ids = {span.span_id for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    orphans = [
        span for span in spans
        if span.parent_id is not None and span.parent_id not in ids
    ]
    return {
        "spans": len(spans),
        "traces": len({span.trace_id for span in spans}),
        "roots": roots,
        "orphans": orphans,
    }


def critical_path_ms(spans: list[Span], root: Optional[Span] = None) -> float:
    """Virtual-time critical path of a trace: the latest descendant end
    minus the root start.  With branch clocks this is exactly the
    makespan the parallel formation scheduler advanced the main
    timeline by."""
    if root is None:
        roots = [s for s in spans if s.parent_id is None]
        if not roots:
            return 0.0
        root = roots[0]
    members = [
        s for s in spans
        if s.trace_id == root.trace_id and s.end_ms is not None
    ]
    if not members or root.start_ms is None:
        return 0.0
    return max(s.end_ms for s in members) - root.start_ms


def render_timeline(spans: list[Span], width: int = 64) -> str:
    """ASCII Gantt chart of a trace on the virtual timeline.

    Spans without virtual timestamps are listed (indented by depth)
    without a bar.  Bars are scaled to the overall virtual window.
    """
    if not spans:
        return "(no spans recorded)"
    timed = [s for s in spans if s.start_ms is not None and s.end_ms is not None]
    t0 = min((s.start_ms for s in timed), default=0.0)
    t1 = max((s.end_ms for s in timed), default=t0)
    window = max(t1 - t0, 1e-9)
    by_id = {s.span_id: s for s in spans}

    def depth(span: Span) -> int:
        d = 0
        current = span
        while current.parent_id is not None:
            parent = by_id.get(current.parent_id)
            if parent is None:
                break
            current = parent
            d += 1
        return d

    # Pre-order: children under their parent, in start order.
    children: dict[Optional[int], list[Span]] = {}
    for span in sorted(
        spans, key=lambda s: (s.start_ms if s.start_ms is not None
                              else s.start_wall)
    ):
        children.setdefault(span.parent_id, []).append(span)
    ordered: list[Span] = []

    def walk(parent_id: Optional[int]) -> None:
        for span in children.get(parent_id, []):
            ordered.append(span)
            walk(span.span_id)

    walk(None)
    for span in spans:  # true orphans (parent not retained) at the end
        if span not in ordered:
            ordered.append(span)

    label_width = max(
        len("  " * depth(s) + s.name) for s in ordered
    )
    label_width = min(max(label_width, 16), 44)
    lines = [
        f"virtual window: {t0:.0f}..{t1:.0f} ms "
        f"({window:.0f} ms, {len(spans)} spans)"
    ]
    for span in ordered:
        label = ("  " * depth(span) + span.name)[:label_width]
        if span.start_ms is None or span.end_ms is None:
            lines.append(f"{label:<{label_width}} | (wall-only)")
            continue
        begin = int((span.start_ms - t0) / window * (width - 1))
        length = max(1, round((span.end_ms - span.start_ms) / window * width))
        length = min(length, width - begin)
        bar = " " * begin + "#" * length
        duration = span.end_ms - span.start_ms
        marker = "!" if span.status != "ok" else ""
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}}| "
            f"{duration:9.1f} ms{marker}"
        )
    return "\n".join(lines)
