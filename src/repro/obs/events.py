"""The append-only event log with redaction and pluggable sinks.

Events are the audit-trail half of the observability layer (cf. the
audited message flows of *Security for Grid Services*): every
protocol-visible step — a credential disclosure, an injected fault, a
checkpoint write, a circuit opening — appends one immutable record.

Sinks:

- :class:`RingBufferSink` — bounded in-memory tail, always installed;
- :class:`JsonlSink` — append-only JSONL file (one event per line);
- anything callable ``sink(event: Event)`` registered via
  :meth:`EventLog.add_sink`.

Redaction: an event that carries credential attribute values declares
the credential's ``sensitivity`` (the integer value of
:class:`repro.credentials.Sensitivity`); when it is at or above the
configured threshold, the values of the configured fields are replaced
by :data:`~repro.obs.config.REDACTED` *before* the event reaches any
sink, so no sink — in memory or on disk — ever sees the raw values.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.config import REDACTED

__all__ = ["Event", "RingBufferSink", "JsonlSink", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One immutable audit record."""

    seq: int
    name: str
    wall_s: float
    #: Simulated-clock timestamp when a clock was in scope, else None.
    virtual_ms: Optional[float]
    #: Trace correlation (set when emitted inside an open span).
    trace_id: Optional[str]
    span_id: Optional[int]
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "virtual_ms": self.virtual_ms,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            **self.fields,
        }


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._events: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class JsonlSink:
    """Append-only JSONL file sink (one JSON object per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        line = json.dumps(event.to_dict(), default=str, sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")


def _redact(
    fields: dict,
    sensitivity: Optional[int],
    redact_at: Optional[int],
    redact_fields: tuple[str, ...],
) -> dict:
    """Replace sensitive values; returns a new dict, input untouched."""
    if (
        sensitivity is None
        or redact_at is None
        or sensitivity < redact_at
    ):
        return fields
    cleaned = dict(fields)
    for name in redact_fields:
        value = cleaned.get(name)
        if value is None:
            continue
        if isinstance(value, dict):
            cleaned[name] = {key: REDACTED for key in value}
        elif isinstance(value, (list, tuple)):
            cleaned[name] = [REDACTED] * len(value)
        else:
            cleaned[name] = REDACTED
    return cleaned


class EventLog:
    """Append-only log fanning out to every registered sink."""

    def __init__(
        self,
        ring_capacity: int = 4096,
        redact_at: Optional[int] = 1,
        redact_fields: tuple[str, ...] = ("attributes", "value", "values"),
    ) -> None:
        self.ring = RingBufferSink(ring_capacity)
        self.redact_at = redact_at
        self.redact_fields = redact_fields
        self._sinks: list[Callable[[Event], None]] = [self.ring]
        self._lock = threading.Lock()
        self._seq = 0
        self.emitted = 0
        self.redacted = 0

    def add_sink(self, sink: Callable[[Event], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Event], None]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(
        self,
        name: str,
        clock: Any = None,
        span: Any = None,
        sensitivity: Optional[int] = None,
        **fields: Any,
    ) -> Event:
        """Append one event (redacting first) and fan out to sinks."""
        redacted_fields = _redact(
            fields, sensitivity, self.redact_at, self.redact_fields
        )
        if sensitivity is not None:
            redacted_fields.setdefault("sensitivity", sensitivity)
        virtual_ms = clock.elapsed_ms if clock is not None else None
        if virtual_ms is None and span is not None \
                and getattr(span, "_clock", None) is not None:
            virtual_ms = span._clock.elapsed_ms
        with self._lock:
            self._seq += 1
            seq = self._seq
            self.emitted += 1
            if redacted_fields is not fields:
                self.redacted += 1
            sinks = list(self._sinks)
        event = Event(
            seq=seq,
            name=name,
            wall_s=time.perf_counter(),
            virtual_ms=virtual_ms,
            trace_id=getattr(span, "trace_id", None) or None,
            span_id=(
                span.span_id
                if span is not None and getattr(span, "span_id", -1) >= 0
                else None
            ),
            fields=redacted_fields,
        )
        for sink in sinks:
            sink(event)
        return event

    def events(self) -> list[Event]:
        """The in-memory tail (oldest first)."""
        return self.ring.events()

    def reset(self) -> None:
        with self._lock:
            self._seq = 0
            self.emitted = 0
            self.redacted = 0
        self.ring.clear()
