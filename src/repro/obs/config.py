"""Observability configuration.

:class:`ObsConfig` is the single knob bundle for the whole ``repro.obs``
subsystem: tracing, metrics, the event log, and redaction.  It is a
keyword-only dataclass so call sites stay readable as the option set
grows, and it is *immutable* — reconfiguring means calling
:func:`repro.obs.enable` with a new config.

Import discipline: ``repro.obs`` sits just above ``repro.perf`` in the
layering — it imports nothing from the rest of ``repro`` except (lazily)
``repro.perf`` for the cache-stats collector, so every layer from
``negotiation`` up through ``services`` and ``faults`` may instrument
itself without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ObsConfig", "REDACTED"]

#: Replacement string for redacted credential attribute values.
REDACTED = "[REDACTED]"


@dataclass(frozen=True, kw_only=True)
class ObsConfig:
    """Immutable settings for one observability session.

    All fields are keyword-only; construct as ``ObsConfig(enabled=True,
    redact_at=2)``.
    """

    #: Master switch.  When False every ``obs.*`` call is a no-op
    #: returning shared null objects (the zero-overhead guard).
    enabled: bool = True
    #: How many *finished* spans the tracer retains (ring buffer).
    max_spans: int = 100_000
    #: How many events the in-memory ring-buffer sink retains.
    ring_capacity: int = 4096
    #: Per-histogram bounded sample window for percentile estimation.
    histogram_window: int = 8192
    #: Credential sensitivity at or above which attribute *values* in
    #: emitted events are replaced by :data:`REDACTED`.  Matches the
    #: integer values of :class:`repro.credentials.Sensitivity`
    #: (0 = low, 1 = medium, 2 = high); the default redacts medium and
    #: high.  ``None`` disables redaction.
    redact_at: Optional[int] = 1
    #: Event field names subject to redaction (the fields that may
    #: carry credential attribute values).
    redact_fields: tuple[str, ...] = ("attributes", "value", "values")
    #: Optional path of an append-only JSONL file sink attached at
    #: :func:`repro.obs.enable` time.
    jsonl_path: Optional[str] = None
    #: Optional path of a hash-chained audit log
    #: (:class:`repro.obs.audit.AuditLogSink`).  When set, the event
    #: log doubles as the canonical tamper-evident record: every event
    #: is chained and committed into Merkle epochs, and ``repro audit``
    #: can verify the file offline.
    audit_path: Optional[str] = None
    #: Events per Merkle epoch commitment in the audit log.
    audit_epoch_every: int = 256
    #: Extra labels stamped onto every snapshot (run id, scenario...).
    labels: dict[str, str] = field(default_factory=dict)
