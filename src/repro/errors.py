"""Exception hierarchy and error-code taxonomy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.

Machine-readable discrimination goes through :class:`ErrorCode`: one
enum naming every way the service boundary can say "no".  Exceptions
carry their code as :attr:`ReproError.error_code` (settable per
instance, defaulting per class), so a peer receiving a rejection — a
guard violation, an overload shed, a replayed request — can branch on
the code instead of parsing ad-hoc failure strings.  The protocol
guard (:mod:`repro.hardening.guard`), the admission controller
(:mod:`repro.hardening.admission`), and the negotiation-level
:class:`~repro.negotiation.messages.FailureNotice` all draw from this
single taxonomy.
"""

from __future__ import annotations

from enum import Enum
from typing import ClassVar, Optional


class ErrorCode(Enum):
    """Typed codes for every service-boundary rejection and failure.

    Grouped by origin; the value strings are wire-stable (they appear
    in SOAP faults, event logs, and soak reports).
    """

    # -- protocol-guard rejections (repro.hardening.guard) ------------------
    #: The message could not be parsed at all (not a mapping, broken
    #: XML, unreadable fields).
    MALFORMED_MESSAGE = "malformed_message"
    #: Parsed, but violates the operation's schema (unknown or missing
    #: fields, wrong types, unparseable enum values).
    SCHEMA_VIOLATION = "schema_violation"
    #: A field or document exceeds the configured size budget.
    OVERSIZED_PAYLOAD = "oversized_payload"
    #: An embedded XML document nests deeper (or fans out wider) than
    #: the configured structural limits.
    DEPTH_EXCEEDED = "depth_exceeded"
    #: The operation name is not part of the service contract.
    UNKNOWN_OPERATION = "unknown_operation"
    #: The negotiation id does not name a live session.
    UNKNOWN_SESSION = "unknown_session"
    #: A sequence number arrived out of order (stale, skipped ahead,
    #: or reordered in transit).
    OUT_OF_ORDER = "out_of_order"
    #: A phase operation arrived before its prerequisite phase ran.
    PHASE_SKIP = "phase_skip"
    #: A new message arrived for a session that already terminated.
    POST_TERMINAL = "post_terminal"
    #: A retry reused an idempotency token (requestId / clientSeq) with
    #: a payload that differs from the recorded original.
    REPLAY_MISMATCH = "replay_mismatch"

    # -- admission control (repro.hardening.admission) ----------------------
    #: The service shed the request under load; retry after the hint.
    OVERLOADED = "overloaded"
    #: The client's propagated deadline had already expired when the
    #: request reached the service; the work was shed unevaluated.
    DEADLINE_EXPIRED = "deadline_expired"

    # -- transport / service lifecycle --------------------------------------
    #: The endpoint did not answer (lost message, crash, open circuit).
    UNREACHABLE = "unreachable"
    #: All retry attempts for a call were exhausted.
    RETRY_EXHAUSTED = "retry_exhausted"
    #: The per-endpoint circuit breaker is open.
    CIRCUIT_OPEN = "circuit_open"
    #: The service's database tier could not be reached.
    DB_UNAVAILABLE = "db_unavailable"
    #: The service instance was closed or crashed.
    SERVICE_CLOSED = "service_closed"
    #: A non-terminal session outlived its TTL and was expired.
    SESSION_EXPIRED = "session_expired"
    #: The service caught an unexpected exception; nothing leaked.
    INTERNAL = "internal"

    # -- negotiation verdicts (FailureNotice) --------------------------------
    #: Generic negotiation failure (see the FailureReason taxonomy for
    #: the protocol-level detail).
    NEGOTIATION_FAILED = "negotiation_failed"
    #: A disclosed credential failed verification.
    CREDENTIAL_REJECTED = "credential_rejected"
    #: The policy phase proved no trust sequence can exist.
    NO_TRUST_SEQUENCE = "no_trust_sequence"

    # -- trust retraction (repro.trust) --------------------------------------
    #: An already-accepted credential was retracted mid-negotiation
    #: (revocation event, negative credential) and the re-verification
    #: on the next turn failed.
    CREDENTIAL_REVOKED = "credential_revoked"
    #: A revocation list was offered for distribution without a valid
    #: issuer signature (``RevocationList.revoke`` drops the signature;
    #: the list must be re-signed before it can be published).
    UNSIGNED_REVOCATION_LIST = "unsigned_revocation_list"

    @classmethod
    def parse(cls, text: str) -> "ErrorCode":
        normalized = text.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown error code {text!r}")


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``error_code`` is the machine-readable :class:`ErrorCode`: passed
    per instance (keyword-only) or inherited from the class-level
    :attr:`default_code`; ``None`` for errors predating the taxonomy.
    """

    default_code: ClassVar[Optional[ErrorCode]] = None

    def __init__(self, *args, error_code: Optional[ErrorCode] = None) -> None:
        super().__init__(*args)
        self.error_code = (
            error_code if error_code is not None else type(self).default_code
        )


# ---------------------------------------------------------------------------
# XML / serialization layer
# ---------------------------------------------------------------------------

class XMLError(ReproError):
    """Malformed or unserializable XML content."""

    default_code = ErrorCode.MALFORMED_MESSAGE


class XPathError(XMLError):
    """Invalid XPath-subset expression or evaluation failure."""


# ---------------------------------------------------------------------------
# Cryptographic substrate
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """Invalid, malformed, or mismatched key material."""


class SignatureError(CryptoError):
    """Signature creation or verification failed."""


# ---------------------------------------------------------------------------
# Credential layer
# ---------------------------------------------------------------------------

class CredentialError(ReproError):
    """Base class for credential-related failures."""


class CredentialFormatError(CredentialError):
    """A credential document does not conform to the X-TNL schema."""


class CredentialExpiredError(CredentialError):
    """The credential's validity window does not cover the check time."""


class CredentialRevokedError(CredentialError):
    """The credential appears on its issuer's revocation list."""

    default_code = ErrorCode.CREDENTIAL_REVOKED


class CredentialOwnershipError(CredentialError):
    """Proof of ownership of the credential's subject key failed."""


class IssuanceError(CredentialError):
    """A credential authority refused or failed to issue a credential."""


class SelectiveDisclosureError(CredentialError):
    """Hash-based selective disclosure verification failed."""


# ---------------------------------------------------------------------------
# Policy layer
# ---------------------------------------------------------------------------

class PolicyError(ReproError):
    """Base class for disclosure-policy failures."""


class PolicyParseError(PolicyError):
    """The policy DSL or XML form could not be parsed."""


class ConditionError(PolicyError):
    """A policy condition is malformed or cannot be evaluated."""


# ---------------------------------------------------------------------------
# Ontology layer
# ---------------------------------------------------------------------------

class OntologyError(ReproError):
    """Base class for ontology failures."""


class ConceptNotFoundError(OntologyError):
    """A referenced concept does not exist in the ontology."""


class MappingError(OntologyError):
    """Concept-to-credential mapping failed (Algorithm 1)."""


# ---------------------------------------------------------------------------
# Negotiation layer
# ---------------------------------------------------------------------------

class NegotiationError(ReproError):
    """Base class for trust-negotiation failures."""


class NegotiationFailure(NegotiationError):
    """The negotiation terminated without establishing trust."""


class ProtocolError(NegotiationError):
    """A party violated the negotiation protocol."""


class StrategyError(NegotiationError):
    """A strategy constraint was violated (e.g. X.509 with suspicious)."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage failures."""


class DocumentNotFoundError(StorageError):
    """No document matched the requested key or query."""


class DatabaseUnavailableError(StorageError):
    """The (simulated) database connection could not be opened.

    Transient by nature — the resilience layer treats it as retryable,
    mirroring the prototype's Oracle connection failures."""

    default_code = ErrorCode.DB_UNAVAILABLE


# ---------------------------------------------------------------------------
# Services layer
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for simulated web-service failures."""


class TransportError(ServiceError):
    """The simulated transport could not deliver a message."""

    default_code = ErrorCode.UNREACHABLE


class SessionError(ServiceError):
    """Unknown or invalid negotiation session id."""

    default_code = ErrorCode.UNKNOWN_SESSION


class TimeoutError(TransportError):  # noqa: A001 - deliberate shadow
    """A call exceeded its deadline: the request or the response was
    lost, or the endpoint is down.  Shadows the builtin on purpose
    (as :class:`asyncio.TimeoutError` does); always retryable."""


class CircuitOpenError(ServiceError):
    """The per-endpoint circuit breaker is open: the endpoint failed
    repeatedly and calls are being rejected locally until the breaker's
    reset timeout elapses (then a half-open probe is allowed)."""

    default_code = ErrorCode.CIRCUIT_OPEN


class RetryExhaustedError(ServiceError):
    """All retry attempts for a call failed.

    Carries the number of ``attempts`` made and the ``last_error`` that
    caused the final failure."""

    default_code = ErrorCode.RETRY_EXHAUSTED

    def __init__(self, message: str, attempts: int = 0,
                 last_error: "Exception | None" = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class GuardRejection(ServiceError):
    """The protocol guard rejected an inbound message before it reached
    the negotiation engine.  The specific violation is carried in
    ``error_code`` (schema violation, oversized payload, out-of-order
    sequence, post-terminal message, ...)."""

    default_code = ErrorCode.MALFORMED_MESSAGE


class OverloadError(ServiceError):
    """Admission control shed the request: the service's bounded work
    queue is over its priority threshold.  ``retry_after_ms`` is the
    backpressure hint — the earliest simulated time delta at which a
    retry has a chance of being admitted.  :class:`ResilientTransport`
    honors it instead of hammering the saturated peer."""

    default_code = ErrorCode.OVERLOADED

    def __init__(self, message: str, retry_after_ms: float = 0.0,
                 error_code: "ErrorCode | None" = None) -> None:
        super().__init__(message, error_code=error_code)
        self.retry_after_ms = retry_after_ms


class DeadlineExpiredError(ServiceError):
    """The client-propagated deadline had already passed when the
    request reached the service, so the work was shed unevaluated."""

    default_code = ErrorCode.DEADLINE_EXPIRED


class InternalServiceError(ServiceError):
    """The service caught an unexpected exception at its boundary and
    translated it instead of leaking a stack trace to the peer."""

    default_code = ErrorCode.INTERNAL


# ---------------------------------------------------------------------------
# VO layer
# ---------------------------------------------------------------------------

class VOError(ReproError):
    """Base class for Virtual Organization failures."""


class LifecycleError(VOError):
    """An operation was attempted in the wrong lifecycle phase."""


class ContractError(VOError):
    """Contract construction or validation failed."""


class InvitationError(VOError):
    """Invitation handling failed (unknown invite, double response, ...)."""


class MembershipError(VOError):
    """Membership operation failed (unknown member, role conflicts, ...)."""
