"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# XML / serialization layer
# ---------------------------------------------------------------------------

class XMLError(ReproError):
    """Malformed or unserializable XML content."""


class XPathError(XMLError):
    """Invalid XPath-subset expression or evaluation failure."""


# ---------------------------------------------------------------------------
# Cryptographic substrate
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """Invalid, malformed, or mismatched key material."""


class SignatureError(CryptoError):
    """Signature creation or verification failed."""


# ---------------------------------------------------------------------------
# Credential layer
# ---------------------------------------------------------------------------

class CredentialError(ReproError):
    """Base class for credential-related failures."""


class CredentialFormatError(CredentialError):
    """A credential document does not conform to the X-TNL schema."""


class CredentialExpiredError(CredentialError):
    """The credential's validity window does not cover the check time."""


class CredentialRevokedError(CredentialError):
    """The credential appears on its issuer's revocation list."""


class CredentialOwnershipError(CredentialError):
    """Proof of ownership of the credential's subject key failed."""


class IssuanceError(CredentialError):
    """A credential authority refused or failed to issue a credential."""


class SelectiveDisclosureError(CredentialError):
    """Hash-based selective disclosure verification failed."""


# ---------------------------------------------------------------------------
# Policy layer
# ---------------------------------------------------------------------------

class PolicyError(ReproError):
    """Base class for disclosure-policy failures."""


class PolicyParseError(PolicyError):
    """The policy DSL or XML form could not be parsed."""


class ConditionError(PolicyError):
    """A policy condition is malformed or cannot be evaluated."""


# ---------------------------------------------------------------------------
# Ontology layer
# ---------------------------------------------------------------------------

class OntologyError(ReproError):
    """Base class for ontology failures."""


class ConceptNotFoundError(OntologyError):
    """A referenced concept does not exist in the ontology."""


class MappingError(OntologyError):
    """Concept-to-credential mapping failed (Algorithm 1)."""


# ---------------------------------------------------------------------------
# Negotiation layer
# ---------------------------------------------------------------------------

class NegotiationError(ReproError):
    """Base class for trust-negotiation failures."""


class NegotiationFailure(NegotiationError):
    """The negotiation terminated without establishing trust."""


class ProtocolError(NegotiationError):
    """A party violated the negotiation protocol."""


class StrategyError(NegotiationError):
    """A strategy constraint was violated (e.g. X.509 with suspicious)."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for storage failures."""


class DocumentNotFoundError(StorageError):
    """No document matched the requested key or query."""


class DatabaseUnavailableError(StorageError):
    """The (simulated) database connection could not be opened.

    Transient by nature — the resilience layer treats it as retryable,
    mirroring the prototype's Oracle connection failures."""


# ---------------------------------------------------------------------------
# Services layer
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for simulated web-service failures."""


class TransportError(ServiceError):
    """The simulated transport could not deliver a message."""


class SessionError(ServiceError):
    """Unknown or invalid negotiation session id."""


class TimeoutError(TransportError):  # noqa: A001 - deliberate shadow
    """A call exceeded its deadline: the request or the response was
    lost, or the endpoint is down.  Shadows the builtin on purpose
    (as :class:`asyncio.TimeoutError` does); always retryable."""


class CircuitOpenError(ServiceError):
    """The per-endpoint circuit breaker is open: the endpoint failed
    repeatedly and calls are being rejected locally until the breaker's
    reset timeout elapses (then a half-open probe is allowed)."""


class RetryExhaustedError(ServiceError):
    """All retry attempts for a call failed.

    Carries the number of ``attempts`` made and the ``last_error`` that
    caused the final failure."""

    def __init__(self, message: str, attempts: int = 0,
                 last_error: "Exception | None" = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


# ---------------------------------------------------------------------------
# VO layer
# ---------------------------------------------------------------------------

class VOError(ReproError):
    """Base class for Virtual Organization failures."""


class LifecycleError(VOError):
    """An operation was attempted in the wrong lifecycle phase."""


class ContractError(VOError):
    """Contract construction or validation failed."""


class InvitationError(VOError):
    """Invitation handling failed (unknown invite, double response, ...)."""


class MembershipError(VOError):
    """Membership operation failed (unknown member, role conflicts, ...)."""
