"""repro — Trust-X trust negotiation for Virtual Organization management.

A from-scratch Python reproduction of

    A.C. Squicciarini, F. Paci, E. Bertino,
    "Trust establishment in the formation of Virtual Organizations",
    Computer Standards & Interfaces (2010).

The package provides:

- the **Trust-X negotiation engine** (:mod:`repro.negotiation`) with
  X-TNL credentials (:mod:`repro.credentials`) and disclosure policies
  (:mod:`repro.policy`),
- the **semantic layer** of ontologies, similarity matching, and the
  paper's Algorithm 1 (:mod:`repro.ontology`),
- the **VO Management toolkit** (:mod:`repro.vo`) and the simulated
  SOA it is deployed on (:mod:`repro.services`, :mod:`repro.storage`),
- the paper's **Aircraft Optimization scenario** and synthetic
  workloads (:mod:`repro.scenario`).

Quickstart::

    from repro.scenario import build_aircraft_scenario
    from repro.scenario.aircraft import ROLE_DESIGN_PORTAL

    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition
    vo = edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_join(
        scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
        with_negotiation=True,
    )
    assert outcome.joined
"""

from repro.credentials import (
    AttributeCertificate,
    Credential,
    CredentialAuthority,
    CredentialValidator,
    RevocationRegistry,
    SelectiveCredential,
    Sensitivity,
    ValidityPeriod,
    VOMembershipToken,
    XProfile,
)
from repro.crypto import KeyPair, Keyring
from repro.negotiation import (
    FailureReason,
    NegotiationResult,
    Strategy,
    TrustXAgent,
    negotiate,
)
from repro.ontology import ConceptMapper, Ontology
from repro.policy import DisclosurePolicy, PolicyBase, parse_policies, parse_policy
from repro.vo import (
    Contract,
    Role,
    ServiceRegistry,
    VirtualOrganization,
    VOInitiator,
    VOMember,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # credentials
    "Credential",
    "ValidityPeriod",
    "XProfile",
    "Sensitivity",
    "CredentialAuthority",
    "CredentialValidator",
    "RevocationRegistry",
    "AttributeCertificate",
    "VOMembershipToken",
    "SelectiveCredential",
    # crypto
    "KeyPair",
    "Keyring",
    # policy
    "DisclosurePolicy",
    "PolicyBase",
    "parse_policy",
    "parse_policies",
    # ontology
    "Ontology",
    "ConceptMapper",
    # negotiation
    "TrustXAgent",
    "negotiate",
    "NegotiationResult",
    "FailureReason",
    "Strategy",
    # vo
    "Role",
    "Contract",
    "ServiceRegistry",
    "VOMember",
    "VOInitiator",
    "VirtualOrganization",
]
