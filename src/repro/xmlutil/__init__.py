"""XML infrastructure shared by credentials, policies, and storage.

The paper encodes both credentials and disclosure policies as XML
(Figs. 6-7) and evaluates policy conditions as XPath expressions over
credential documents.  This subpackage provides:

- :mod:`repro.xmlutil.canonical` — a deterministic, signing-safe XML
  serialization (attributes sorted, whitespace normalized), playing the
  role of XML-C14N for our signature layer.
- :mod:`repro.xmlutil.xpath` — a self-contained evaluator for the XPath
  subset that X-TNL policy conditions use.
"""

from repro.xmlutil.canonical import canonicalize, element_digest, parse_xml
from repro.xmlutil.xpath import XPath, evaluate_xpath

__all__ = [
    "canonicalize",
    "element_digest",
    "parse_xml",
    "XPath",
    "evaluate_xpath",
]
