"""Evaluator for the XPath subset used by X-TNL policy conditions.

The paper stores each additional policy condition as "an Xpath expression
on the credential" (Section 6.2).  ``xml.etree`` ships only a very small
``findall`` dialect without comparison operators, so this module
implements a proper-but-small XPath engine supporting what disclosure
policies need:

Location paths
    ``/a/b``, ``a/b``, ``//name``, wildcard ``*``, attribute steps
    ``@attr``, ``text()``, and predicates ``[...]`` on any step.

Expressions
    string and numeric literals, comparisons ``= != < <= > >=``,
    boolean ``and`` / ``or``, ``not(expr)``, and the functions
    ``count(path)``, ``number(expr)``, ``string(expr)``,
    ``contains(a, b)``, ``starts-with(a, b)``.

Evaluation follows XPath 1.0 coercion rules closely enough for policy
work: a node-set compares true against a scalar if *any* node matches,
node-sets coerce to the string value of their first node, and numeric
comparison is attempted before string comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence, Union
from xml.etree import ElementTree as ET

from repro.errors import XPathError
from repro.perf import XPATH_CACHE

__all__ = ["XPath", "evaluate_xpath"]


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<dslash>//)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<name>[A-Za-z_][\w.-]*)
  | (?P<punct>[/@\[\]()*,])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str


def _tokenize(expression: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            raise XPathError(
                f"unexpected character {expression[position]!r} at offset "
                f"{position} in XPath {expression!r}"
            )
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    return tokens


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Step:
    """One location step: axis + node test + predicates."""

    axis: str  # "child" | "descendant" | "attribute"
    test: str  # element name, "*", or "text()"
    predicates: tuple["_Expr", ...] = ()


@dataclass(frozen=True)
class _Path:
    absolute: bool
    steps: tuple[_Step, ...]


@dataclass(frozen=True)
class _Literal:
    value: Union[str, float]


@dataclass(frozen=True)
class _Compare:
    op: str
    left: "_Expr"
    right: "_Expr"


@dataclass(frozen=True)
class _Boolean:
    op: str  # "and" | "or"
    left: "_Expr"
    right: "_Expr"


@dataclass(frozen=True)
class _Call:
    name: str
    args: tuple["_Expr", ...]


_Expr = Union[_Path, _Literal, _Compare, _Boolean, _Call]

_FUNCTIONS = {"count", "number", "string", "contains", "starts-with", "not"}


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = _tokenize(expression)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise XPathError(f"unexpected end of XPath {self.expression!r}")
        self.index += 1
        return token

    def _accept(self, value: str) -> bool:
        token = self._peek()
        if token is not None and token.value == value:
            self.index += 1
            return True
        return False

    def _expect(self, value: str) -> None:
        if not self._accept(value):
            token = self._peek()
            found = token.value if token else "<end>"
            raise XPathError(
                f"expected {value!r} but found {found!r} in {self.expression!r}"
            )

    # -- grammar ------------------------------------------------------------

    def parse(self) -> _Expr:
        expr = self._parse_or()
        if self._peek() is not None:
            raise XPathError(
                f"trailing tokens after expression in {self.expression!r}"
            )
        return expr

    def _parse_or(self) -> _Expr:
        left = self._parse_and()
        while True:
            token = self._peek()
            if token is not None and token.value == "or":
                self.index += 1
                left = _Boolean("or", left, self._parse_and())
            else:
                return left

    def _parse_and(self) -> _Expr:
        left = self._parse_comparison()
        while True:
            token = self._peek()
            if token is not None and token.value == "and":
                self.index += 1
                left = _Boolean("and", left, self._parse_comparison())
            else:
                return left

    def _parse_comparison(self) -> _Expr:
        left = self._parse_primary()
        token = self._peek()
        if token is not None and token.kind == "op":
            self.index += 1
            right = self._parse_primary()
            return _Compare(token.value, left, right)
        return left

    def _parse_primary(self) -> _Expr:
        token = self._peek()
        if token is None:
            raise XPathError(f"unexpected end of XPath {self.expression!r}")
        if token.kind == "number":
            self.index += 1
            return _Literal(float(token.value))
        if token.kind == "string":
            self.index += 1
            return _Literal(token.value[1:-1])
        if token.value == "(":
            self.index += 1
            inner = self._parse_or()
            self._expect(")")
            return inner
        if token.kind == "name":
            following = (
                self.tokens[self.index + 1]
                if self.index + 1 < len(self.tokens)
                else None
            )
            if (
                token.value in _FUNCTIONS
                and following is not None
                and following.value == "("
            ):
                return self._parse_call()
        return self._parse_path()

    def _parse_call(self) -> _Expr:
        name = self._next().value
        self._expect("(")
        args: list[_Expr] = []
        if not self._accept(")"):
            args.append(self._parse_or())
            while self._accept(","):
                args.append(self._parse_or())
            self._expect(")")
        return _Call(name, tuple(args))

    def _parse_path(self) -> _Path:
        absolute = False
        steps: list[_Step] = []
        token = self._peek()
        if token is not None and token.value in ("/", "//"):
            absolute = True
            if token.value == "//":
                self.index += 1
                steps.append(self._parse_step(axis="descendant"))
            else:
                self.index += 1
        steps_needed = not steps
        if steps_needed:
            steps.append(self._parse_step(axis="child"))
        while True:
            if self._accept("//"):
                steps.append(self._parse_step(axis="descendant"))
            elif self._accept("/"):
                steps.append(self._parse_step(axis="child"))
            else:
                break
        return _Path(absolute, tuple(steps))

    def _parse_step(self, axis: str) -> _Step:
        if self._accept("@"):
            axis = "attribute"
        token = self._next()
        if token.value == "*":
            test = "*"
        elif token.kind == "name":
            test = token.value
            if test == "text" and self._accept("("):
                self._expect(")")
                test = "text()"
        else:
            raise XPathError(
                f"invalid step {token.value!r} in {self.expression!r}"
            )
        predicates: list[_Expr] = []
        while self._accept("["):
            predicates.append(self._parse_or())
            self._expect("]")
        return _Step(axis, test, tuple(predicates))


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

_NodeSet = list  # list of ET.Element | str (attribute/text values)
_Value = Union[_NodeSet, str, float, bool]


def _string_value(node: Union[ET.Element, str]) -> str:
    if isinstance(node, str):
        return node
    return "".join(node.itertext())


def _to_string(value: _Value) -> str:
    if isinstance(value, list):
        if not value:
            return ""
        return _string_value(value[0])
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return str(value)
    return value


def _to_number(value: _Value) -> float:
    try:
        return float(_to_string(value))
    except ValueError:
        return float("nan")


def _to_bool(value: _Value) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and value == value  # NaN is false
    return bool(value)


def _compare_scalar(op: str, left: str, right: str) -> bool:
    try:
        left_num = float(left)
        right_num = float(right)
    except ValueError:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        # XPath 1.0 coerces relational comparisons to numbers; with a
        # non-numeric operand the comparison is false.
        return False
    if op == "=":
        return left_num == right_num
    if op == "!=":
        return left_num != right_num
    if op == "<":
        return left_num < right_num
    if op == "<=":
        return left_num <= right_num
    if op == ">":
        return left_num > right_num
    return left_num >= right_num


def _compare(op: str, left: _Value, right: _Value) -> bool:
    left_values: Sequence[str]
    right_values: Sequence[str]
    if isinstance(left, list):
        left_values = [_string_value(node) for node in left]
    else:
        left_values = [_to_string(left)]
    if isinstance(right, list):
        right_values = [_string_value(node) for node in right]
    else:
        right_values = [_to_string(right)]
    return any(
        _compare_scalar(op, lv, rv)
        for lv in left_values
        for rv in right_values
    )


class _Evaluator:
    def __init__(self, root: ET.Element) -> None:
        self.root = root

    def evaluate(self, expr: _Expr, context: ET.Element) -> _Value:
        if isinstance(expr, _Literal):
            return expr.value
        if isinstance(expr, _Path):
            return self._evaluate_path(expr, context)
        if isinstance(expr, _Compare):
            return _compare(
                expr.op,
                self.evaluate(expr.left, context),
                self.evaluate(expr.right, context),
            )
        if isinstance(expr, _Boolean):
            left = _to_bool(self.evaluate(expr.left, context))
            if expr.op == "and":
                return left and _to_bool(self.evaluate(expr.right, context))
            return left or _to_bool(self.evaluate(expr.right, context))
        if isinstance(expr, _Call):
            return self._evaluate_call(expr, context)
        raise XPathError(f"unknown expression node {expr!r}")

    def _evaluate_call(self, call: _Call, context: ET.Element) -> _Value:
        args = [self.evaluate(arg, context) for arg in call.args]
        if call.name == "count":
            if len(args) != 1 or not isinstance(args[0], list):
                raise XPathError("count() requires a single node-set argument")
            return float(len(args[0]))
        if call.name == "number":
            return _to_number(args[0]) if args else float("nan")
        if call.name == "string":
            return _to_string(args[0]) if args else ""
        if call.name == "contains":
            if len(args) != 2:
                raise XPathError("contains() requires two arguments")
            return _to_string(args[1]) in _to_string(args[0])
        if call.name == "starts-with":
            if len(args) != 2:
                raise XPathError("starts-with() requires two arguments")
            return _to_string(args[0]).startswith(_to_string(args[1]))
        if call.name == "not":
            if len(args) != 1:
                raise XPathError("not() requires one argument")
            return not _to_bool(args[0])
        raise XPathError(f"unknown XPath function {call.name!r}")

    # -- path evaluation ----------------------------------------------------

    def _evaluate_path(self, path: _Path, context: ET.Element) -> _NodeSet:
        if path.absolute:
            nodes: _NodeSet = [self.root]
            steps = path.steps
            # An absolute path names the root element in its first child
            # step (e.g. /credential/header); consume it against the root.
            if (
                steps
                and steps[0].axis == "child"
                and steps[0].test in (self.root.tag, "*")
            ):
                nodes = self._apply_predicates(steps[0], [self.root])
                steps = steps[1:]
        else:
            nodes = [context]
            steps = path.steps
        for step in steps:
            nodes = self._apply_step(step, nodes)
        return nodes

    def _apply_step(self, step: _Step, nodes: _NodeSet) -> _NodeSet:
        result: _NodeSet = []
        for node in nodes:
            if isinstance(node, str):
                continue  # cannot navigate below attribute/text values
            result.extend(self._select(step, node))
        if step.axis == "attribute" or step.test == "text()":
            return result
        return self._apply_predicates(step, result)

    def _select(self, step: _Step, node: ET.Element) -> Iterable:
        if step.axis == "attribute":
            if step.test == "*":
                return list(node.attrib.values())
            if step.test in node.attrib:
                return [node.attrib[step.test]]
            return []
        if step.test == "text()":
            candidates = node.iter() if step.axis == "descendant" else [node]
            texts = []
            for candidate in candidates:
                if candidate.text and candidate.text.strip():
                    texts.append(candidate.text.strip())
            return texts
        if step.axis == "descendant":
            matches = []
            for descendant in node.iter():
                if descendant is node:
                    continue
                if step.test == "*" or descendant.tag == step.test:
                    matches.append(descendant)
            return matches
        # child axis
        if step.test == "*":
            return list(node)
        return [child for child in node if child.tag == step.test]

    def _apply_predicates(self, step: _Step, nodes: _NodeSet) -> _NodeSet:
        result = nodes
        for predicate in step.predicates:
            filtered: _NodeSet = []
            for position, node in enumerate(result, start=1):
                value = self.evaluate(predicate, node)
                if isinstance(value, float):
                    if value == position:  # positional predicate [2]
                        filtered.append(node)
                elif _to_bool(value):
                    filtered.append(node)
            result = filtered
        return result


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

class XPath:
    """A compiled XPath-subset expression.

    >>> doc = ET.fromstring("<c><a score='7'>x</a></c>")
    >>> XPath("/c/a/@score > 5").evaluate(doc)
    True
    >>> XPath("/c/a").select(doc)[0].text
    'x'
    """

    def __init__(self, expression: str) -> None:
        self.expression = expression
        # Compilation is pure in the expression string and the AST is an
        # immutable tree of frozen dataclasses, so sharing one parse
        # across all XPath instances for the same expression is safe.
        self._ast = XPATH_CACHE.get_or_compute(
            expression, lambda: _Parser(expression).parse()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"XPath({self.expression!r})"

    def evaluate(self, document: ET.Element) -> _Value:
        """Evaluate against ``document`` and return the raw XPath value."""
        return _Evaluator(document).evaluate(self._ast, document)

    def matches(self, document: ET.Element) -> bool:
        """Evaluate and coerce the result to a boolean."""
        return _to_bool(self.evaluate(document))

    def select(self, document: ET.Element) -> _NodeSet:
        """Evaluate and require a node-set result."""
        value = self.evaluate(document)
        if not isinstance(value, list):
            raise XPathError(
                f"{self.expression!r} does not evaluate to a node-set"
            )
        return value


def evaluate_xpath(expression: str, document: ET.Element) -> _Value:
    """One-shot helper: compile ``expression`` and evaluate on ``document``."""
    return XPath(expression).evaluate(document)
