"""Deterministic XML serialization for signing.

Two X-TNL documents with the same logical content must serialize to the
same byte string so that signatures verify regardless of attribute order
or incidental whitespace.  This module implements a small canonical form
inspired by XML-C14N:

- attributes are emitted in sorted order;
- text is escaped minimally and surrounding whitespace of *structural*
  (element-only) nodes is dropped;
- no XML declaration, no namespace rewriting (X-TNL documents are
  namespace-free).
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Optional
from xml.etree import ElementTree as ET

from repro.errors import XMLError
from repro.perf import CANONICAL_CACHE, DIGEST_CACHE

__all__ = ["canonicalize", "element_digest", "parse_xml"]


def parse_xml(text: str) -> ET.Element:
    """Parse ``text`` into an Element, wrapping parse errors in XMLError."""
    try:
        return ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLError(f"malformed XML: {exc}") from exc


def _escape_text(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _escape_attr(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


def _is_structural(element: ET.Element) -> bool:
    """True when the element only exists to hold child elements."""
    has_children = len(element) > 0
    text_blank = element.text is None or not element.text.strip()
    return has_children and text_blank


def _write(element: ET.Element, parts: list[str]) -> None:
    tag = element.tag
    if not isinstance(tag, str):
        # Comments and processing instructions are not part of the
        # canonical form.
        return
    parts.append(f"<{tag}")
    for name in sorted(element.attrib):
        parts.append(f' {name}="{_escape_attr(element.attrib[name])}"')
    children = list(element)
    text = element.text or ""
    if not children and not text:
        parts.append(f"></{tag}>")
        return
    parts.append(">")
    if text:
        if _is_structural(element):
            pass  # drop indentation-only whitespace
        else:
            parts.append(_escape_text(text.strip()))
    for child in children:
        _write(child, parts)
        if child.tail and child.tail.strip():
            parts.append(_escape_text(child.tail.strip()))
    parts.append(f"</{tag}>")


def canonicalize(element: ET.Element | str,
                 cache_key: Optional[Hashable] = None) -> str:
    """Return the canonical string form of ``element``.

    Accepts either an Element or an XML string (which is parsed first).
    The output is stable across attribute ordering and pretty-printing
    whitespace, making it safe to sign and to compare.

    Elements are mutable and unhashable, so memoization is strictly
    opt-in: callers that can vouch the serialized content is fully
    determined by some hashable value (e.g. a frozen
    :class:`~repro.credentials.credential.Credential`) pass it as
    ``cache_key`` and the canonical string is served from
    :data:`repro.perf.CANONICAL_CACHE` on repeats.
    """
    if cache_key is not None:
        return CANONICAL_CACHE.get_or_compute(
            cache_key, lambda: canonicalize(element)
        )
    if isinstance(element, str):
        element = parse_xml(element)
    parts: list[str] = []
    _write(element, parts)
    return "".join(parts)


def element_digest(element: ET.Element | str,
                   cache_key: Optional[Hashable] = None) -> bytes:
    """SHA-256 digest of the canonical form of ``element``.

    ``cache_key`` has the same contract as in :func:`canonicalize`; a
    keyed call memoizes the digest (and, transitively, the canonical
    form) in :data:`repro.perf.DIGEST_CACHE`.
    """
    if cache_key is not None:
        return DIGEST_CACHE.get_or_compute(
            cache_key,
            lambda: hashlib.sha256(
                canonicalize(element, cache_key=cache_key).encode("utf-8")
            ).digest(),
        )
    return hashlib.sha256(canonicalize(element).encode("utf-8")).digest()
