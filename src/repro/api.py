"""``repro.api`` — the blessed public surface of the reproduction.

Everything an application (the examples, the CLI, external callers)
needs is importable from this one module::

    from repro.api import (
        Negotiator, VOToolkit, TNWebService, FaultInjector, obs,
        ObsConfig, PerfConfig, ResilienceConfig, TrustConfig,
    )

Three kinds of names live here:

1. **Facade classes** defined in this module — :class:`Negotiator`
   (one-call trust negotiation with optional sequence-cache replay),
   :class:`VOToolkit` (builds the simulated SOA transport stack:
   ``client → ResilientTransport → FaultInjector → SimTransport`` —
   and hands out the three toolkit editions), and the keyword-only
   configuration quartet :class:`ObsConfig` / :class:`PerfConfig` /
   :class:`ResilienceConfig` / :class:`TrustConfig`.
2. **Re-exports** of the stable implementation classes (negotiation,
   credentials, policies, services, faults, scenario builders) under
   their canonical names.
3. The :mod:`repro.obs` observability module itself, as ``obs``.

Importing from the historical package shortcuts ``repro.services`` and
``repro.faults`` still works but emits a :class:`DeprecationWarning`
pointing here; the deep module paths (``repro.services.tn_service``
etc.) remain canonical and warning-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Optional

from repro import obs
from repro.errors import ErrorCode
from repro.credentials import (
    AttributeCertificate,
    batch_prewarm_signatures,
    Credential,
    CredentialAuthority,
    CredentialValidator,
    RevocationRegistry,
    SelectiveCredential,
    Sensitivity,
    ValidityPeriod,
    VOMembershipToken,
    XProfile,
)
from repro.crypto import KeyPair, Keyring, verify_b64_batch, verify_batch
from repro.faults.adversarial import Probe, build_probe
from repro.faults.demo import run_demo as run_fault_demo
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hardening import (
    AdmissionController,
    AdmissionStats,
    GuardStats,
    HardeningConfig,
    Priority,
    ProtocolGuard,
    SoakConfig,
    SoakReport,
    run_soak,
)
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.cache import CachingNegotiator, SequenceCache
from repro.negotiation.core import (
    AgentOp,
    NegotiationCore,
    drive,
    perform_agent_op,
)
from repro.negotiation.eager import eager_negotiate
from repro.negotiation.engine import (
    DEFAULT_NEGOTIATION_TIME,
    NegotiationEngine,
    negotiate,
)
from repro.negotiation.outcomes import FailureReason, NegotiationResult
from repro.negotiation.render import render_ascii, render_dot
from repro.negotiation.sequence import TrustSequence
from repro.negotiation.strategies import Strategy, escalated_strategy
from repro.negotiation.tree import NegotiationTree, View
from repro.obs import ObsConfig
from repro.ontology import (
    ConceptMapper,
    MappingOutcome,
    Ontology,
    match_ontologies,
    ontology_from_owl,
    ontology_to_owl,
)
from repro.ontology.builtin import aerospace_reference_ontology
from repro.perf import (
    all_stats as perf_cache_stats,
    caches_disabled,
    clear_all_caches,
    lock_free_caches,
    set_caches_enabled,
    set_lock_free,
)
from repro.policy import (
    ComplianceChecker,
    DisclosurePolicy,
    PolicyBase,
    parse_policies,
    parse_policy,
    policies_from_xacml,
    policies_to_xacml,
    policy_from_xml,
    policy_to_xml,
)
from repro.scenario import AircraftScenario, build_aircraft_scenario
from repro.scenario.engine import (
    RoundState,
    ScenarioConfig,
    ScenarioReport,
    run_scenario,
)
from repro.scenario.experiments import (
    IsolationConfig,
    IsolationReport,
    MatrixConfig,
    MatrixReport,
    ScarcityConfig,
    ScarcityReport,
    cheater_isolation,
    scarcity_market,
    two_agent_matrix,
)
from repro.scenario.market import (
    AgentStrategy,
    MarketConfig,
    Trader,
    run_market_round,
)
from repro.scenario.population import Population, seat_name
from repro.scenario.runner import WorkloadPreset, WorkloadRunner
from repro.scenario.aircraft import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    ROLE_STORAGE,
    build_fig1_workflow,
    enable_selective_disclosure,
)
from repro.scenario.workloads import (
    bushy_workload,
    capacity_workload,
    chain_workload,
    formation_workload,
    make_portfolio,
    overlapping_ontologies,
)
from repro.services.aio import (
    AioSimTransport,
    AioTNClient,
    AioTNWebService,
    adrive,
    anegotiate,
)
from repro.services.aio_resilience import AioResilientTransport
from repro.services.clock import SimClock
from repro.services.resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitState,
    ResilienceStats,
    ResilientTransport,
    RetryPolicy,
)
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import ChargeStats, LatencyModel, SimTransport
from repro.services.vo_toolkit import (
    FormationOutcome,
    HostEdition,
    InitiatorEdition,
    JoinOutcome,
    MemberEdition,
    UNREACHABLE_ERRORS,
)
from repro.trust import (
    RetractionReceipt,
    TrustBus,
    TrustEvent,
    TrustEventKind,
    default_bus,
    trust_epoch,
)
from repro.cluster import (
    AioShardedTNService,
    HashRing,
    HealthPolicy,
    HedgePolicy,
    ShardedTNService,
    ShardNode,
)
from repro.obs.audit import AuditLogSink, AuditReport, verify_audit_log
from repro.storage.document_store import XMLDocumentStore
from repro.storage.session_store import (
    InMemorySessionStore,
    SessionStore,
    WALSessionStore,
)
from repro.vo import (
    Contract,
    Role,
    ServiceRegistry,
    VirtualOrganization,
    VOInitiator,
    VOMember,
)
from repro.vo.monitoring import ViolationKind
from repro.vo.reputation import (
    INITIAL_SCORE,
    ReputationEvent,
    ReputationRecord,
    ReputationSystem,
)
from repro.vo.registry import ServiceDescription

__all__ = [
    # facade
    "Negotiator",
    "VOToolkit",
    "ObsConfig",
    "PerfConfig",
    "ResilienceConfig",
    "TrustConfig",
    "obs",
    # negotiation
    "TrustXAgent",
    "NegotiationEngine",
    "negotiate",
    "eager_negotiate",
    "NegotiationResult",
    "FailureReason",
    "Strategy",
    "escalated_strategy",
    "TrustSequence",
    "NegotiationTree",
    "View",
    "CachingNegotiator",
    "SequenceCache",
    "render_ascii",
    "render_dot",
    "DEFAULT_NEGOTIATION_TIME",
    # sans-IO core + drivers
    "NegotiationCore",
    "AgentOp",
    "drive",
    "perform_agent_op",
    "adrive",
    "anegotiate",
    # credentials / crypto
    "Credential",
    "ValidityPeriod",
    "XProfile",
    "Sensitivity",
    "CredentialAuthority",
    "CredentialValidator",
    "RevocationRegistry",
    "AttributeCertificate",
    "VOMembershipToken",
    "SelectiveCredential",
    "KeyPair",
    "Keyring",
    "verify_batch",
    "verify_b64_batch",
    "batch_prewarm_signatures",
    # policy
    "DisclosurePolicy",
    "PolicyBase",
    "ComplianceChecker",
    "parse_policy",
    "parse_policies",
    "policy_to_xml",
    "policy_from_xml",
    "policies_to_xacml",
    "policies_from_xacml",
    # ontology
    "Ontology",
    "ConceptMapper",
    "MappingOutcome",
    "match_ontologies",
    "ontology_to_owl",
    "ontology_from_owl",
    "aerospace_reference_ontology",
    # services
    "SimClock",
    "LatencyModel",
    "SimTransport",
    "ChargeStats",
    "TNWebService",
    "TNClient",
    "AioSimTransport",
    "AioTNWebService",
    "AioTNClient",
    "ResilientTransport",
    "AioResilientTransport",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "CircuitState",
    "ResilienceStats",
    "HostEdition",
    "InitiatorEdition",
    "MemberEdition",
    "JoinOutcome",
    "FormationOutcome",
    "UNREACHABLE_ERRORS",
    "XMLDocumentStore",
    # storage / durability
    "SessionStore",
    "InMemorySessionStore",
    "WALSessionStore",
    # cluster
    "HashRing",
    "ShardedTNService",
    "AioShardedTNService",
    "ShardNode",
    "HedgePolicy",
    "HealthPolicy",
    # audit
    "AuditLogSink",
    "AuditReport",
    "verify_audit_log",
    # faults
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultKind",
    "Probe",
    "build_probe",
    "run_fault_demo",
    # hardening
    "ErrorCode",
    "HardeningConfig",
    "ProtocolGuard",
    "GuardStats",
    "AdmissionController",
    "AdmissionStats",
    "Priority",
    "SoakConfig",
    "SoakReport",
    "run_soak",
    # perf
    "perf_cache_stats",
    "caches_disabled",
    "clear_all_caches",
    "set_caches_enabled",
    "set_lock_free",
    "lock_free_caches",
    # nonmonotonic trust
    "TrustBus",
    "TrustEvent",
    "TrustEventKind",
    "RetractionReceipt",
    "trust_epoch",
    "default_bus",
    # reputation
    "ReputationSystem",
    "ReputationEvent",
    "ReputationRecord",
    "INITIAL_SCORE",
    # vo
    "Role",
    "Contract",
    "ServiceRegistry",
    "ServiceDescription",
    "VOMember",
    "VOInitiator",
    "VirtualOrganization",
    "ViolationKind",
    # scenario / workloads
    "AircraftScenario",
    "build_aircraft_scenario",
    "build_fig1_workflow",
    "enable_selective_disclosure",
    "ROLE_DESIGN_PORTAL",
    "ROLE_HPC",
    "ROLE_OPTIMIZATION",
    "ROLE_STORAGE",
    "capacity_workload",
    "chain_workload",
    "bushy_workload",
    "formation_workload",
    "make_portfolio",
    "overlapping_ontologies",
    # open-world scenario engine
    "AgentStrategy",
    "MarketConfig",
    "Trader",
    "run_market_round",
    "Population",
    "seat_name",
    "ScenarioConfig",
    "ScenarioReport",
    "RoundState",
    "run_scenario",
    # exemplar experiments
    "MatrixConfig",
    "MatrixReport",
    "two_agent_matrix",
    "ScarcityConfig",
    "ScarcityReport",
    "scarcity_market",
    "IsolationConfig",
    "IsolationReport",
    "cheater_isolation",
    # workload runner
    "WorkloadPreset",
    "WorkloadRunner",
]


# -- configuration trio --------------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class PerfConfig:
    """Performance-layer knobs (PR 2's caches), applied explicitly."""

    #: Master switch for the process-wide XML/crypto caches.
    caches_enabled: bool = True
    #: Capacity of sequence caches built by :meth:`sequence_cache`.
    sequence_cache_capacity: int = 1024

    def apply(self) -> None:
        """Apply the cache switch process-wide."""
        set_caches_enabled(self.caches_enabled)

    def sequence_cache(self) -> SequenceCache:
        """A fresh trust-sequence cache sized by this config."""
        return SequenceCache(capacity=self.sequence_cache_capacity)


@dataclass(frozen=True, kw_only=True)
class ResilienceConfig:
    """Retry / circuit-breaker / deadline policy in one flat object.

    ``wrap``/``awrap`` build the sync and asyncio client-side
    decorators (both drive the same sans-IO
    :func:`~repro.services.resilience_core.resilience_call` core);
    ``hedge`` and ``health`` carry the cluster-side tail-latency
    policies for :meth:`router_kwargs` — pass them through when
    deploying an :class:`AioShardedTNService` (hedged starts) or any
    :class:`ShardedTNService` (health-aware routing).
    """

    max_attempts: int = 4
    base_backoff_ms: float = 100.0
    multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter_ms: float = 50.0
    jitter_seed: int = 0
    failure_threshold: int = 5
    reset_timeout_ms: float = 5000.0
    deadline_ms: Optional[float] = 30_000.0
    #: Hedged-start policy for :class:`AioShardedTNService`; ``None``
    #: disables hedging.
    hedge: Optional[HedgePolicy] = None
    #: Shard ejection/probing policy for the cluster routers; ``None``
    #: keeps legacy route-by-hash behavior.
    health: Optional[HealthPolicy] = None

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_backoff_ms=self.base_backoff_ms,
            multiplier=self.multiplier,
            max_backoff_ms=self.max_backoff_ms,
            jitter_ms=self.jitter_ms,
            jitter_seed=self.jitter_seed,
        )

    def breaker_policy(self) -> CircuitBreakerPolicy:
        return CircuitBreakerPolicy(
            failure_threshold=self.failure_threshold,
            reset_timeout_ms=self.reset_timeout_ms,
        )

    def wrap(self, inner) -> ResilientTransport:
        """Decorate ``inner`` with a :class:`ResilientTransport`."""
        return ResilientTransport(
            inner=inner,
            retry=self.retry_policy(),
            breaker_policy=self.breaker_policy(),
            deadline_ms=self.deadline_ms,
        )

    def awrap(self, inner) -> AioResilientTransport:
        """Decorate an async transport with the asyncio driver.

        Same policies, same stats, same sans-IO decision core as
        :meth:`wrap` — calls go through ``await transport.acall(...)``.
        """
        return AioResilientTransport(
            inner=inner,
            retry=self.retry_policy(),
            breaker_policy=self.breaker_policy(),
            deadline_ms=self.deadline_ms,
        )

    def router_kwargs(self) -> dict:
        """Cluster-router keyword arguments carried by this config.

        ``AioShardedTNService(..., **config.router_kwargs())`` applies
        both policies; the sync :class:`ShardedTNService` takes only
        ``health`` (hedging needs the async race), so pass
        ``health=config.health`` there instead.
        """
        kwargs: dict = {"health": self.health}
        if self.hedge is not None:
            kwargs["hedge"] = self.hedge
        return kwargs


@dataclass(frozen=True, kw_only=True)
class TrustConfig:
    """Nonmonotonic-trust knobs: the retraction bus, reputation decay,
    and the strategy-escalation policy, in one flat object.

    The retraction path runs through a :class:`~repro.trust.TrustBus`
    over a :class:`RevocationRegistry`; ``TrustConfig`` either wraps
    the bus you pass (``bus=``) or lazily adopts the process-wide
    :func:`~repro.trust.default_bus`.  Decay settings mirror
    :class:`ScenarioConfig` (``decay_half_life`` in rounds, scores
    drifting toward ``decay_target``) so one config can drive both a
    :class:`Negotiator` and a scenario run.
    """

    #: The retraction bus; ``None`` adopts :func:`repro.trust.default_bus`.
    bus: Optional[TrustBus] = None
    #: Rounds for half the distance to ``decay_target`` to disappear;
    #: ``None`` disables time-based reputation decay.
    decay_half_life: Optional[float] = None
    #: Where decayed scores drift (the newcomer default: trust can be
    #: earned back; below the isolation threshold: trust erodes).
    decay_target: float = INITIAL_SCORE
    #: Escalate a party's strategy to SUSPICIOUS when a retraction has
    #: touched its counterparty (gated on partial-hiding support).
    escalate_on_retraction: bool = True

    def __post_init__(self) -> None:
        if self.decay_half_life is not None and self.decay_half_life <= 0:
            raise ValueError(
                f"decay_half_life must be positive, got {self.decay_half_life}"
            )
        if not 0.0 <= self.decay_target <= 1.0:
            raise ValueError(
                f"decay_target must be in [0, 1], got {self.decay_target}"
            )

    def trust_bus(self) -> TrustBus:
        """The configured bus, or the process-wide default."""
        return self.bus if self.bus is not None else default_bus()

    @property
    def registry(self) -> RevocationRegistry:
        """The revocation registry behind the bus."""
        return self.trust_bus().registry

    def retract(self, event: TrustEvent) -> RetractionReceipt:
        """Retract ``event`` through the configured bus."""
        return self.trust_bus().retract(event)

    def apply_escalation(
        self, agent: TrustXAgent, *, counterparty: str
    ) -> Strategy:
        """Escalate ``agent``'s strategy if a retraction touched
        ``counterparty``, and return the (possibly unchanged) strategy.

        Escalation only fires for parties holding selective-disclosure
        forms — :func:`escalated_strategy` keeps plain-X.509 parties on
        their current strategy (Section 6.3).
        """
        if not self.escalate_on_retraction:
            return agent.strategy
        if not self.trust_bus().touched(counterparty):
            return agent.strategy
        escalated = escalated_strategy(
            agent.strategy, supports_partial_hiding=bool(agent.selective)
        )
        if escalated is not agent.strategy:
            agent.strategy = escalated
            obs.count("trust.strategy_escalations")
        return escalated


# -- Negotiator ----------------------------------------------------------------------


@dataclass(kw_only=True)
class Negotiator:
    """One-call trust negotiation, optionally with sequence-cache replay.

    A thin, keyword-only front over :class:`NegotiationEngine` (and
    :class:`CachingNegotiator` when a cache is attached)::

        negotiator = Negotiator(cache=SequenceCache())
        result = negotiator.negotiate(requester, controller, "RES")
    """

    cache: Optional[SequenceCache] = None
    max_depth: int = 16
    max_nodes: int = 512
    view_limit: int = 64
    view_selection: str = "first"
    #: Nonmonotonic-trust wiring; with ``escalate_on_retraction`` a
    #: party whose counterparty was touched by a retraction negotiates
    #: suspiciously from then on.
    trust: Optional[TrustConfig] = None

    def _engine_options(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "max_nodes": self.max_nodes,
            "view_limit": self.view_limit,
            "view_selection": self.view_selection,
        }

    def negotiate(
        self,
        requester: TrustXAgent,
        controller: TrustXAgent,
        resource: str,
        *,
        at: Optional[datetime] = None,
    ) -> NegotiationResult:
        if self.trust is not None:
            self.trust.apply_escalation(requester, counterparty=controller.name)
            self.trust.apply_escalation(controller, counterparty=requester.name)
        if self.cache is not None:
            return CachingNegotiator(self.cache).negotiate(
                requester, controller, resource, at=at,
                **self._engine_options(),
            )
        return NegotiationEngine(
            requester, controller, **self._engine_options()
        ).run(resource, at=at)


# -- VOToolkit -----------------------------------------------------------------------


class VOToolkit:
    """Builds the simulated SOA stack and hands out the toolkit editions.

    Keyword-only construction assembles the transport decorator chain
    bottom-up — ``SimTransport`` (or a supplied base), then an optional
    :class:`FaultInjector` (``fault_plan=``), then an optional
    :class:`ResilientTransport` (``resilience=``)::

        toolkit = VOToolkit(
            latency=LatencyModel(),
            fault_plan=FaultPlan.seeded(3, calls=40),
            resilience=ResilienceConfig(max_attempts=3),
        )
        edition = toolkit.initiator_edition(initiator)
        app = toolkit.member_edition(member)
    """

    def __init__(
        self,
        *,
        latency: Optional[LatencyModel] = None,
        transport: Optional[SimTransport] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
        hardening: Optional[HardeningConfig] = None,
        trust: Optional[TrustConfig] = None,
        host_url: str = "urn:vo:host",
    ) -> None:
        if transport is None:
            transport = SimTransport(model=latency or LatencyModel())
        elif latency is not None:
            raise ValueError(
                "pass either latency= or transport=, not both"
            )
        #: The raw simulated transport at the bottom of the stack.
        self.base_transport = transport
        stack = transport
        #: The fault injector, when a plan was supplied.
        self.fault_injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            self.fault_injector = FaultInjector(inner=stack, plan=fault_plan)
            stack = self.fault_injector
        #: The resilient decorator, when a config was supplied.
        self.resilient_transport: Optional[ResilientTransport] = None
        if resilience is not None:
            self.resilient_transport = resilience.wrap(stack)
            stack = self.resilient_transport
        #: The top of the decorator chain — what every edition calls.
        self.transport = stack
        #: Server-side hardening applied to the host now and to every
        #: TN service an initiator edition deploys later.
        self.hardening = hardening
        #: Nonmonotonic-trust wiring, when supplied.
        self.trust = trust
        #: The retraction bus applications retract through; ``None``
        #: unless a :class:`TrustConfig` was supplied.
        self.trust_bus: Optional[TrustBus] = (
            trust.trust_bus() if trust is not None else None
        )
        self.host = HostEdition(stack, url=host_url, hardening=hardening)

    @property
    def clock(self) -> SimClock:
        return self.base_transport.base_clock

    def initiator_edition(self, initiator: VOInitiator) -> InitiatorEdition:
        """The Initiator Edition bound to this toolkit's stack."""
        return InitiatorEdition(
            initiator, self.transport, self.host, hardening=self.hardening
        )

    def member_edition(
        self, member: VOMember, register: bool = True
    ) -> MemberEdition:
        """A Member Edition app (registered with the host by default)."""
        app = MemberEdition(
            member=member,
            transport=self.transport,
            host_url=self.host.url,
        )
        if register:
            app.register()
        return app
