#!/usr/bin/env python
"""Semantic trust negotiation: ontologies bridge naming gaps (§4.3).

Three demonstrations of the paper's semantic layer:

1. **Algorithm 1** — a policy asks for the concept 'WebDesignerQuality';
   no credential of that name exists, and the local reasoning engine
   maps the request onto the ISO 9000 certificate, preferring the least
   sensitive implementing credential (CredCluster).
2. **Similarity fallback** — a concept absent from the local ontology is
   resolved by the Jaccard/GLUE matcher with a confidence score.
3. **Policy abstraction** — a strong-suspicious party rewrites its
   policy's credential names into concept names before sending, hiding
   which exact document it wants.

Run:  python examples/ontology_negotiation.py
"""

from datetime import datetime

from repro.api import (
    ConceptMapper,
    CredentialAuthority,
    Sensitivity,
    Strategy,
    XProfile,
    aerospace_reference_ontology,
    match_ontologies,
    ontology_to_owl,
    overlapping_ontologies,
    parse_policy,
)

ISSUED = datetime(2009, 10, 26)


def main() -> None:
    ontology = aerospace_reference_ontology()
    mapper = ConceptMapper(ontology)

    infn = CredentialAuthority.create("INFN", key_bits=512)
    bbb = CredentialAuthority.create("BBB", key_bits=512)
    profile = XProfile.of("AerospaceCo", [
        infn.issue("ISO 9000 Certified", "AerospaceCo", "fp",
                   {"QualityRegulation": "UNI EN ISO 9000"}, ISSUED,
                   sensitivity=Sensitivity.MEDIUM),
        bbb.issue("BalanceSheet", "AerospaceCo", "fp",
                  {"Issuer": "BBB", "fiscalYear": 2009}, ISSUED,
                  sensitivity=Sensitivity.LOW),
    ])

    print("== 1. Algorithm 1: concept -> credential mapping ==")
    for concept in ("WebDesignerQuality", "BusinessProof",
                    "QualityCertification"):
        outcome = mapper.map_concept(concept, profile)
        print(
            f"  {concept:22} -> {outcome.credential.cred_type:20} "
            f"(cluster={outcome.cluster.label}, "
            f"confidence={outcome.confidence:.2f})"
        )

    print("\n== 2. Similarity fallback for an unknown concept ==")
    outcome = mapper.map_concept("web designer quality certification", profile)
    print(
        f"  'web designer quality certification' matched local concept "
        f"{outcome.resolved_concept!r} with confidence "
        f"{outcome.confidence:.2f} -> {outcome.credential.cred_type}"
    )

    print("\n== 3. Policy abstraction (strong-suspicious) ==")
    from repro.api import CredentialValidator, KeyPair, Keyring, \
        PolicyBase, RevocationRegistry, TrustXAgent

    agent = TrustXAgent(
        name="AerospaceCo",
        profile=profile,
        policies=PolicyBase.from_dsl(
            "AerospaceCo", "Contract <- ISO 9000 Certified"
        ),
        keypair=KeyPair.generate(512),
        validator=CredentialValidator(Keyring(), RevocationRegistry()),
        strategy=Strategy.STRONG_SUSPICIOUS,
        mapper=mapper,
    )
    plain = parse_policy("Contract <- ISO 9000 Certified")
    abstracted = agent.abstract_policy(plain)
    print(f"  before: {plain.dsl()}")
    print(f"  after:  {abstracted.dsl()}   (credential name hidden)")

    print("\n== 4. Cross-ontology alignment ==")
    left, right = overlapping_ontologies(concepts=8, overlap=0.5)
    mapping = match_ontologies(left, right)
    for match in mapping.confident_matches(0.5):
        print(f"  {match.source:28} ~ {match.target:34} "
              f"({match.confidence:.2f})")

    print("\n== 5. OWL export (paper Fig. 8) ==")
    owl = ontology_to_owl(ontology)
    print(f"  serialized reference ontology: {len(owl)} bytes of RDF/XML")
    print("  " + owl[:120] + "...")


if __name__ == "__main__":
    main()
