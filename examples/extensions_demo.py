#!/usr/bin/env python
"""The paper's §8 planned extensions, implemented and demonstrated.

1. **Group conditions** — a policy that constrains the *set* of
   disclosed credentials (two quality certificates from distinct
   issuers, capacities summing past a threshold).
2. **VO-property credentials** — a candidate requests a credential
   describing the VO itself before unlocking its own certificates.
3. **XACML export** — the same disclosure policies, rendered as an
   XACML Policy for interoperability with other VO toolkits.
4. **Sequence caching** — the operation-phase re-verification replayed
   from cache, skipping the policy-evaluation phase.
5. **Eager baseline** — what Trust-X's policy exchange buys, measured
   against the disclose-everything-unlocked strategy.

Run:  python examples/extensions_demo.py
"""

from repro.api import (
    ROLE_DESIGN_PORTAL,
    CachingNegotiator,
    build_aircraft_scenario,
    eager_negotiate,
    negotiate,
    parse_policies,
    parse_policy,
    policies_to_xacml,
)


def main() -> None:
    scenario = build_aircraft_scenario()
    contract_date = scenario.contract.created_at

    print("== 1. Group conditions ==")
    policy = parse_policy(
        "StoragePool <- Storage QoS Certificate, Storage QoS Certificate "
        "| group(sum(capacityTB)>=80, distinct_issuers>=1)"
    )
    print(f"  policy: {policy.dsl()}")
    print(f"  terms: {len(policy.terms)}, "
          f"group conditions: {len(policy.group_conditions)}")

    print("\n== 2. VO-property credentials ==")
    scenario.initiator.define_vo_policies(scenario.contract)
    descriptor = scenario.initiator.issue_vo_descriptor(
        scenario.contract, contract_date
    )
    print(f"  self-issued {descriptor.cred_type!r}: "
          f"voName={descriptor.value('voName')!r}, "
          f"roles={descriptor.value('rolesCount')}, "
          f"duration={descriptor.value('durationDays')} days")
    member = scenario.member("AerospaceCo")
    member.install_transient_policies(
        "ISO 9000 Certified <- VO Descriptor(durationDays<=365)"
    )
    print("  AerospaceCo now demands proof of VO duration before")
    print("  unlocking its quality certificate.")

    print("\n== 3. XACML export ==")
    policies = parse_policies("""
VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}
VoMembership <- VO Participation Ticket(outcome='fulfilled')
""")
    xacml = policies_to_xacml("VoMembership", policies)
    print(f"  {len(policies)} alternatives -> {len(xacml)} bytes of XACML")
    print("  " + xacml[:130] + "...")

    print("\n== 4. Sequence caching ==")
    negotiator = CachingNegotiator()
    optim = scenario.member("OptimCo").agent
    aero = scenario.member("AerospaceCo").agent
    first = negotiator.negotiate(optim, aero, "ISO 002 Certification",
                                 at=contract_date)
    second = negotiator.negotiate(optim, aero, "ISO 002 Certification",
                                  at=contract_date)
    print(f"  first run : {first.total_messages} messages "
          f"({first.policy_messages} policy + {first.exchange_messages} "
          "exchange)")
    print(f"  cache hit : {second.total_messages} messages "
          f"(policy phase skipped entirely)")

    print("\n== 5. Eager baseline ==")
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    resource = role.membership_resource(scenario.contract.vo_name)
    trustx = negotiate(aero, scenario.initiator.agent, resource,
                       at=contract_date)
    eager = eager_negotiate(aero, scenario.initiator.agent, resource,
                            at=contract_date)
    print(f"  Trust-X : success={trustx.success}, "
          f"{trustx.disclosures} credentials disclosed")
    print(f"  eager   : success={eager.success}, "
          f"{eager.disclosures} credentials disclosed "
          "(everything unlocked leaks)")


if __name__ == "__main__":
    main()
