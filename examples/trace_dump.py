"""Observability demo: trace a parallel VO formation end to end.

Enables ``repro.obs``, runs a 4-role formation with parallel joins,
and dumps the three observability products:

1. the ASCII timeline of the merged trace (one root span,
   ``vo.formation``, with every per-role join nested under it on its
   own branch clock);
2. a metrics excerpt (negotiation counters, join latency histogram,
   and the absorbed ``perf.cache.*`` statistics);
3. the event log, with credential attribute values redacted at or
   above the configured sensitivity threshold.

It also writes ``trace_dump.json`` — Chrome Trace Event JSON you can
open in ``chrome://tracing`` or https://ui.perfetto.dev.

Run:  python examples/trace_dump.py
"""

import json

from repro.api import formation_workload, obs

ROLES = 4


def main() -> None:
    obs.enable(obs.ObsConfig(redact_at=1))

    fixture = formation_workload(ROLES)
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(fixture.plans(), parallel=True)

    obs.disable()

    print(f"== formation: {len(outcome.joined)}/{ROLES} joined, "
          f"critical path {outcome.critical_path_ms:.0f} ms "
          f"(serial would be {outcome.serial_ms:.0f} ms) ==\n")

    spans = obs.spans()
    formation = next(s for s in spans if s.name == "vo.formation")
    members = [s for s in spans if s.trace_id == formation.trace_id]
    report = obs.validate_trace(members)
    print(f"trace {formation.trace_id}: {report['spans']} spans, "
          f"{len(report['roots'])} root, "
          f"{len(report['orphans'])} orphans\n")
    print(obs.render_timeline(members))

    print("\n== metrics (excerpt) ==")
    metrics = obs.metrics()
    for name in sorted(metrics):
        if name.startswith(("negotiation.", "vo.", "perf.cache.")):
            summary = metrics[name]
            value = summary.get("value", summary.get("count"))
            print(f"  {name:44} {value}")

    print("\n== events (credential values redacted) ==")
    for event in obs.events():
        if event.name == "credential.disclosed":
            print(f"  #{event.seq:<3} {event.fields['cred_type']:24} "
                  f"sensitivity={event.fields['sensitivity']} "
                  f"attributes={event.fields['attributes']}")

    path = "trace_dump.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(obs.to_chrome_trace(members), handle, indent=1)
    print(f"\nchrome trace written to {path} "
          f"(open in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
