#!/usr/bin/env python
"""The negotiation tree of paper Fig. 2, built and rendered.

Runs the membership negotiation between the Aerospace and Aircraft
companies, then renders the resulting negotiation tree — root at the
requested VO membership, a simple edge to the quality requirement, and
the alternative branch (AAA accreditation OR balance sheet) below it —
as ASCII and as Graphviz DOT.

Run:  python examples/negotiation_tree_demo.py
"""

from repro.api import (
    ROLE_DESIGN_PORTAL,
    TrustSequence,
    build_aircraft_scenario,
    negotiate,
    render_ascii,
    render_dot,
)


def main() -> None:
    scenario = build_aircraft_scenario()
    scenario.initiator.define_vo_policies(scenario.contract)
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    resource = role.membership_resource(scenario.contract.vo_name)

    result = negotiate(
        scenario.member("AerospaceCo").agent,
        scenario.initiator.agent,
        resource,
        at=scenario.contract.created_at,
    )
    print(result.summary())

    print("\n== Negotiation tree (Fig. 2) ==")
    print(render_ascii(result.tree))

    print("\n== Executed trust sequence ==")
    view = result.tree.first_view()
    for index, node in enumerate(view.disclosure_order(), start=1):
        if node.is_root:
            print(f"  {index}. {node.owner} grants {node.label!r}")
        else:
            print(f"  {index}. {node.owner} discloses a credential for "
                  f"{node.label!r}")

    print("\n== Graphviz DOT (pipe into `dot -Tpng`) ==")
    print(render_dot(result.tree))


if __name__ == "__main__":
    main()
