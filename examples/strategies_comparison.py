#!/usr/bin/env python
"""The four Trust-X negotiation strategies, side by side (§6.2).

Runs the paper's formation negotiation under trusting, standard,
suspicious, and strong-suspicious strategies and compares message
counts, disclosure counts, and — for the suspicious family — how many
credential attributes stayed hidden behind hash commitments.  Also
demonstrates the X.509 restriction of Section 6.3: a suspicious
negotiation over full-disclosure (X.509-style) material fails fast.

Run:  python examples/strategies_comparison.py
"""

from repro.api import (
    ROLE_DESIGN_PORTAL,
    Strategy,
    build_aircraft_scenario,
    enable_selective_disclosure,
    negotiate,
)


def run(strategy: Strategy, selective: bool = True):
    scenario = build_aircraft_scenario()
    if selective:
        enable_selective_disclosure(scenario)
    scenario.initiator.define_vo_policies(scenario.contract)
    requester = scenario.member("AerospaceCo").agent
    controller = scenario.initiator.agent
    requester.strategy = strategy
    controller.strategy = strategy
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    return negotiate(
        requester, controller,
        role.membership_resource(scenario.contract.vo_name),
        at=scenario.contract.created_at,
    )


def main() -> None:
    print(f"{'strategy':20} {'ok':3} {'policy':7} {'exchange':9} "
          f"{'total':6} {'disclosures':11}")
    print("-" * 62)
    for strategy in Strategy:
        result = run(strategy)
        print(
            f"{strategy.value:20} {str(result.success):3} "
            f"{result.policy_messages:7} {result.exchange_messages:9} "
            f"{result.total_messages:6} {result.disclosures:11}"
        )

    print("\nX.509 restriction (paper Section 6.3):")
    result = run(Strategy.SUSPICIOUS, selective=False)
    print(f"  suspicious over full-disclosure credentials: "
          f"{result.summary()}")

    print("\nWhy the suspicious family exists — what a selective")
    print("presentation keeps hidden:")
    scenario = build_aircraft_scenario()
    enable_selective_disclosure(scenario)
    agent = scenario.member("AerospaceCo").agent
    aaa = agent.profile.by_type("AAA Member")[0]
    selective = agent.selective[aaa.cred_id]
    presentation = selective.present(["association"])
    print(f"  credential attributes: {selective.attribute_names()}")
    print(f"  revealed:  {[d.attribute.name for d in presentation.disclosed]}")
    print(f"  hidden:    {presentation.hidden_count} "
          f"(only hash commitments cross the wire)")


if __name__ == "__main__":
    main()
