"""Fault-tolerant trust negotiation, end to end.

Runs the Aircraft Optimization membership negotiation three ways:

1. fault-free, through the resilient transport stack;
2. under a *seeded* storm of message drops, lost responses, duplicate
   deliveries, and database-connect failures — survived by retries
   with exponential backoff and server-side deduplication;
3. through a TN Web service **crash** between the policy and
   credential phases — survived by per-phase checkpoints in the XML
   document store and a restart that resumes the negotiation and
   produces the *identical* outcome.

The same walkthrough is wired into the CLI as ``python -m repro
faults``; try different seeds and strategies::

    python examples/fault_tolerant_negotiation.py
    python -m repro faults --seed 42 --strategy trusting
"""

from repro.api import run_fault_demo as run_demo

if __name__ == "__main__":
    raise SystemExit(run_demo(seed=7, strategy="standard"))
