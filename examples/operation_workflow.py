#!/usr/bin/env python
"""The Fig. 1 operation workflow, executed through an operating VO.

Forms the Aircraft Optimization VO, then drives the collaboration of
Fig. 1: design selection, optimization activation, the certificate-
re-verification TN before the control file is released, and the
HPC/storage refinement loop that repeats "until the target result is
achieved".

Run:  python examples/operation_workflow.py
"""

from repro.api import (
    VirtualOrganization,
    build_aircraft_scenario,
    build_fig1_workflow,
)


def main() -> None:
    scenario = build_aircraft_scenario()
    vo = VirtualOrganization(
        contract=scenario.contract, initiator=scenario.initiator
    )
    vo.identify()
    reports = vo.form(
        scenario.host.registry, scenario.host.directory(),
        at=scenario.contract.created_at,
    )
    for role, report in reports.items():
        print(f"formation: {role:18} covered by {report.admitted}")
    vo.begin_operation()

    print("\nExecuting the Fig. 1 workflow "
          "(converges after 4 refinement iterations):")
    workflow = build_fig1_workflow(vo)
    run = workflow.execute(
        at=scenario.contract.created_at,
        converged=lambda iteration: iteration >= 4,
    )

    for execution in run.executions:
        step = execution.step
        marker = f"iter {execution.iteration}" if step.iterative else "once  "
        tn = ""
        if execution.negotiation is not None:
            tn = (f"  [TN: {execution.negotiation.total_messages} msgs, "
                  f"{execution.negotiation.disclosures} disclosures]")
        print(f"  [{marker}] {step.name:26} "
              f"{step.source_role} -> {step.target_role}{tn}")

    print(f"\ncompleted={run.completed}, iterations={run.iterations}, "
          f"steps run={run.steps_run()}, "
          f"authorization TNs={run.negotiations_run()}")
    print(f"monitored interactions: {len(vo.monitor.interactions())}")


if __name__ == "__main__":
    main()
