#!/usr/bin/env python
"""Quickstart: a two-party Trust-X negotiation in ~60 lines.

A web portal ("AerospaceCo") wants a VO membership from an aircraft
manufacturer ("AircraftCo").  The manufacturer requires proof of design
quality; the portal releases its quality certificate only against the
manufacturer's industry accreditation.  Both requirements resolve in a
single negotiation.

Run:  python examples/quickstart.py
"""

from datetime import datetime

from repro.api import (
    CredentialAuthority,
    CredentialValidator,
    KeyPair,
    Keyring,
    PolicyBase,
    RevocationRegistry,
    TrustBus,
    TrustXAgent,
    XProfile,
    negotiate,
)

NOW = datetime(2010, 3, 1)
ISSUED = datetime(2009, 10, 26)


def main() -> None:
    # 1. Credential authorities issue signed credentials.
    infn = CredentialAuthority.create("INFN", key_bits=512)
    aaa = CredentialAuthority.create("AAA", key_bits=512)

    keyring = Keyring()
    keyring.add("INFN", infn.public_key)
    keyring.add("AAA", aaa.public_key)
    revocations = RevocationRegistry()
    bus = TrustBus(registry=revocations)
    bus.publish_crl(infn.crl)
    bus.publish_crl(aaa.crl)

    # 2. The requester: holds a quality certificate, protects it.
    aero_keys = KeyPair.generate(512)
    iso_cert = infn.issue(
        "ISO 9000 Certified", "AerospaceCo", aero_keys.fingerprint,
        {"QualityRegulation": "UNI EN ISO 9000"}, ISSUED,
    )
    aerospace = TrustXAgent(
        name="AerospaceCo",
        profile=XProfile.of("AerospaceCo", [iso_cert]),
        policies=PolicyBase.from_dsl("AerospaceCo", """
            # Release the quality certificate only to accredited partners.
            ISO 9000 Certified <- AAA Member
        """),
        keypair=aero_keys,
        validator=CredentialValidator(keyring, revocations),
    )

    # 3. The controller: owns the membership resource, holds the
    #    accreditation the requester will ask for.
    aircraft_keys = KeyPair.generate(512)
    aaa_cert = aaa.issue(
        "AAA Member", "AircraftCo", aircraft_keys.fingerprint,
        {"association": "American Aircraft Association"}, ISSUED,
    )
    aircraft = TrustXAgent(
        name="AircraftCo",
        profile=XProfile.of("AircraftCo", [aaa_cert]),
        policies=PolicyBase.from_dsl("AircraftCo", """
            VoMembership <- ISO 9000 Certified(QualityRegulation='UNI EN ISO 9000')
            AAA Member <- DELIV
        """),
        keypair=aircraft_keys,
        validator=CredentialValidator(keyring, revocations),
    )

    # 4. Negotiate.
    result = negotiate(aerospace, aircraft, "VoMembership", at=NOW)
    print(result.summary())
    print("\nNegotiation transcript:")
    for event in result.transcript:
        print(f"  [{event.phase:8}] {event.actor:12} {event.action:18} {event.detail}")
    assert result.success


if __name__ == "__main__":
    main()
