#!/usr/bin/env python
"""The paper's running example end to end (Sections 3 and 5, Fig. 1).

An aircraft company forms the Aircraft Optimization VO: a design web
portal, an optimization consultancy, an HPC provider, and a storage
provider.  Every lifecycle phase runs, with trust negotiations at the
three interaction points of Fig. 3:

1. Identification — the initiator defines per-role disclosure policies;
2. Formation — each candidate joins through a TN and receives an X.509
   membership token carrying the VO public key;
3. Operation — the ISO 002 certification is re-verified months later,
   a contract violation triggers reputation loss and member
   replacement, and the VO finally dissolves.

Run:  python examples/aircraft_vo.py
"""

from repro.api import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    ROLE_STORAGE,
    ServiceDescription,
    ViolationKind,
    build_aircraft_scenario,
)


def main() -> None:
    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition

    print("== Preparation ==")
    for name, member in scenario.members.items():
        services = ", ".join(s.service_name for s in member.services)
        print(f"  {name} published: {services}")

    print("\n== Identification ==")
    vo = edition.create_vo(scenario.contract)
    print(f"  contract: {scenario.contract.vo_name}")
    print(f"  goal: {scenario.contract.business_goal}")
    for role in scenario.contract.roles:
        print(f"  role {role.name}: requirements {list(role.requirements)}")
    edition.enable_trust_negotiation()

    print("\n== Formation (joins with trust negotiation) ==")
    roles = {
        "AerospaceCo": ROLE_DESIGN_PORTAL,
        "OptimCo": ROLE_OPTIMIZATION,
        "HPCServiceCo": ROLE_HPC,
        "StorageCo": ROLE_STORAGE,
    }
    for member_name, role in roles.items():
        outcome = edition.execute_join(
            scenario.app(member_name), role, with_negotiation=True
        )
        negotiation = outcome.negotiation
        print(
            f"  {member_name:13} -> {role:18} joined={outcome.joined} "
            f"({outcome.elapsed_ms:.0f} ms simulated, "
            f"{negotiation.total_messages} TN messages, "
            f"{negotiation.disclosures} disclosures)"
        )
    vo.begin_operation()

    print("\n== Operation ==")
    scenario.clock.advance_days(120)
    print("  ...four months pass; the optimization partner re-verifies")
    print("  the portal's ISO 002 certification (privacy-protected TN):")
    auth = vo.authorize_operation(
        ROLE_OPTIMIZATION, ROLE_DESIGN_PORTAL, "ISO 002 Certification",
        at=scenario.clock.now(),
    )
    print(f"    {auth.summary()}")

    print("\n  The HPC provider violates the contract:")
    vo.report_violation(
        "HPCServiceCo", ViolationKind.CONTRACT_BREACH,
        "flow solutions delivered late", at=scenario.clock.now(),
    )
    print(f"    HPCServiceCo reputation is now "
          f"{vo.reputation.score('HPCServiceCo'):.2f}")

    print("\n  A replacement HPC provider is enrolled using a TN:")
    spare = scenario.member("StorageCo")
    grid = scenario.authority("GridCA")
    spare.agent.profile.add(grid.issue(
        "HPC QoS Certificate", "StorageCo",
        spare.agent.keypair.fingerprint,
        {"qosLevel": "gold", "gflops": 150},
        scenario.contract.created_at, days=730,
    ))
    scenario.host.registry.publish(ServiceDescription.of(
        "StorageCo", "BackupHPC", [ROLE_HPC], quality=0.7
    ))
    report = vo.replace_member(
        ROLE_HPC, scenario.host.registry, scenario.host.directory(),
        at=scenario.clock.now(),
    )
    print(f"    role {ROLE_HPC} now covered by {report.admitted}")

    print("\n== Dissolution ==")
    vo.dissolve()
    print(f"  phase: {vo.lifecycle.phase.value}")
    print("  all membership tokens nullified:")
    for member_name in roles:
        member = scenario.member(member_name)
        print(f"    {member_name:13} member of VO: "
              f"{member.is_member_of(vo.contract.vo_name)}")

    print("\nReputation ranking at dissolution:")
    for name, score in vo.reputation.ranking():
        print(f"  {name:13} {score:.2f}")


if __name__ == "__main__":
    main()
